"""Smoke tests for the example scripts.

Each example must import cleanly (no syntax or import-path drift) and
expose a ``main()`` entry point.  Full executions are exercised
manually / by the benches; importability is what CI must guarantee.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
class TestExamples:
    def test_imports_cleanly(self, path):
        module = load_module(path)
        assert module is not None

    def test_has_main(self, path):
        module = load_module(path)
        assert callable(getattr(module, "main", None))

    def test_has_module_docstring(self, path):
        module = load_module(path)
        assert module.__doc__
        assert "Run:" in module.__doc__


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "verification_test_selection",
        "litho_hotspot_prediction",
        "timing_dstc_diagnosis",
        "customer_returns_screening",
        "knowledge_discovery_loop",
        "fmax_prediction",
        "reproduce_all",
    } <= names
