"""Tests for the LSU simulator and coverage model."""

import pytest

from repro.verification import (
    CoverageModel,
    Instruction,
    LoadStoreUnitSimulator,
    Program,
    Randomizer,
    SPECIAL_POINT_NAMES,
    STORE_BUFFER_DEPTH,
    TestTemplate,
)


def run(instructions):
    simulator = LoadStoreUnitSimulator()
    return simulator.simulate(Program(list(instructions))), simulator


class TestEventDetection:
    def test_misaligned_load_counted(self):
        result, _ = run([Instruction("LW", address=0x101)])
        assert result.summary["misaligned_loads"] == 1
        assert result.summary["misaligned_accesses"] == 1

    def test_aligned_load_not_counted(self):
        result, _ = run([Instruction("LW", address=0x100)])
        assert result.summary["misaligned_loads"] == 0

    def test_store_to_load_forwarding(self):
        result, _ = run(
            [
                Instruction("SW", address=0x200),
                Instruction("LW", address=0x200),
            ]
        )
        assert result.summary["forwardings"] == 1

    def test_no_forwarding_after_buffer_drains(self):
        # ALU instructions drain one store-buffer entry each
        result, _ = run(
            [Instruction("SW", address=0x200)]
            + [Instruction("ADD")] * 3
            + [Instruction("LW", address=0x200)]
        )
        assert result.summary["forwardings"] == 0

    def test_misaligned_forwarding(self):
        result, _ = run(
            [
                Instruction("SW", address=0x201),
                Instruction("LW", address=0x200),
            ]
        )
        assert result.summary["misaligned_forwardings"] == 1

    def test_sc_success_without_interference(self):
        result, _ = run(
            [
                Instruction("LL", address=0x300),
                Instruction("SC", address=0x300),
            ]
        )
        assert result.summary["sc_successes"] == 1
        assert result.summary["sc_failures"] == 0

    def test_sc_fails_after_store_to_reserved_line(self):
        result, _ = run(
            [
                Instruction("LL", address=0x300),
                Instruction("SW", address=0x304),  # same cache line
                Instruction("SC", address=0x300),
            ]
        )
        assert result.summary["sc_failures"] == 1

    def test_sc_succeeds_when_store_hits_other_line(self):
        result, _ = run(
            [
                Instruction("LL", address=0x300),
                Instruction("SW", address=0x1000),
                Instruction("SC", address=0x300),
            ]
        )
        assert result.summary["sc_successes"] == 1

    def test_store_buffer_full(self):
        stores = [
            Instruction("SW", address=0x100 + 8 * i)
            for i in range(STORE_BUFFER_DEPTH + 1)
        ]
        result, _ = run(stores)
        assert result.summary["buffer_full"] == 1

    def test_sync_drains_buffer(self):
        result, _ = run(
            [
                Instruction("SW", address=0x200),
                Instruction("SYNC"),
                Instruction("LW", address=0x200),
            ]
        )
        assert result.summary["sync_drains"] == 1
        assert result.summary["forwardings"] == 0

    def test_mmio_after_sync(self):
        result, _ = run(
            [
                Instruction("SYNC"),
                Instruction("LW", address=0x8000_0000),
            ]
        )
        assert result.summary["mmio_after_sync"] == 1

    def test_cache_miss_then_hit(self):
        result, _ = run(
            [
                Instruction("LW", address=0x400),
                Instruction("LW", address=0x400),
            ]
        )
        assert result.summary["cache_misses"] == 1


class TestCoverageModel:
    def test_cross_points_accumulate(self):
        _, simulator = run(
            [Instruction("LW", address=0x100), Instruction("SW", address=0x200)]
        )
        assert simulator.coverage.n_cross_covered >= 2

    def test_special_points_a0_a1(self):
        _, simulator = run(
            [
                Instruction("LW", address=0x101),  # misaligned load -> A0
                Instruction("SW", address=0x200),
                Instruction("LW", address=0x200),  # forwarding -> A1
            ]
        )
        covered = simulator.coverage.covered_special_points()
        assert "A0" in covered
        assert "A1" in covered

    def test_special_row_order(self):
        model = CoverageModel()
        assert len(model.special_row()) == len(SPECIAL_POINT_NAMES)

    def test_merge_adds_counts(self):
        a = CoverageModel()
        b = CoverageModel()
        a.record_cross("x", 2)
        b.record_cross("x", 3)
        b.record_cross("y", 1)
        a.merge(b)
        assert a.cross_hits == {"x": 5, "y": 1}

    def test_copy_is_independent(self):
        model = CoverageModel()
        model.record_cross("p")
        clone = model.copy()
        clone.record_cross("p")
        assert model.cross_hits["p"] == 1

    def test_reset_clears_state(self):
        _, simulator = run([Instruction("LW", address=0x100)])
        simulator.reset()
        assert simulator.coverage.n_cross_covered == 0
        assert simulator.n_simulated == 0

    def test_group_summary_buckets_by_family(self):
        _, simulator = run(
            [
                Instruction("LW", address=0x100),
                Instruction("LW", address=0x200),
                Instruction("SW", address=0x300),
            ]
        )
        groups = simulator.coverage.group_summary()
        assert groups["LW"]["hits"] == 2
        assert groups["SW"]["points"] == 1

    def test_report_marks_uncovered_special_points(self):
        _, simulator = run([Instruction("LW", address=0x101)])
        text = simulator.coverage.report()
        assert "A0: covered" in text
        assert "A6: UNCOVERED" in text
        assert "cross points covered" in text


class TestOriginalTemplateBaseline:
    def test_original_template_misses_rare_points(self):
        """The Table 1 premise: a generic template covers A0/A1 but
        essentially never the rare points A2..A7."""
        rand = Randomizer(random_state=11)
        simulator = LoadStoreUnitSimulator()
        for program in rand.stream(TestTemplate(), 150):
            simulator.simulate(program)
        hits = simulator.coverage.special_hits
        assert hits["A0"] > 10
        assert hits["A1"] > 3
        rare_total = sum(hits[p] for p in ("A2", "A3", "A5", "A6"))
        assert rare_total <= 3
