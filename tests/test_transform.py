"""Tests for PCA, kernel PCA, ICA, PLS, and CCA."""

import numpy as np
import pytest

from repro.transform import CCA, FastICA, KernelPCA, PCA, PLSRegression


class TestKernelPCA:
    def test_linear_kernel_recovers_pca_scores(self, rng):
        from repro.kernels import LinearKernel

        X = rng.normal(size=(60, 4))
        pca_scores = PCA(n_components=2).fit_transform(X)
        kpca_scores = KernelPCA(
            kernel=LinearKernel(), n_components=2
        ).fit_transform(X)
        # equal up to per-component sign
        for j in range(2):
            err_same = np.abs(kpca_scores[:, j] - pca_scores[:, j]).max()
            err_flip = np.abs(kpca_scores[:, j] + pca_scores[:, j]).max()
            assert min(err_same, err_flip) < 1e-8

    def test_rbf_embedding_separates_rings(self, rings):
        from repro.kernels import RBFKernel

        X, y = rings
        embedding = KernelPCA(
            kernel=RBFKernel(gamma=1.0), n_components=2
        ).fit_transform(X)
        # the first kernel components encode radius: a simple threshold
        # on the first coordinate should separate the classes (Fig. 3
        # geometry made linear by the kernel)
        inner = embedding[y == 0, 0]
        outer = embedding[y == 1, 0]
        assert (inner.min() > outer.max()) or (outer.min() > inner.max())

    def test_sequence_samples_embed(self):
        from repro.kernels import SpectrumKernel

        programs = [["LD", "ST"] * 6 for _ in range(8)] + [
            ["MUL", "DIV"] * 6 for _ in range(8)
        ]
        embedding = KernelPCA(
            kernel=SpectrumKernel(k=2), n_components=1
        ).fit_transform(programs)
        first, second = embedding[:8, 0], embedding[8:, 0]
        assert (first.max() < second.min()) or (second.max() < first.min())

    def test_transform_consistent_with_fit_transform(self, rng):
        from repro.kernels import RBFKernel

        X = rng.normal(size=(30, 3))
        model = KernelPCA(kernel=RBFKernel(0.5), n_components=3)
        direct = model.fit_transform(X)
        np.testing.assert_allclose(direct, model.transform(X), atol=1e-8)

    def test_engine_cache_shared_between_fit_and_transform(self, rng):
        from repro.kernels import GramEngine, RBFKernel

        X = rng.normal(size=(25, 3))
        engine = GramEngine()
        model = KernelPCA(kernel=RBFKernel(0.5), n_components=2,
                          engine=engine)
        model.fit(X)
        assert engine.counters.cache_misses == 1
        model.fit(X)  # identical data: served from cache
        assert engine.counters.cache_hits == 1

    def test_rejects_bad_n_components(self, rng):
        with pytest.raises(ValueError):
            KernelPCA(n_components=0).fit(rng.normal(size=(10, 2)))


class TestPCA:
    def test_components_orthonormal(self, rng):
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_explained_variance_ratio_sums_to_one_full_rank(self, rng):
        X = rng.normal(size=(50, 4))
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_first_component_captures_dominant_direction(self, rng):
        t = rng.normal(size=200)
        X = np.column_stack([t, 0.5 * t, rng.normal(0, 0.01, 200)])
        pca = PCA(n_components=1).fit(X)
        assert pca.explained_variance_ratio_[0] > 0.99
        direction = np.abs(pca.components_[0])
        assert direction[0] > direction[2]

    def test_transform_decorrelates(self, rng):
        X = rng.multivariate_normal(
            [0, 0], [[2.0, 1.5], [1.5, 2.0]], size=500
        )
        scores = PCA().fit_transform(X)
        covariance = np.cov(scores, rowvar=False)
        assert abs(covariance[0, 1]) < 0.05

    def test_inverse_transform_full_rank_roundtrip(self, rng):
        X = rng.normal(size=(40, 3))
        pca = PCA().fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-10
        )

    def test_reconstruction_error_grows_with_truncation(self, rng):
        X = rng.normal(size=(80, 6))
        errors = [
            PCA(n_components=k).fit(X).reconstruction_error(X)
            for k in (6, 3, 1)
        ]
        assert errors[0] == pytest.approx(0.0, abs=1e-12)
        assert errors[0] <= errors[1] <= errors[2]

    def test_whiten_unit_variance(self, rng):
        X = rng.multivariate_normal(
            [0, 0], [[5.0, 2.0], [2.0, 3.0]], size=400
        )
        scores = PCA(whiten=True).fit_transform(X)
        np.testing.assert_allclose(scores.std(axis=0), 1.0, atol=0.05)

    def test_dimensionality_reduction_of_test_matrix(self, rng):
        # the [24] use: reduce a correlated test matrix to few components
        factors = rng.normal(size=(300, 2))
        loadings = rng.normal(size=(10, 2))
        X = factors @ loadings.T + rng.normal(0, 0.05, size=(300, 10))
        pca = PCA(n_components=2).fit(X)
        assert pca.explained_variance_ratio_.sum() > 0.95


class TestFastICA:
    def test_unmixes_independent_sources(self, rng):
        # two independent non-Gaussian sources, linearly mixed
        n = 2000
        s1 = np.sign(np.sin(np.linspace(0, 40, n)))  # square wave
        s2 = rng.uniform(-1, 1, size=n)  # uniform noise
        S = np.column_stack([s1, s2])
        A = np.array([[1.0, 0.6], [0.4, 1.0]])
        X = S @ A.T
        ica = FastICA(n_components=2, random_state=0).fit(X)
        recovered = ica.transform(X)
        # each recovered component must correlate strongly with exactly
        # one true source (up to sign and order)
        corr = np.abs(np.corrcoef(recovered.T, S.T)[:2, 2:])
        best = corr.max(axis=1)
        assert np.all(best > 0.9)
        assert {int(np.argmax(corr[0])), int(np.argmax(corr[1]))} == {0, 1}

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.uniform(size=(200, 3))
        ica = FastICA(random_state=0).fit(X)
        np.testing.assert_allclose(
            ica.inverse_transform(ica.transform(X)), X, atol=1e-8
        )

    def test_sources_nearly_uncorrelated(self, rng):
        X = rng.uniform(size=(500, 3)) @ rng.normal(size=(3, 3))
        sources = FastICA(random_state=0).fit_transform(X)
        covariance = np.cov(sources, rowvar=False)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.max(np.abs(off_diagonal)) < 0.1

    def test_rejects_zero_components(self, rng):
        with pytest.raises(ValueError):
            FastICA(n_components=0).fit(rng.normal(size=(10, 2)))


class TestPLS:
    def test_predicts_multivariate_targets(self, rng):
        X = rng.normal(size=(150, 6))
        B = rng.normal(size=(6, 2))
        Y = X @ B + rng.normal(0, 0.05, size=(150, 2))
        pls = PLSRegression(n_components=4).fit(X, Y)
        assert pls.score(X, Y) > 0.95

    def test_single_column_y_returns_1d(self, rng):
        X = rng.normal(size=(60, 3))
        y = X[:, 0] * 2.0
        pls = PLSRegression(n_components=2).fit(X, y)
        assert pls.predict(X).ndim == 1

    def test_handles_collinear_features_where_lsf_struggles(self, rng):
        # PLS extracts latent directions, so collinearity is benign
        t = rng.normal(size=(100, 2))
        X = np.column_stack([t[:, 0], t[:, 0] * 0.999, t[:, 1]])
        y = t[:, 0] + t[:, 1]
        pls = PLSRegression(n_components=2).fit(X, y)
        assert pls.score(X, y.reshape(-1, 1)) > 0.95

    def test_scores_shape(self, rng):
        X = rng.normal(size=(50, 4))
        Y = rng.normal(size=(50, 2))
        pls = PLSRegression(n_components=3).fit(X, Y)
        assert pls.transform(X).shape == (50, 3)

    def test_rejects_bad_components(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(ValueError):
            PLSRegression(n_components=0).fit(X, X[:, 0])


class TestCCA:
    def test_finds_shared_signal(self, rng):
        shared = rng.normal(size=(300, 1))
        X = np.hstack([shared + rng.normal(0, 0.1, size=(300, 1)),
                       rng.normal(size=(300, 2))])
        Y = np.hstack([rng.normal(size=(300, 1)),
                       shared + rng.normal(0, 0.1, size=(300, 1))])
        cca = CCA(n_components=1).fit(X, Y)
        assert cca.correlations_[0] > 0.9

    def test_independent_views_low_correlation(self, rng):
        X = rng.normal(size=(500, 3))
        Y = rng.normal(size=(500, 3))
        cca = CCA(n_components=1).fit(X, Y)
        assert cca.correlations_[0] < 0.35

    def test_transform_variates_correlate_as_reported(self, rng):
        shared = rng.normal(size=(400, 2))
        X = shared @ rng.normal(size=(2, 4)) + rng.normal(
            0, 0.1, size=(400, 4)
        )
        Y = shared @ rng.normal(size=(2, 3)) + rng.normal(
            0, 0.1, size=(400, 3)
        )
        cca = CCA(n_components=2).fit(X, Y)
        assert cca.score(X, Y) == pytest.approx(
            float(cca.correlations_.mean()), abs=0.05
        )

    def test_correlations_sorted_descending(self, rng):
        X = rng.normal(size=(100, 4))
        Y = rng.normal(size=(100, 4))
        cca = CCA(n_components=3).fit(X, Y)
        assert list(cca.correlations_) == sorted(
            cca.correlations_, reverse=True
        )

    def test_rejects_sample_mismatch(self, rng):
        with pytest.raises(ValueError):
            CCA().fit(rng.normal(size=(10, 2)), rng.normal(size=(12, 2)))
