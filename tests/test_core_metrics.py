"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    accuracy,
    auc,
    balanced_accuracy,
    confusion_matrix,
    escape_count,
    mean_absolute_error,
    mean_squared_error,
    pearson_correlation,
    precision_recall_f1,
    r2_score,
    roc_auc,
    roc_curve,
    root_mean_squared_error,
    screening_report,
    simulation_saving,
)


class TestClassificationMetrics:
    def test_accuracy_perfect_and_zero(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert accuracy([1, 0], [0, 1]) == 0.0

    def test_accuracy_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 0])

    def test_accuracy_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix_layout(self):
        matrix, labels = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert labels == [0, 1]
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_precision_recall_f1_known_values(self):
        # 2 TP, 1 FP, 1 FN
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_precision_zero_when_nothing_flagged(self):
        precision, recall, f1 = precision_recall_f1([1, 0], [0, 0])
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_balanced_accuracy_under_imbalance(self):
        y_true = [0] * 98 + [1] * 2
        y_pred = [0] * 100  # majority vote
        assert accuracy(y_true, y_pred) == pytest.approx(0.98)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)


class TestROC:
    def test_perfect_separation_auc_one(self):
        scores = [0.9, 0.8, 0.2, 0.1]
        labels = [1, 1, 0, 0]
        assert roc_auc(labels, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(0.0)

    def test_random_scores_auc_half(self, rng):
        labels = rng.integers(0, 2, size=4000)
        scores = rng.uniform(size=4000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_roc_curve_monotone(self, rng):
        labels = rng.integers(0, 2, size=200)
        scores = rng.uniform(size=200)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_roc_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.1, 0.2])

    def test_auc_unordered_input(self):
        assert auc([1.0, 0.0], [1.0, 0.0]) == pytest.approx(0.5)


class TestRegressionMetrics:
    def test_mse_mae_rmse_consistency(self):
        y_true = np.array([0.0, 0.0])
        y_pred = np.array([3.0, -3.0])
        assert mean_squared_error(y_true, y_pred) == pytest.approx(9.0)
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(3.0)
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(3.0)

    def test_r2_perfect_is_one(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.arange(10.0)
        assert r2_score(y, np.full(10, y.mean())) == pytest.approx(0.0)

    def test_pearson_known_sign(self):
        x = np.arange(50.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0


class TestCaseStudyMetrics:
    def test_simulation_saving_fig7_number(self):
        # the paper's headline: 310 instead of 6000+ tests => ~95%
        assert simulation_saving(6000, 310) == pytest.approx(0.948, abs=1e-3)

    def test_simulation_saving_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            simulation_saving(0, 10)

    def test_screening_report_counts(self):
        report = screening_report([1, 1, 0, 0], [1, 0, 1, 0])
        assert report["n_flagged"] == 2
        assert report["n_true_positive"] == 1
        assert report["n_missed"] == 1

    def test_escape_count_matches_fig12_definition(self):
        fails_dropped = [True, True, False, True]
        caught = [True, False, False, False]
        # chips 2 and 4 fail the dropped test and are not caught
        assert escape_count(fails_dropped, caught) == 2

    def test_escape_count_length_check(self):
        with pytest.raises(ValueError):
            escape_count([True], [True, False])
