"""Tests for the timing substrate and the Fig. 10 DSTC flow."""

import numpy as np
import pytest

from repro.timing import (
    CELLS,
    DSTCAnalysis,
    PATH_FEATURE_NAMES,
    Path,
    PathGenerator,
    SiliconModel,
    Stage,
    StaticTimer,
    SystematicEffect,
    cell_delay,
    path_feature_matrix,
    path_features,
    run_dstc_experiment,
    via_delay,
    wire_delay,
)


class TestLibrary:
    def test_cell_delay_grows_with_fanout(self):
        assert cell_delay("INV", 4) > cell_delay("INV", 1)

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            cell_delay("SUPERGATE", 1)

    def test_wire_delay_linear_in_length(self):
        assert wire_delay("M2", 10.0) == pytest.approx(
            2 * wire_delay("M2", 5.0)
        )

    def test_upper_layers_faster_per_unit(self):
        assert wire_delay("M6", 1.0) < wire_delay("M1", 1.0)

    def test_via_delay_counts(self):
        assert via_delay("via45", 3) == pytest.approx(3 * via_delay("via45"))

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            wire_delay("M1", -1.0)
        with pytest.raises(ValueError):
            via_delay("via12", -1)
        with pytest.raises(ValueError):
            cell_delay("INV", 0)


class TestNetlist:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            Stage(cell="NOPE", fanout=1)
        with pytest.raises(ValueError):
            Stage(cell="INV", fanout=0)
        with pytest.raises(ValueError):
            Stage(cell="INV", fanout=1, wire_lengths={"M9": 1.0})

    def test_path_aggregations(self):
        path = Path(
            name="p",
            block="b",
            stages=[
                Stage("INV", 1, {"M5": 3.0}, {"via45": 2}),
                Stage("DFF", 1, {"M5": 1.0}, {"via45": 2, "via56": 2}),
            ],
        )
        assert path.depth == 2
        assert path.total_wire("M5") == pytest.approx(4.0)
        assert path.total_vias("via45") == 4
        assert path.cell_count("DFF") == 1

    def test_generator_depth_bounds(self):
        generator = PathGenerator(random_state=0)
        for _ in range(20):
            path = generator.generate(min_depth=5, max_depth=9)
            assert 5 <= path.depth <= 9

    def test_generator_ends_with_flop(self):
        path = PathGenerator(random_state=1).generate()
        assert path.stages[-1].cell == "DFF"

    def test_global_fraction_controls_m5_usage(self):
        local_only = PathGenerator(random_state=2, global_fraction=0.0)
        global_heavy = PathGenerator(random_state=2, global_fraction=1.0)
        local_vias = sum(
            p.total_vias("via45")
            for p in local_only.generate_block(30)
        )
        global_vias = sum(
            p.total_vias("via45")
            for p in global_heavy.generate_block(30)
        )
        assert local_vias == 0
        assert global_vias > 30

    def test_block_naming(self):
        paths = PathGenerator(random_state=0).generate_block(3, block="core")
        assert [p.name for p in paths] == ["core_p0", "core_p1", "core_p2"]


class TestTimer:
    def test_path_delay_is_sum_of_stage_delays(self):
        path = Path(
            "p", "b",
            [Stage("INV", 2, {"M1": 4.0}, {"via12": 2}),
             Stage("DFF", 1)],
        )
        timer = StaticTimer()
        expected = (
            cell_delay("INV", 2) + wire_delay("M1", 4.0)
            + via_delay("via12", 2) + cell_delay("DFF", 1)
        )
        assert timer.path_delay(path) == pytest.approx(expected)

    def test_derate_scales(self):
        path = PathGenerator(random_state=0).generate()
        assert StaticTimer(derate=1.1).path_delay(path) == pytest.approx(
            1.1 * StaticTimer().path_delay(path)
        )

    def test_critical_paths_sorted(self):
        paths = PathGenerator(random_state=3).generate_block(40)
        timer = StaticTimer()
        top = timer.critical_paths(paths, 5)
        delays = [timer.path_delay(p) for p in top]
        assert delays == sorted(delays, reverse=True)
        assert delays[0] == max(timer.path_delay(p) for p in paths)


class TestSiliconModel:
    def test_no_effect_tracks_timer_with_corner(self):
        paths = PathGenerator(random_state=4).generate_block(30)
        silicon = SiliconModel(
            corner=0.95, noise_sigma=0.0, effect=None, random_state=0
        )
        timer = StaticTimer()
        for path in paths:
            assert silicon.measure(path) == pytest.approx(
                0.95 * timer.path_delay(path)
            )

    def test_effect_slows_via_heavy_paths_only(self):
        effect = SystematicEffect()
        quiet = SiliconModel(noise_sigma=0.0, effect=None, random_state=0)
        loud = SiliconModel(noise_sigma=0.0, effect=effect, random_state=0)
        local_path = Path("p", "b", [Stage("INV", 1, {"M1": 5.0}), Stage("DFF", 1)])
        global_path = Path(
            "q", "b",
            [Stage("INV", 1, {"M5": 5.0}, {"via45": 4, "via56": 4}),
             Stage("DFF", 1)],
        )
        assert loud.measure(local_path) == pytest.approx(
            quiet.measure(local_path)
        )
        assert loud.measure(global_path) > quiet.measure(global_path)

    def test_noise_is_seeded(self):
        path = PathGenerator(random_state=5).generate()
        a = SiliconModel(random_state=9).measure(path)
        b = SiliconModel(random_state=9).measure(path)
        assert a == b


class TestPathFeatures:
    def test_feature_vector_length_matches_names(self):
        path = PathGenerator(random_state=0).generate()
        assert len(path_features(path)) == len(PATH_FEATURE_NAMES)

    def test_via_counts_land_in_named_columns(self):
        path = Path(
            "p", "b",
            [Stage("INV", 1, {}, {"via45": 6}), Stage("DFF", 1)],
        )
        features = path_features(path)
        index = PATH_FEATURE_NAMES.index("n_via45")
        assert features[index] == 6.0

    def test_matrix_shape(self):
        paths = PathGenerator(random_state=1).generate_block(7)
        assert path_feature_matrix(paths).shape == (
            7, len(PATH_FEATURE_NAMES)
        )


class TestDSTC:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dstc_experiment(n_paths=300, random_state=11)

    def test_two_clusters_found(self, result):
        assert result.n_slow > 20
        assert result.n_fast > 20

    def test_slow_cluster_is_slower(self, result):
        assert result.cluster_centers[1] > result.cluster_centers[0]
        assert result.cluster_separation > 0.05

    def test_fast_cluster_near_corner(self, result):
        # healthy paths land near the global corner (5% fast)
        assert result.cluster_centers[0] == pytest.approx(-0.05, abs=0.02)

    def test_rule_blames_metal5_vias(self, result):
        # the Fig. 10 diagnosis: layers-4-5 / 5-6 vias explain slowness
        blamed = set(result.rule_features())
        assert blamed & {"n_via45", "n_via56", "wire_M5"}

    def test_rule_precision_high(self, result):
        assert result.rules_[0].precision > 0.9 if hasattr(
            result, "rules_"
        ) else result.rules[0].precision > 0.9

    def test_describe_mentions_counts(self, result):
        text = result.describe()
        assert "fast" in text
        assert "slow" in text
        assert "IF" in text

    def test_control_without_effect_has_no_real_clusters(self):
        silicon = SiliconModel(effect=None, random_state=3)
        result = run_dstc_experiment(
            n_paths=200, silicon=silicon, random_state=3
        )
        # without the injected effect the mismatch spread is pure noise
        assert result.cluster_separation < 0.03

    def test_rejects_nonpositive_predictions(self):
        analysis = DSTCAnalysis()
        path = PathGenerator(random_state=0).generate(name="p0")
        with pytest.raises(ValueError):
            analysis.analyze([path], {"p0": 0.0}, {"p0": 1.0})

    def test_cluster_stability_reflects_real_structure(self):
        """The Section 2.4 clustering caveat, applied: the fast/slow
        split is perfectly resampling-stable when the bimodal structure
        is real, and less stable on the no-effect control."""
        real = run_dstc_experiment(n_paths=300, random_state=5)
        control = run_dstc_experiment(
            n_paths=300,
            silicon=SiliconModel(effect=None, random_state=5),
            random_state=5,
        )
        assert real.cluster_stability > 0.99
        assert control.cluster_stability < real.cluster_stability

    def test_stability_assessment_optional(self):
        import numpy as np

        analysis = DSTCAnalysis(assess_stability=False)
        generator = PathGenerator(random_state=0)
        paths = generator.generate_block(50)
        timer = StaticTimer()
        predicted = timer.report(paths)
        measured = {p.name: predicted[p.name] * 1.01 for p in paths}
        result = analysis.analyze(paths, predicted, measured)
        assert np.isnan(result.cluster_stability)

    def test_diagnosis_generalizes_to_slow_cell_effect(self):
        """Inject a mischaracterized cell instead of the metal-5 issue;
        the same flow should blame the cell count, not vias."""
        silicon = SiliconModel(
            effect=SystematicEffect.slow_cell("XOR2", 1.8),
            random_state=7,
        )
        result = run_dstc_experiment(
            n_paths=400, silicon=silicon, random_state=7
        )
        assert "n_XOR2" in result.rule_features()

    def test_slow_cell_effect_delay_accounting(self):
        effect = SystematicEffect.slow_cell("INV", 2.0)
        path = Path(
            "p", "b",
            [Stage("INV", 2), Stage("NAND2", 1), Stage("DFF", 1)],
        )
        from repro.timing import StaticTimer, cell_delay

        extra = effect.extra_delay(path, StaticTimer())
        assert extra == pytest.approx(cell_delay("INV", 2))
