"""Tests for the Fig. 1 dataset abstraction."""

import numpy as np
import pytest

from repro.core import Dataset
from repro.core.exceptions import DataShapeError


@pytest.fixture
def small():
    X = np.arange(12, dtype=float).reshape(4, 3)
    y = np.array([0, 1, 0, 1])
    return Dataset(X, y, feature_names=["a", "b", "c"])


class TestConstruction:
    def test_auto_feature_names_match_paper_notation(self):
        data = Dataset(np.zeros((2, 3)))
        assert data.feature_names == ["f0", "f1", "f2"]

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(DataShapeError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_feature_name_mismatch(self):
        with pytest.raises(DataShapeError):
            Dataset(np.zeros((2, 3)), feature_names=["only_one"])

    def test_supervised_flag(self, small):
        assert small.is_supervised
        assert not Dataset(np.zeros((2, 2))).is_supervised

    def test_len_and_shape(self, small):
        assert len(small) == 4
        assert small.n_samples == 4
        assert small.n_features == 3


class TestAccessors:
    def test_feature_by_name(self, small):
        np.testing.assert_array_equal(
            small.feature("b"), np.array([1.0, 4.0, 7.0, 10.0])
        )

    def test_feature_unknown_name(self, small):
        with pytest.raises(KeyError):
            small.feature("zz")

    def test_select_features_preserves_labels(self, small):
        sub = small.select_features(["c", "a"])
        assert sub.feature_names == ["c", "a"]
        np.testing.assert_array_equal(sub.y, small.y)
        np.testing.assert_array_equal(sub.X[:, 1], small.feature("a"))

    def test_subset_keeps_pairing(self, small):
        sub = small.subset([2, 0])
        np.testing.assert_array_equal(sub.y, [0, 0])
        np.testing.assert_array_equal(sub.X[0], small.X[2])


class TestSplits:
    def test_split_partitions_all_samples(self, small):
        train, test = small.split(test_fraction=0.25, random_state=0)
        assert len(train) + len(test) == len(small)

    def test_split_rejects_bad_fraction(self, small):
        with pytest.raises(ValueError):
            small.split(test_fraction=1.5)

    def test_shuffled_is_permutation(self, small):
        shuffled = small.shuffled(random_state=1)
        assert sorted(shuffled.X.sum(axis=1)) == sorted(
            small.X.sum(axis=1)
        )

    def test_split_is_seeded(self, small):
        a1, _ = small.split(random_state=7)
        a2, _ = small.split(random_state=7)
        np.testing.assert_array_equal(a1.X, a2.X)


class TestClassStatistics:
    def test_class_counts(self, small):
        assert small.class_counts() == {0: 2, 1: 2}

    def test_imbalance_ratio(self):
        data = Dataset(np.zeros((10, 1)), np.array([0] * 9 + [1]))
        assert data.imbalance_ratio() == pytest.approx(9.0)

    def test_class_counts_requires_labels(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2))).class_counts()
