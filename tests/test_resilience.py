"""Unit tests for the resilience layer (repro.core.resilience) and the
hardened error types it rides on."""

import os
import pickle

import numpy as np
import pytest

from repro.core import EventLog, recording
from repro.core.exceptions import (
    CheckpointError,
    DeadlineExceededError,
    TaskTimeoutError,
    WorkerError,
)
from repro.core.parallel import ProcessBackend, SerialBackend
from repro.core.resilience import (
    CheckpointStore,
    Deadline,
    ErrorPolicy,
    RetryPolicy,
    fingerprint,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_from_retries_matches_legacy_counter(self):
        policy = RetryPolicy.from_retries(2)
        assert policy.max_attempts == 3
        assert policy.delay(0, 1) == 0.0
        assert policy.should_retry(RuntimeError("x"), 2)
        assert not policy.should_retry(RuntimeError("x"), 3)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.4)
        assert policy.delay(0, 4) == pytest.approx(0.5)  # capped
        assert policy.delay(0, 9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.2, jitter=0.5, seed=7)
        same = RetryPolicy(base_delay=0.2, jitter=0.5, seed=7)
        other_seed = RetryPolicy(base_delay=0.2, jitter=0.5, seed=8)
        delays = [policy.delay(i, 1) for i in range(20)]
        assert delays == [same.delay(i, 1) for i in range(20)]
        assert delays != [other_seed.delay(i, 1) for i in range(20)]
        for d in delays:
            assert 0.1 <= d <= 0.2
        # different tasks and different attempts jitter differently
        assert len(set(delays)) > 1
        assert policy.delay(0, 1) != policy.delay(0, 2)

    def test_retryable_filter_types_and_callable(self):
        policy = RetryPolicy(max_attempts=5, retryable=(KeyError,))
        assert policy.should_retry(KeyError("k"), 1)
        assert not policy.should_retry(ValueError("v"), 1)
        predicate = RetryPolicy(
            max_attempts=5,
            retryable=lambda e: "transient" in str(e),
        )
        assert predicate.should_retry(RuntimeError("transient blip"), 1)
        assert not predicate.should_retry(RuntimeError("hard fail"), 1)

    def test_timeouts_not_retryable_by_default(self):
        timeout_error = TaskTimeoutError("hung", task_index=3, timeout=1.0)
        assert not RetryPolicy(max_attempts=5).should_retry(timeout_error, 1)
        opted_in = RetryPolicy(max_attempts=5, retry_timeouts=True)
        assert opted_in.should_retry(timeout_error, 1)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, 0)

    def test_equality_and_pickle(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=3)
        assert policy == RetryPolicy(max_attempts=4, base_delay=0.1, seed=3)
        assert policy != RetryPolicy(max_attempts=5, base_delay=0.1, seed=3)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired()

    def test_resolve(self):
        assert Deadline.resolve(None) is None
        deadline = Deadline(5.0)
        assert Deadline.resolve(deadline) is deadline
        fresh = Deadline.resolve(2.5)
        assert isinstance(fresh, Deadline) and fresh.seconds == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestErrorPolicy:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            ErrorPolicy("explode")
        with pytest.raises(ValueError):
            ErrorPolicy("fallback")  # needs a fallback estimator

    def test_defaults(self):
        policy = ErrorPolicy()
        assert policy.on_error == "raise"
        assert np.isnan(policy.error_score)

    def test_skip_with_score(self):
        policy = ErrorPolicy("skip", error_score=-1.0)
        assert policy.error_score == -1.0


class TestFingerprint:
    def test_stable_across_calls(self):
        X = np.arange(12.0).reshape(3, 4)
        assert fingerprint("a", X, {"k": 1}) == fingerprint(
            "a", X.copy(), {"k": 1}
        )

    def test_sensitive_to_content(self):
        X = np.arange(12.0).reshape(3, 4)
        Y = X.copy()
        Y[0, 0] += 1e-12
        assert fingerprint(X) != fingerprint(Y)
        assert fingerprint(X) != fingerprint(X.astype(np.float32))
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
        assert fingerprint("1") != fingerprint(1)

    def test_layout_independent(self):
        X = np.arange(12.0).reshape(3, 4)
        assert fingerprint(X) == fingerprint(np.asfortranarray(X))

    def test_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint(
            {"b": 2, "a": 1}
        )

    def test_estimator_params_fingerprinted(self):
        from repro.learn import LogisticRegression

        a = LogisticRegression(learning_rate=0.1)
        b = LogisticRegression(learning_rate=0.1)
        c = LogisticRegression(learning_rate=0.2)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_kernel_uses_cache_key(self):
        from repro.kernels import RBFKernel

        assert fingerprint(RBFKernel(0.5)) == fingerprint(RBFKernel(0.5))
        assert fingerprint(RBFKernel(0.5)) != fingerprint(RBFKernel(0.7))

    def test_callables_by_qualified_name(self):
        from repro.core.metrics import accuracy, mean_squared_error

        assert fingerprint(accuracy) == fingerprint(accuracy)
        assert fingerprint(accuracy) != fingerprint(mean_squared_error)


class TestCheckpointStore:
    def test_roundtrip_is_bitwise(self, tmp_path):
        store = CheckpointStore(tmp_path)
        value = {
            "score": 0.1 + 0.2,  # not exactly representable in text...
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "arr": np.linspace(0, 1, 7),
            "ints": [1, 2, 3],
            "nested": {"flag": True, "none": None, "s": "x"},
        }
        store.put("k", value)
        back = store.get("k")
        assert back["score"] == value["score"]  # ...but repr round-trips
        assert np.isnan(back["nan"])
        assert back["inf"] == float("inf")
        assert back["ninf"] == float("-inf")
        assert back["arr"].dtype == value["arr"].dtype
        assert back["arr"].tobytes() == value["arr"].tobytes()
        assert back["ints"] == [1, 2, 3]
        assert back["nested"] == {"flag": True, "none": None, "s": "x"}

    def test_numpy_scalars_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k", {"f": np.float64(1.5), "i": np.int64(3)})
        assert store.get("k") == {"f": 1.5, "i": 3}

    def test_get_missing_returns_default(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get("absent") is None
        assert store.get("absent", default=-1) == -1
        assert "absent" not in store

    def test_corrupt_file_reads_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k", {"v": 1})
        (tmp_path / "k.json").write_text("{not json")
        assert store.get("k") is None

    def test_no_temp_droppings_after_puts(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(5):
            store.put(f"key{i}", {"i": i})
        leftovers = [
            name for name in os.listdir(tmp_path)
            if not name.endswith(".json")
        ]
        assert leftovers == []
        assert store.keys() == [f"key{i}" for i in range(5)]

    def test_keys_contains_discard_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("a", 1)
        store.put("b", 2)
        assert "a" in store and len(store) == 2
        assert store.discard("a") and not store.discard("a")
        assert store.keys() == ["b"]
        assert store.clear() == 1
        assert len(store) == 0

    def test_unpicklable_without_flag_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.put("k", {"obj": object()})

    def test_allow_pickle_roundtrips_objects(self, tmp_path):
        store = CheckpointStore(tmp_path / "p", allow_pickle=True)
        store.put("k", {"c": complex(1, 2)})
        assert store.get("k") == {"c": complex(1, 2)}
        # a strict reader refuses pickled payloads rather than loading
        strict = CheckpointStore(tmp_path / "p", allow_pickle=False)
        with pytest.raises(CheckpointError):
            strict.get("k")

    def test_invalid_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(CheckpointError):
                store.put(bad, 1)

    def test_store_pickles_as_configuration(self, tmp_path):
        store = CheckpointStore(tmp_path, allow_pickle=True)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.allow_pickle is True
        clone.put("k", 1)
        assert store.get("k") == 1

    def test_non_string_dict_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.put("k", {1: "one"})


def _raise_with_context(payload):
    raise RuntimeError(f"inner boom {payload}")


class TestWorkerErrorRegression:
    """Satellite pin: WorkerError carries the remote traceback and the
    attempt count, and survives pickling across the process boundary."""

    def test_attributes_and_pickle_roundtrip(self):
        error = WorkerError(
            "task 3 failed", task_index=3, attempts=2,
            traceback_str="Traceback ...",
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, WorkerError)
        assert str(clone) == "task 3 failed"
        assert clone.task_index == 3
        assert clone.attempts == 2
        assert clone.traceback_str == "Traceback ..."

    def test_timeout_error_pickle_roundtrip(self):
        error = TaskTimeoutError(
            "hung", task_index=5, timeout=1.5, abandoned=True, attempts=2,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, TaskTimeoutError)
        assert isinstance(clone, WorkerError)
        assert (clone.task_index, clone.timeout, clone.abandoned,
                clone.attempts) == (5, 1.5, True, 2)

    def test_deadline_error_pickle_roundtrip(self):
        error = DeadlineExceededError("over budget", pending=[1, 2])
        clone = pickle.loads(pickle.dumps(error))
        assert clone.pending == (1, 2)

    def test_serial_backend_attaches_traceback_and_attempts(self):
        backend = SerialBackend(retries=1)
        with pytest.raises(WorkerError) as info:
            backend.map(_raise_with_context, ["x"])
        assert info.value.attempts == 2
        assert "inner boom x" in info.value.traceback_str
        assert "_raise_with_context" in info.value.traceback_str

    def test_process_backend_carries_remote_traceback(self):
        backend = ProcessBackend(n_workers=2, retries=0)
        with pytest.raises(WorkerError) as info:
            backend.map(_raise_with_context, ["remote"])
        # the traceback text is the *worker's*: it names the task
        # function's raise site, which never ran in this process
        assert "inner boom remote" in info.value.traceback_str
        assert "_raise_with_context" in info.value.traceback_str
        assert info.value.attempts == 1
        roundtrip = pickle.loads(pickle.dumps(info.value))
        assert "_raise_with_context" in roundtrip.traceback_str


def _flaky_by_marker(payload):
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("first attempt fails")
    return value


class TestRetryInstrumentation:
    """Satellite pin: retry events land in the ambient EventLog."""

    def test_retry_spans_recorded(self, tmp_path):
        backend = SerialBackend(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        log = EventLog()
        with recording(log):
            result = backend.map(
                _flaky_by_marker, [(str(tmp_path / "m"), 7)]
            )
        assert result == [7]
        retries = log.spans("retry")
        assert len(retries) == 1
        assert retries[0].meta["task"] == 0
        assert retries[0].meta["attempt"] == 1
        assert "first attempt fails" in retries[0].meta["error"]

    def test_no_spans_without_recording(self, tmp_path):
        backend = SerialBackend(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        assert backend.map(
            _flaky_by_marker, [(str(tmp_path / "m2"), 7)]
        ) == [7]


# ---------------------------------------------------------------------
# construction validation (RetryPolicy / Deadline)
# ---------------------------------------------------------------------

class TestConstructionValidation:
    """Nonsense retry/deadline parameters must fail at construction
    with a clear message, not silently build a policy that never
    retries, never expires, or sleeps forever."""

    @pytest.mark.parametrize("seconds", [0, -1, -0.001, float("nan")])
    def test_deadline_rejects_nonpositive_and_nan(self, seconds):
        with pytest.raises(ValueError, match="deadline seconds"):
            Deadline(seconds)

    def test_deadline_allows_infinite_budget(self):
        unbounded = Deadline(float("inf"))
        assert not unbounded.expired()
        assert unbounded.remaining() == float("inf")

    @pytest.mark.parametrize("max_attempts", [0, -3, float("nan")])
    def test_retry_rejects_bad_max_attempts(self, max_attempts):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=max_attempts)

    @pytest.mark.parametrize("kwargs,match", [
        ({"base_delay": -0.1}, "base_delay"),
        ({"base_delay": float("nan")}, "base_delay"),
        ({"base_delay": float("inf")}, "base_delay"),
        ({"max_delay": -1.0}, "max_delay"),
        ({"max_delay": float("nan")}, "max_delay"),
        ({"multiplier": 0.5}, "multiplier"),
        ({"multiplier": float("nan")}, "multiplier"),
        ({"jitter": -0.2}, "jitter"),
        ({"jitter": 1.5}, "jitter"),
        ({"jitter": float("nan")}, "jitter"),
    ])
    def test_retry_rejects_bad_backoff(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_valid_boundary_values_pass(self):
        policy = RetryPolicy(
            max_attempts=1, base_delay=0.0, max_delay=0.0,
            multiplier=1.0, jitter=0.0,
        )
        assert policy.max_attempts == 1
        assert policy.delay(0, 1) == 0.0
