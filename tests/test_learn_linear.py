"""Tests for LSF, ridge (regularized LSF), kernel ridge, logistic."""

import numpy as np
import pytest

from repro.kernels import RBFKernel
from repro.learn import (
    KernelRidgeRegressor,
    LeastSquaresRegressor,
    LogisticRegression,
    RidgeRegressor,
)


class TestLeastSquares:
    def test_recovers_exact_coefficients(self, linear_regression_data):
        X, y = linear_regression_data
        model = LeastSquaresRegressor().fit(X, y)
        np.testing.assert_allclose(model.coef_, [2.0, -1.0], atol=0.02)
        assert model.intercept_ == pytest.approx(0.5, abs=0.02)

    def test_without_intercept(self, rng):
        X = rng.normal(size=(50, 1))
        y = 3.0 * X[:, 0]
        model = LeastSquaresRegressor(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(3.0)

    def test_handles_rank_deficiency(self, rng):
        x = rng.normal(size=50)
        X = np.column_stack([x, x])  # perfectly collinear
        y = x * 2.0
        model = LeastSquaresRegressor().fit(X, y)
        assert np.all(np.isfinite(model.coef_))
        assert model.score(X, y) > 0.999


class TestRidge:
    def test_alpha_zero_matches_lsf(self, linear_regression_data):
        X, y = linear_regression_data
        lsf = LeastSquaresRegressor().fit(X, y)
        ridge = RidgeRegressor(alpha=1e-10).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, lsf.coef_, atol=1e-5)

    def test_shrinkage_monotone_in_alpha(self, linear_regression_data):
        X, y = linear_regression_data
        norms = [
            float(np.linalg.norm(RidgeRegressor(alpha=a).fit(X, y).coef_))
            for a in (0.01, 1.0, 100.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_regularization_reduces_validation_error_on_noise(self, rng):
        # the paper's E + lambda*C story: with many noise features, some
        # regularization beats none out-of-sample
        n, d = 40, 30
        X = rng.normal(size=(n, d))
        beta = np.zeros(d)
        beta[:3] = [1.0, -2.0, 1.5]
        y = X @ beta + rng.normal(0, 0.8, size=n)
        X_val = rng.normal(size=(200, d))
        y_val = X_val @ beta + rng.normal(0, 0.8, size=200)
        unregularized = RidgeRegressor(alpha=1e-8).fit(X, y)
        regularized = RidgeRegressor(alpha=5.0).fit(X, y)
        assert regularized.score(X_val, y_val) > unregularized.score(
            X_val, y_val
        )

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)


class TestKernelRidge:
    def test_fits_nonlinear_function(self, sine_regression):
        X, y = sine_regression
        model = KernelRidgeRegressor(
            kernel=RBFKernel(gamma=1.0), alpha=1e-3
        ).fit(X, y)
        assert model.score(X, y) > 0.98

    def test_takes_eq2_form(self, sine_regression):
        # model output == kernel-weighted sum over training samples
        X, y = sine_regression
        model = KernelRidgeRegressor(
            kernel=RBFKernel(gamma=1.0), alpha=1e-2
        ).fit(X, y)
        x_new = np.array([[0.7]])
        manual = sum(
            coefficient * model.kernel_(x_new[0], x_train)
            for coefficient, x_train in zip(model.dual_coef_, X)
        )
        assert model.predict(x_new)[0] == pytest.approx(manual)

    def test_rejects_nonpositive_alpha(self, sine_regression):
        X, y = sine_regression
        with pytest.raises(ValueError):
            KernelRidgeRegressor(alpha=0.0).fit(X, y)


class TestLogisticRegression:
    def test_separates_blobs(self, blobs):
        X, y = blobs
        model = LogisticRegression(max_iter=800).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_probabilities_are_probabilities(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0.0)
        assert np.all(proba <= 1.0)

    def test_decision_function_sign_matches_prediction(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        predicted = model.predict(X)
        assert np.all((scores >= 0) == (predicted == model.classes_[1]))

    def test_rejects_multiclass(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.integers(0, 3, size=30)
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, y)

    def test_arbitrary_label_values(self, blobs):
        X, y = blobs
        labels = np.where(y == 0, "pass", "fail")
        model = LogisticRegression().fit(X, labels)
        assert set(model.predict(X)) <= {"pass", "fail"}
