"""Unit tests for repro.serve and the resilience primitives behind it.

Covers the model registry (versioning, fingerprints, twins), the
circuit breaker and admission controller (with injected clocks — no
sleeps), the micro-batcher (coalescing, per-item error isolation), the
scoring service (including the bitwise-identity contract against the
batch path), and the JSON-lines TCP server.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import instrument
from repro.core.exceptions import (
    CircuitOpenError,
    OverloadedError,
    RegistryError,
)
from repro.core.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
)
from repro.learn.one_class_svm import OneClassSVM
from repro.kernels.approx import NystromApproximation
from repro.kernels.vector import RBFKernel
from repro.mfgtest.outlier import RobustMahalanobisDetector
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    ScoreClient,
    ScoreServer,
    ScoringService,
    ServePolicy,
)


@pytest.fixture()
def isolated_metrics():
    registry = instrument.MetricsRegistry()
    previous = instrument.set_metrics_registry(registry)
    try:
        yield registry
    finally:
        instrument.set_metrics_registry(previous)


def _detector(seed=0, n=150, p=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    return X, RobustMahalanobisDetector().fit(X)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


# ---------------------------------------------------------------------
# ModelRegistry
# ---------------------------------------------------------------------

class TestModelRegistry:
    def test_publish_load_roundtrip_scores_bitwise(self, tmp_path):
        X, det = _detector()
        registry = ModelRegistry(tmp_path)
        record = registry.publish("det", det, meta={"campaign": "fig11"})
        assert record.version == 1
        assert record.method == "score_samples"
        assert record.meta == {"campaign": "fig11"}
        loaded, loaded_record = registry.load("det")
        np.testing.assert_array_equal(
            loaded.score_samples(X[:7]), det.score_samples(X[:7])
        )
        assert loaded_record.fingerprint == record.fingerprint

    def test_versions_increment_and_latest_wins(self, tmp_path):
        X, det1 = _detector(seed=1)
        _, det2 = _detector(seed=2)
        registry = ModelRegistry(tmp_path)
        assert registry.publish("det", det1).version == 1
        assert registry.publish("det", det2).version == 2
        assert registry.versions("det") == [1, 2]
        assert registry.latest_version("det") == 2
        latest, record = registry.load("det")
        assert record.version == 2
        np.testing.assert_array_equal(
            latest.score_samples(X[:5]), det2.score_samples(X[:5])
        )
        pinned, pinned_record = registry.load("det", 1)
        assert pinned_record.version == 1
        np.testing.assert_array_equal(
            pinned.score_samples(X[:5]), det1.score_samples(X[:5])
        )

    def test_versions_are_immutable(self, tmp_path):
        _, det = _detector()
        registry = ModelRegistry(tmp_path)
        registry.publish("det", det, version=3)
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish("det", det, version=3)

    def test_twin_roundtrip_and_method_mismatch_rejected(self, tmp_path):
        X, det = _detector()
        _, twin = _detector(seed=9)
        registry = ModelRegistry(tmp_path)
        record = registry.publish("det", det, twin=twin)
        assert record.has_twin
        assert record.twin_fingerprint
        loaded_twin, _ = registry.load_twin("det")
        np.testing.assert_array_equal(
            loaded_twin.score_samples(X[:5]), twin.score_samples(X[:5])
        )

        class PredictOnly:
            def predict(self, X):
                return np.zeros(len(X))

        with pytest.raises(RegistryError, match="score_samples"):
            registry.publish("other", det, twin=PredictOnly())

    def test_bad_names_and_missing_models_fail_loudly(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        _, det = _detector()
        for bad in ("", "has space", "-leading", "a/b", None):
            with pytest.raises(RegistryError):
                registry.publish(bad, det)
        with pytest.raises(RegistryError, match="no model named"):
            registry.load("ghost")
        with pytest.raises(RegistryError, match="no version"):
            registry.publish("det", det)
            registry.load("det", 42)

    def test_method_resolution_and_listing(self, tmp_path):
        _, det = _detector()
        registry = ModelRegistry(tmp_path)
        registry.publish("a", det)
        registry.publish("b", det, method="predict")
        assert registry.describe("b").method == "predict"
        with pytest.raises(RegistryError, match="no callable method"):
            registry.publish("c", det, method="decision_function")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "ghost" not in registry
        assert len(registry) == 2


# ---------------------------------------------------------------------
# CircuitBreaker (fake clock — no sleeps)
# ---------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_time", 10.0)
        kwargs.setdefault("probe_successes", 2)
        kwargs.setdefault("jitter", 0.0)
        breaker = CircuitBreaker(clock=clock, **kwargs)
        return breaker, clock

    def test_opens_at_threshold_and_success_resets(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()          # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_slots_and_close(self):
        breaker, clock = self._breaker(max_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()            # probe slot reserved
        assert not breaker.allow()        # max_probes=1: refused
        breaker.record_success()          # 1/2 probe successes
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()          # 2/2: closes
        assert breaker.state == "closed"

    def test_probe_failure_reopens_with_new_window(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.open_count == 1
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_count == 2
        # window restarts from the re-open instant
        clock.advance(9.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_recovery_window_is_deterministic_and_jittered(self):
        one = CircuitBreaker(recovery_time=2.0, jitter=0.5, seed=7)
        two = CircuitBreaker(recovery_time=2.0, jitter=0.5, seed=7)
        other = CircuitBreaker(recovery_time=2.0, jitter=0.5, seed=8)
        windows_one = [one.recovery_window(k) for k in range(1, 6)]
        windows_two = [two.recovery_window(k) for k in range(1, 6)]
        assert windows_one == windows_two
        assert windows_one != [other.recovery_window(k)
                               for k in range(1, 6)]
        assert all(2.0 <= w <= 3.0 for w in windows_one)
        assert len(set(windows_one)) > 1   # varies across open ordinals

    def test_trip_reset_and_validation(self):
        breaker, _ = self._breaker()
        breaker.trip()
        assert breaker.state == "open"
        breaker.reset()
        assert breaker.state == "closed" and breaker.allow()
        for kwargs in (
            {"failure_threshold": 0},
            {"recovery_time": float("nan")},
            {"recovery_time": -1.0},
            {"probe_successes": 0},
            {"max_probes": 0},
            {"jitter": 2.0},
        ):
            with pytest.raises(ValueError):
                CircuitBreaker(**kwargs)


# ---------------------------------------------------------------------
# AdmissionController (fake clock)
# ---------------------------------------------------------------------

class TestAdmissionController:
    def test_queue_depth_shedding(self):
        admission = AdmissionController(max_queue_depth=4)
        assert admission.try_admit(queue_depth=3) == (True, "")
        assert admission.try_admit(queue_depth=4) == (False, "queue")
        assert admission.admitted_count == 1
        assert admission.shed_count == 1

    def test_token_bucket_refill(self):
        clock = FakeClock()
        admission = AdmissionController(rate=2.0, burst=2, clock=clock)
        assert admission.try_admit()[0]
        assert admission.try_admit()[0]
        assert admission.try_admit() == (False, "rate")
        clock.advance(0.5)                 # one token back
        assert admission.try_admit()[0]
        assert admission.try_admit() == (False, "rate")
        clock.advance(100.0)               # refills clip at burst
        assert admission.tokens() == 2.0

    def test_deadline_slack_shedding_precedence(self):
        admission = AdmissionController(
            rate=1.0, burst=1, max_queue_depth=1, min_slack=0.050,
        )
        healthy = Deadline(30.0)
        doomed = Deadline(1e-9)
        time.sleep(0.001)
        # doomed wins the reason even when the queue is also full
        assert admission.try_admit(
            queue_depth=99, deadline=doomed
        ) == (False, "deadline")
        assert admission.try_admit(deadline=healthy) == (True, "")

    def test_validation(self):
        for kwargs in (
            {"rate": 0.0},
            {"rate": float("nan")},
            {"burst": 0},
            {"max_queue_depth": 0},
            {"min_slack": -1.0},
        ):
            with pytest.raises(ValueError):
                AdmissionController(**kwargs)


# ---------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------

class Counting:
    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self.sizes = []

    def __call__(self, payload):
        self.calls += 1
        self.sizes.append(np.asarray(payload).shape[0])
        return self.fn(payload)


class TestMicroBatcher:
    def test_coalesces_but_scores_per_request(self, isolated_metrics):
        X, det = _detector()
        scorer = Counting(det.score_samples)
        batcher = MicroBatcher(scorer, max_batch=8, max_wait=0.01)

        async def run():
            return await asyncio.gather(*[
                batcher.submit(X[i:i + 2]) for i in range(6)
            ])

        results = asyncio.run(run())
        # one scorer call per request (the bitwise contract) ...
        assert scorer.calls == 6
        for i, scores in enumerate(results):
            np.testing.assert_array_equal(
                scores, det.score_samples(X[i:i + 2])
            )
        # ... but far fewer executor dispatches than requests
        flushes = isolated_metrics.snapshot().counters[
            "serve.batch.flushes"
        ]
        assert flushes < 6

    def test_max_batch_triggers_immediate_flush(self, isolated_metrics):
        X, det = _detector()
        batcher = MicroBatcher(
            det.score_samples, max_batch=2, max_wait=60.0,
        )

        async def run():
            return await asyncio.gather(
                batcher.submit(X[:1]), batcher.submit(X[1:2]),
            )

        results = asyncio.run(run())
        assert len(results) == 2

    def test_poisoned_item_fails_alone(self):
        def scorer(payload):
            if np.isnan(np.asarray(payload)).any():
                raise ValueError("poison")
            return np.asarray(payload).sum(axis=1)

        batcher = MicroBatcher(scorer, max_batch=8, max_wait=0.001)
        good = np.ones((2, 3))
        bad = np.full((2, 3), np.nan)

        async def run():
            return await asyncio.gather(
                batcher.submit(good), batcher.submit(bad),
                batcher.submit(good), return_exceptions=True,
            )

        first, second, third = asyncio.run(run())
        np.testing.assert_array_equal(first, [3.0, 3.0])
        assert isinstance(second, ValueError)
        np.testing.assert_array_equal(third, [3.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, max_wait=float("nan"))


# ---------------------------------------------------------------------
# ScoringService
# ---------------------------------------------------------------------

class TestScoringService:
    def test_bitwise_identity_with_batch_path_under_concurrency(
            self, tmp_path, isolated_metrics):
        """The acceptance contract: concurrent served scores on the
        non-degraded route are bitwise identical to the offline batch
        path, per request, even when requests interleave in one
        micro-batch."""
        X, det = _detector(n=300)
        registry = ModelRegistry(tmp_path)
        registry.publish("det", det)
        requests = [X[i * 6:(i + 1) * 6] for i in range(40)]
        expected = [det.score_samples(chunk) for chunk in requests]
        with ScoringService(registry, ServePolicy()) as service:
            service.add_endpoint("det")

            async def run():
                return await asyncio.gather(*[
                    service.score("det", chunk) for chunk in requests
                ])

            responses = asyncio.run(run())
        for response, want in zip(responses, expected):
            assert response.status == "ok"
            assert response.served_by == "exact"
            assert not response.degraded
            np.testing.assert_array_equal(np.asarray(response.scores), want)
        # and the coalescing actually batched: fewer flushes than
        # requests
        flushes = isolated_metrics.snapshot().counters[
            "serve.endpoint.det.batch.flushes"
        ]
        assert flushes < len(requests)

    def test_kernel_endpoint_with_nystrom_twin_bitwise(self, tmp_path):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 4))
        exact = OneClassSVM(kernel=RBFKernel(gamma=0.4)).fit(X)
        twin = OneClassSVM(
            kernel=RBFKernel(gamma=0.4),
            approximation=NystromApproximation(
                n_components=24, random_state=0
            ),
        ).fit(X)
        registry = ModelRegistry(tmp_path)
        registry.publish("ocsvm", exact, twin=twin)
        with ScoringService(registry, ServePolicy()) as service:
            endpoint = service.add_endpoint("ocsvm")
            # the endpoint got its own warm engine bound to the model
            assert endpoint.engine is not None
            assert endpoint.engine.cache_info()["entries"] >= 1
            response = service.score_sync("ocsvm", X[:9])
            np.testing.assert_array_equal(
                np.asarray(response.scores),
                exact.decision_function(X[:9]),
            )
            # degraded path answers with the twin's scores, tagged
            endpoint.breaker.trip()
            degraded = service.score_sync("ocsvm", X[:9])
            assert degraded.degraded and degraded.served_by == "twin"
            np.testing.assert_array_equal(
                np.asarray(degraded.scores),
                twin.decision_function(X[:9]),
            )

    def test_alias_version_pinning_and_stats(self, tmp_path,
                                             isolated_metrics):
        X, det1 = _detector(seed=1)
        _, det2 = _detector(seed=2)
        registry = ModelRegistry(tmp_path)
        registry.publish("det", det1)
        registry.publish("det", det2)
        with ScoringService(registry, ServePolicy()) as service:
            service.add_endpoint("det", 1, alias="det-v1")
            service.add_endpoint("det")
            old = service.score_sync("det-v1", X[:4])
            new = service.score_sync("det", X[:4])
            assert old.model_version == 1
            assert new.model_version == 2
            np.testing.assert_array_equal(
                np.asarray(old.scores), det1.score_samples(X[:4])
            )
            stats = service.stats()
        assert set(stats["endpoints"]) == {"det", "det-v1"}
        assert stats["endpoints"]["det"]["breaker"]["state"] == "closed"
        assert "serve.ok" in stats["counters"]
        assert "serve.latency_seconds" in stats["latency"]
        assert stats["latency"]["serve.latency_seconds"]["count"] == 2

    def test_response_raise_for_status_mapping(self, tmp_path):
        X, det = _detector()
        registry = ModelRegistry(tmp_path)
        registry.publish("det", det)
        policy = ServePolicy(rate=1e-6, burst=1)
        with ScoringService(registry, policy) as service:
            endpoint = service.add_endpoint("det")
            ok = service.score_sync("det", X[:2])
            assert ok.raise_for_status() is ok
            shed = service.score_sync("det", X[:2])
            with pytest.raises(OverloadedError) as excinfo:
                shed.raise_for_status()
            assert excinfo.value.reason == "rate"
            endpoint.breaker.trip()
            service.admission = ServePolicy().build_admission()
            refused = service.score_sync("det", X[:2])
            assert refused.status == "unavailable"
            with pytest.raises(CircuitOpenError):
                refused.raise_for_status()

    def test_add_all_endpoints(self, tmp_path):
        _, det = _detector()
        registry = ModelRegistry(tmp_path)
        registry.publish("a", det)
        registry.publish("b", det)
        with ScoringService(registry) as service:
            service.add_all_endpoints()
            assert set(service.endpoints()) == {"a", "b"}


# ---------------------------------------------------------------------
# ScoreServer / ScoreClient
# ---------------------------------------------------------------------

class TestScoreServer:
    def test_round_trip_pipelining_and_bad_lines(self, tmp_path):
        X, det = _detector()
        registry = ModelRegistry(tmp_path)
        registry.publish("det", det)
        expected = det.score_samples(X[:3])

        async def run():
            with ScoringService(registry, ServePolicy()) as service:
                service.add_endpoint("det")
                async with ScoreServer(service) as server:
                    async with ScoreClient(
                        "127.0.0.1", server.port
                    ) as client:
                        assert (await client.ping())["pong"] is True
                        bodies = await asyncio.gather(*[
                            client.score("det", X[:3].tolist())
                            for _ in range(5)
                        ])
                        stats = (await client.stats())["stats"]
                        # a raw bad line on a second connection gets a
                        # typed refusal, not a dropped connection
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", server.port
                        )
                        writer.write(b"this is not json\n")
                        await writer.drain()
                        bad = await asyncio.wait_for(
                            reader.readline(), timeout=5
                        )
                        writer.write(b'{"op": "nonsense"}\n')
                        await writer.drain()
                        unknown = await asyncio.wait_for(
                            reader.readline(), timeout=5
                        )
                        writer.close()
                        await writer.wait_closed()
                        return bodies, stats, bad, unknown

        bodies, stats, bad, unknown = asyncio.run(run())
        for body in bodies:
            assert body["status"] == "ok"
            np.testing.assert_array_equal(
                np.asarray(body["scores"]), expected
            )
        assert "det" in stats["endpoints"]
        import json
        assert json.loads(bad)["status"] == "invalid"
        assert json.loads(unknown)["status"] == "invalid"
        assert "unknown op" in json.loads(unknown)["reason"]
