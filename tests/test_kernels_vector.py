"""Tests for vector kernels, including the paper's Fig. 3 kernel trick."""

import numpy as np
import pytest

from repro.kernels import (
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    explicit_degree2_map,
    is_positive_semidefinite,
    median_heuristic_gamma,
)


class TestLinearKernel:
    def test_is_dot_product(self):
        k = LinearKernel()
        assert k([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_matrix_matches_pairwise(self, rng):
        X = rng.normal(size=(10, 3))
        k = LinearKernel()
        K = k.matrix(X)
        for i in range(10):
            for j in range(10):
                assert K[i, j] == pytest.approx(k(X[i], X[j]))

    def test_cross_matrix_shape(self, rng):
        A = rng.normal(size=(4, 3))
        B = rng.normal(size=(6, 3))
        assert LinearKernel().cross_matrix(A, B).shape == (4, 6)


class TestKernelTrickIdentity:
    """The paper's worked example: k(x,z) = <x,z>^2 = <Phi(x), Phi(z)>."""

    def test_kernel_equals_feature_space_dot(self, rng):
        k = PolynomialKernel(degree=2, gamma=1.0, coef0=0.0)
        for _ in range(20):
            x = rng.normal(size=2)
            z = rng.normal(size=2)
            explicit = float(
                explicit_degree2_map(x) @ explicit_degree2_map(z)
            )
            assert k(x, z) == pytest.approx(explicit)

    def test_explicit_map_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            explicit_degree2_map(np.zeros(3))

    def test_rings_linearly_separable_in_feature_space(self, rings):
        # in Phi-space, the squared radius x1^2 + x2^2 is a linear
        # function of the first two coordinates -> a hyperplane splits
        X, y = rings
        mapped = np.array([explicit_degree2_map(x) for x in X])
        radius_proxy = mapped[:, 0] + mapped[:, 1]
        threshold = 2.0
        predicted = (radius_proxy > threshold).astype(int)
        assert np.mean(predicted == y) == 1.0


class TestPolynomialKernel:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)
        with pytest.raises(ValueError):
            PolynomialKernel(gamma=0.0)
        with pytest.raises(ValueError):
            PolynomialKernel(coef0=-1.0)

    def test_psd_on_random_data(self, rng):
        X = rng.normal(size=(25, 4))
        K = PolynomialKernel(degree=3, coef0=1.0).matrix(X)
        assert is_positive_semidefinite(K)


class TestRBFKernel:
    def test_self_similarity_is_one(self, rng):
        k = RBFKernel(gamma=0.7)
        x = rng.normal(size=5)
        assert k(x, x) == pytest.approx(1.0)

    def test_decays_with_distance(self):
        k = RBFKernel(gamma=1.0)
        near = k([0.0], [0.1])
        far = k([0.0], [3.0])
        assert near > far

    def test_matrix_matches_pairwise(self, rng):
        X = rng.normal(size=(8, 3))
        k = RBFKernel(gamma=0.5)
        K = k.matrix(X)
        for i in range(8):
            assert K[i, i] == pytest.approx(1.0)
            for j in range(8):
                assert K[i, j] == pytest.approx(k(X[i], X[j]))

    def test_psd(self, rng):
        X = rng.normal(size=(30, 3))
        assert is_positive_semidefinite(RBFKernel(2.0).matrix(X))

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            RBFKernel(gamma=0.0)


class TestLaplacianKernel:
    def test_uses_l1_distance(self):
        k = LaplacianKernel(gamma=1.0)
        assert k([0.0, 0.0], [1.0, 1.0]) == pytest.approx(np.exp(-2.0))

    def test_matrix_and_cross_consistent(self, rng):
        X = rng.normal(size=(6, 2))
        k = LaplacianKernel(gamma=0.3)
        np.testing.assert_allclose(k.matrix(X), k.cross_matrix(X, X))


class TestSigmoidKernel:
    def test_bounded_by_one(self, rng):
        k = SigmoidKernel(gamma=0.1, coef0=0.0)
        X = rng.normal(size=(10, 4))
        assert np.all(np.abs(k.matrix(X)) <= 1.0)


class TestMedianHeuristic:
    def test_positive_and_finite(self, rng):
        X = rng.normal(size=(50, 3))
        gamma = median_heuristic_gamma(X)
        assert gamma > 0
        assert np.isfinite(gamma)

    def test_degenerate_data_falls_back(self):
        assert median_heuristic_gamma(np.ones((5, 2))) == 1.0
        assert median_heuristic_gamma(np.ones((1, 2))) == 1.0

    def test_scales_inversely_with_spread(self, rng):
        X = rng.normal(size=(50, 2))
        tight = median_heuristic_gamma(X)
        wide = median_heuristic_gamma(X * 10.0)
        assert tight > wide
