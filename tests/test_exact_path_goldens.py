"""Golden regression tests: ``approximation=None`` is bitwise-unchanged.

The approximate-path PR must not perturb the exact algorithms at all —
the default paths stay byte-for-byte what they were.  Each test here
carries a frozen reference implementation of the pre-approximation
algorithm (verbatim arithmetic, same operation order) and asserts
``np.array_equal`` — not ``allclose`` — against the library estimator.
Any reordering, dtype change, or extra arithmetic on the exact path
breaks these.

A second group asserts the serial/thread/process ``cross_validate``
backends still return identical scores for kernel estimators, with and
without approximation.
"""

import numpy as np
import pytest

from repro.core.rng import ensure_rng
from repro.core.validation import KFold, cross_validate
from repro.kernels import NystromApproximation, RBFKernel
from repro.learn import SVC, KernelRidgeRegressor, OneClassSVM
from repro.transform import KernelPCA


@pytest.fixture
def data(rng):
    X = np.vstack([
        rng.normal(loc=-1.0, size=(20, 3)),
        rng.normal(loc=+1.0, size=(20, 3)),
    ])
    y = np.array([0] * 20 + [1] * 20)
    return X, y


def _kernel():
    return RBFKernel(gamma=0.4)


# ---------------------------------------------------------------------
# frozen reference implementations (pre-approximation algorithms)
# ---------------------------------------------------------------------

def reference_smo_svc(X, y, kernel, C=1.0, tol=1e-3, max_passes=5,
                      max_iter=2000, random_state=0):
    classes = np.unique(y)
    signs = np.where(y == classes[1], 1.0, -1.0)
    K = kernel.matrix(X)
    n = len(signs)
    rng = ensure_rng(random_state)
    alpha = np.zeros(n)
    b = 0.0
    passes = 0
    iteration = 0
    while passes < max_passes and iteration < max_iter:
        n_changed = 0
        for i in range(n):
            error_i = float((alpha * signs) @ K[:, i] + b - signs[i])
            violates = (
                (signs[i] * error_i < -tol and alpha[i] < C)
                or (signs[i] * error_i > tol and alpha[i] > 0)
            )
            if not violates:
                continue
            j = int(rng.integers(0, n - 1))
            if j >= i:
                j += 1
            error_j = float((alpha * signs) @ K[:, j] + b - signs[j])
            alpha_i_old = alpha[i]
            alpha_j_old = alpha[j]
            if signs[i] != signs[j]:
                low = max(0.0, alpha[j] - alpha[i])
                high = min(C, C + alpha[j] - alpha[i])
            else:
                low = max(0.0, alpha[i] + alpha[j] - C)
                high = min(C, alpha[i] + alpha[j])
            if high - low < 1e-12:
                continue
            eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
            if eta >= 0:
                continue
            alpha[j] -= signs[j] * (error_i - error_j) / eta
            alpha[j] = min(high, max(low, alpha[j]))
            if abs(alpha[j] - alpha_j_old) < 1e-7:
                continue
            alpha[i] += signs[i] * signs[j] * (alpha_j_old - alpha[j])
            b1 = (
                b - error_i
                - signs[i] * (alpha[i] - alpha_i_old) * K[i, i]
                - signs[j] * (alpha[j] - alpha_j_old) * K[i, j]
            )
            b2 = (
                b - error_j
                - signs[i] * (alpha[i] - alpha_i_old) * K[i, j]
                - signs[j] * (alpha[j] - alpha_j_old) * K[j, j]
            )
            if 0 < alpha[i] < C:
                b = b1
            elif 0 < alpha[j] < C:
                b = b2
            else:
                b = (b1 + b2) / 2.0
            n_changed += 1
        passes = passes + 1 if n_changed == 0 else 0
        iteration += 1
    support = alpha > 1e-8
    return (alpha * signs)[support], float(b), alpha


def reference_one_class(X, kernel, nu=0.2, tol=1e-6, max_iter=None):
    m = len(X)
    K = kernel.matrix(X)
    upper = 1.0 / (nu * m)
    alpha = np.full(m, 1.0 / m)
    gradient = K @ alpha
    max_iter = max_iter if max_iter is not None else max(2000, 40 * m)
    for _ in range(max_iter):
        can_grow = alpha < upper - 1e-12
        can_shrink = alpha > 1e-12
        if not can_grow.any() or not can_shrink.any():
            break
        i = int(np.argmin(np.where(can_grow, gradient, np.inf)))
        j = int(np.argmax(np.where(can_shrink, gradient, -np.inf)))
        violation = gradient[j] - gradient[i]
        if violation < tol:
            break
        curvature = K[i, i] + K[j, j] - 2.0 * K[i, j]
        if curvature <= 1e-12:
            step = min(upper - alpha[i], alpha[j])
        else:
            step = min(violation / curvature, upper - alpha[i], alpha[j])
        if step <= 0:
            break
        alpha[i] += step
        alpha[j] -= step
        gradient += step * (K[:, i] - K[:, j])
    support = alpha > 1e-9
    margin = support & (alpha < upper - 1e-9)
    scores = K @ alpha
    if margin.any():
        rho = float(np.mean(scores[margin]))
    else:
        rho = float(alpha @ scores)
    return alpha, rho


def reference_kernel_ridge(X, y, kernel, alpha=0.1):
    K = kernel.matrix(X)
    n = len(y)
    return np.linalg.solve(K + alpha * np.eye(n), y.astype(float))


def reference_kernel_pca(X, kernel, n_components=2, center=True):
    K = kernel.matrix(X)
    row_mean = K.mean(axis=0)
    total_mean = float(K.mean())
    if center:
        K = K - K.mean(axis=0, keepdims=True) \
            - K.mean(axis=0, keepdims=True).T + K.mean()
    eigenvalues, eigenvectors = np.linalg.eigh(K)
    order = np.argsort(eigenvalues)[::-1]
    k = min(n_components, len(X))
    keep = [
        i for i in order[:k]
        if eigenvalues[i] > 1e-10 * max(1.0, float(eigenvalues[order[0]]))
    ]
    lambdas = eigenvalues[keep]
    vectors = eigenvectors[:, keep]
    return vectors / np.sqrt(lambdas), row_mean, total_mean


# ---------------------------------------------------------------------
# bitwise equality of the library's exact path against the references
# ---------------------------------------------------------------------

class TestExactPathBitwise:
    def test_svc_exact_fit_is_bitwise_unchanged(self, data):
        X, y = data
        model = SVC(kernel=_kernel(), C=1.0, random_state=0).fit(X, y)
        dual_coef, intercept, alpha = reference_smo_svc(
            X, y, _kernel(), random_state=0
        )
        np.testing.assert_array_equal(model.dual_coef_, dual_coef)
        np.testing.assert_array_equal(model.alpha_, alpha)
        assert model.intercept_ == intercept

    def test_one_class_exact_fit_is_bitwise_unchanged(self, data):
        X, _ = data
        model = OneClassSVM(kernel=_kernel(), nu=0.2).fit(X)
        alpha, rho = reference_one_class(X, _kernel(), nu=0.2)
        np.testing.assert_array_equal(model.alpha_, alpha)
        assert model.rho_ == rho

    def test_kernel_ridge_exact_fit_is_bitwise_unchanged(self, data):
        X, _ = data
        y = np.sin(X[:, 0])
        model = KernelRidgeRegressor(kernel=_kernel(), alpha=0.1).fit(X, y)
        np.testing.assert_array_equal(
            model.dual_coef_, reference_kernel_ridge(X, y, _kernel())
        )

    def test_kernel_pca_exact_fit_is_bitwise_unchanged(self, data):
        X, _ = data
        model = KernelPCA(kernel=_kernel(), n_components=2).fit(X)
        dual_components, row_mean, total_mean = reference_kernel_pca(
            X, _kernel()
        )
        np.testing.assert_array_equal(
            model.dual_components_, dual_components
        )
        np.testing.assert_array_equal(model._row_mean, row_mean)
        assert model._total_mean == total_mean

    def test_exact_estimators_expose_no_feature_map(self, data):
        # the branch flag for the approximate path must stay unset on
        # exact fits, so downstream code can rely on its absence
        X, y = data
        assert getattr(
            SVC(kernel=_kernel(), random_state=0).fit(X, y),
            "feature_map_", None,
        ) is None
        assert getattr(
            OneClassSVM(kernel=_kernel()).fit(X), "feature_map_", None
        ) is None
        assert getattr(
            KernelPCA(kernel=_kernel()).fit(X), "feature_map_", None
        ) is None


# ---------------------------------------------------------------------
# backend invariance: serial == thread == process, exact and approximate
# ---------------------------------------------------------------------

class TestBackendInvariance:
    @pytest.mark.parametrize("approximation", [
        None,
        NystromApproximation(n_components=10, random_state=0),
    ], ids=["exact", "nystrom"])
    def test_cross_validate_scores_identical_across_backends(
        self, data, approximation
    ):
        X, y = data
        model = SVC(kernel=_kernel(), random_state=0,
                    approximation=approximation)
        cv = KFold(n_splits=3, shuffle=True, random_state=1)
        scores = {}
        for backend in ("serial", "thread", "process"):
            result = cross_validate(
                model, X, y, cv=cv, backend=backend, n_workers=2
            )
            scores[backend] = result["test_score"]
        np.testing.assert_array_equal(scores["serial"], scores["thread"])
        np.testing.assert_array_equal(scores["serial"], scores["process"])
