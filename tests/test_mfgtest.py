"""Tests for the manufacturing-test substrate (Figs. 11 and 12)."""

import numpy as np
import pytest

from repro.mfgtest import (
    CustomerReturnStudy,
    OneClassSVMDetector,
    PCAOutlierDetector,
    ParametricTestGenerator,
    RobustMahalanobisDetector,
    TestDropGenerator,
    WaferMap,
    analyze_drop_candidate,
    default_product_spec,
    make_wafer_map,
    random_signature,
    run_drop_study,
)
from repro.core.metrics import pearson_correlation


class TestWaferModel:
    def test_wafer_map_inside_circle(self):
        wafer = make_wafer_map(20, 20)
        assert np.all(wafer.radius() <= 1.0 + 1e-9)
        assert wafer.n_dies > 200

    def test_signature_field_shape(self, rng):
        wafer = make_wafer_map()
        signature = random_signature(rng)
        assert signature.field(wafer).shape == (wafer.n_dies,)

    def test_radial_signature_varies_center_to_edge(self):
        from repro.mfgtest import WaferSignature

        wafer = make_wafer_map()
        signature = WaferSignature(radial=1.0, tilt=(0.0, 0.0), offset=0.0)
        field = signature.field(wafer)
        center = field[np.argmin(wafer.radius())]
        edge = field[np.argmax(wafer.radius())]
        assert edge > center

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            make_wafer_map(1, 5)


class TestParametricGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        spec = default_product_spec(rng=np.random.default_rng(0))
        generator = ParametricTestGenerator(spec, random_state=1)
        return generator.generate(4000)

    def test_shapes(self, dataset):
        assert dataset.X.shape == (4000, dataset.product.n_tests)

    def test_tests_are_correlated(self, dataset):
        # the dominant shared factor induces strong cross-test correlation
        correlations = [
            abs(pearson_correlation(dataset.X[:, 0], dataset.X[:, j]))
            for j in range(1, dataset.product.n_tests)
        ]
        assert max(correlations) > 0.5

    def test_pass_rate_reasonable(self, dataset):
        pass_rate = dataset.pass_mask().mean()
        assert pass_rate > 0.9

    def test_passing_subset_all_within_limits(self, dataset):
        shipped = dataset.passing()
        lower, upper = shipped.product.limits()
        assert np.all(shipped.X >= lower)
        assert np.all(shipped.X <= upper)

    def test_defect_injection_shifts_targets(self):
        spec = default_product_spec(rng=np.random.default_rng(2))
        generator = ParametricTestGenerator(spec, random_state=3)
        clean = generator.generate(2000, defect_rate=0.0)
        dirty = ParametricTestGenerator(
            spec, random_state=3
        ).generate(2000, defect_rate=1.0, defect_signature={"T03": 2.0})
        index = spec.test_names.index("T03")
        shift = dirty.X[:, index].mean() - clean.X[:, index].mean()
        assert shift > 1.0

    def test_sister_product_is_shifted_same_loadings(self):
        spec = default_product_spec(rng=np.random.default_rng(4))
        sister = spec.sister("s", rng=np.random.default_rng(5))
        np.testing.assert_array_equal(sister.loadings, spec.loadings)
        assert not np.allclose(sister.factor_shift, spec.factor_shift)

    def test_wafer_ids_assigned(self, dataset):
        assert dataset.wafer_ids.max() > 0

    def test_measurement_dropout_injects_nans(self):
        spec = default_product_spec(rng=np.random.default_rng(6))
        generator = ParametricTestGenerator(spec, random_state=7)
        data = generator.generate(2000, measurement_dropout=0.02)
        missing_rate = float(np.mean(np.isnan(data.X)))
        assert missing_rate == pytest.approx(0.02, abs=0.01)

    def test_missing_measurements_never_ship(self):
        spec = default_product_spec(rng=np.random.default_rng(6))
        generator = ParametricTestGenerator(spec, random_state=7)
        data = generator.generate(500, measurement_dropout=0.05)
        has_nan = np.isnan(data.X).any(axis=1)
        assert not np.any(data.pass_mask() & has_nan)

    def test_imputation_restores_mineable_matrix(self):
        from repro.core import SimpleImputer

        spec = default_product_spec(rng=np.random.default_rng(6))
        generator = ParametricTestGenerator(spec, random_state=7)
        data = generator.generate(1000, measurement_dropout=0.03)
        imputed = SimpleImputer(strategy="median").fit_transform(data.X)
        assert not np.any(np.isnan(imputed))
        # imputation preserves the bulk statistics the screens rely on
        clean = ParametricTestGenerator(
            spec, random_state=7
        ).generate(1000)
        np.testing.assert_allclose(
            np.nanmedian(imputed, axis=0),
            np.median(clean.X, axis=0),
            atol=0.3,
        )

    def test_dropout_validation(self):
        spec = default_product_spec(rng=np.random.default_rng(6))
        generator = ParametricTestGenerator(spec, random_state=7)
        with pytest.raises(ValueError):
            generator.generate(10, measurement_dropout=1.0)


class TestOutlierDetectors:
    @pytest.fixture
    def population(self, rng):
        return rng.multivariate_normal(
            [0, 0, 0],
            [[1.0, 0.6, 0.3], [0.6, 1.0, 0.5], [0.3, 0.5, 1.0]],
            size=2000,
        )

    def test_mahalanobis_flags_joint_outlier(self, population):
        detector = RobustMahalanobisDetector(
            threshold_quantile=0.995
        ).fit(population)
        # a point inside every marginal but outside the correlation
        probe = np.array([[2.0, -2.0, 0.0]])
        assert detector.is_outlier(probe)[0]

    def test_mahalanobis_accepts_in_family(self, population):
        detector = RobustMahalanobisDetector(
            threshold_quantile=0.995
        ).fit(population)
        assert not detector.is_outlier(np.array([[0.5, 0.5, 0.5]]))[0]

    def test_mahalanobis_overkill_near_quantile(self, population):
        detector = RobustMahalanobisDetector(
            threshold_quantile=0.99
        ).fit(population)
        flagged = np.mean(detector.is_outlier(population))
        assert flagged == pytest.approx(0.01, abs=0.005)

    def test_mahalanobis_robust_to_contamination(self, population):
        dirty = np.vstack([population, np.full((30, 3), 15.0)])
        detector = RobustMahalanobisDetector().fit(dirty)
        assert detector.is_outlier(np.full((1, 3), 15.0))[0]

    def test_one_class_wrapper_interface(self, population):
        detector = OneClassSVMDetector(nu=0.05).fit(population[:300])
        scores = detector.score_samples(population[:50])
        assert len(scores) == 50
        assert detector.is_outlier(np.array([[20.0, 20.0, 20.0]]))[0]

    def test_pca_detector_flags_off_subspace_point(self, rng):
        # data lives on a 1-D line in 3-D; off-line points are outliers
        t = rng.normal(size=1000)
        X = np.column_stack([t, 2 * t, -t]) + rng.normal(
            0, 0.05, size=(1000, 3)
        )
        detector = PCAOutlierDetector(n_components=1).fit(X)
        assert detector.is_outlier(np.array([[0.0, 0.0, 3.0]]))[0]
        assert not detector.is_outlier(np.array([[1.0, 2.0, -1.0]]))[0]

    def test_detector_parameter_validation(self, population):
        with pytest.raises(ValueError):
            RobustMahalanobisDetector(trim_fraction=0.7).fit(population)
        with pytest.raises(ValueError):
            RobustMahalanobisDetector(threshold_quantile=0.2).fit(population)


class TestCustomerReturnStudy:
    @pytest.fixture(scope="class")
    def report(self):
        study = CustomerReturnStudy(random_state=2)
        return study.run(
            n_train=6000, n_later=6000, n_sister=6000,
            train_defect_rate=0.001, later_defect_rate=0.001,
            sister_defect_rate=0.001,
        )

    def test_selected_space_matches_defect_signature(self, report):
        assert set(report.selected_tests) == {"T03", "T07", "T09"}

    def test_training_returns_are_outliers(self, report):
        # Fig. 11 plot 1
        assert report.training.return_capture_rate == 1.0

    def test_later_batch_returns_captured(self, report):
        # Fig. 11 plot 2
        assert report.later_batch.n_returns > 0
        assert report.later_batch.return_capture_rate >= 0.5

    def test_sister_product_returns_captured(self, report):
        # Fig. 11 plot 3
        assert report.sister_product.n_returns > 0
        assert report.sister_product.return_capture_rate >= 0.5

    def test_overkill_stays_small(self, report):
        for outcome in (report.training, report.later_batch,
                        report.sister_product):
            assert outcome.overkill_rate < 0.01

    def test_rows_render(self, report):
        rows = report.rows()
        assert rows[0][0] == "selected test space"
        assert len(rows) == 4

    def test_projection_separates_returns(self):
        """Fig. 11's plot geometry: in the learned 3-D space, returns
        sit far from the passing cloud."""
        study = CustomerReturnStudy(random_state=2)
        study.run(
            n_train=4000, n_later=2000, n_sister=2000,
            train_defect_rate=0.0015, later_defect_rate=0.0015,
            sister_defect_rate=0.0015,
        )
        later = study._generate_shipped(study.spec, 4000, 0.0015)
        coordinates = study.projection(later)
        assert coordinates.shape == (later.n_chips, 3)
        # the returns break the *correlation structure*, so Mahalanobis
        # distance (the detector's score) is the separating measure —
        # raw Euclidean radius in the projected space need not be
        scores = study.detector_.score_samples(coordinates)
        good_scores = scores[~later.defect_mask]
        return_scores = scores[later.defect_mask]
        if later.defect_mask.any():
            assert return_scores.min() > np.percentile(good_scores, 99.9)

    def test_projection_requires_run(self):
        study = CustomerReturnStudy(random_state=3)
        dataset = study._generate_shipped(study.spec, 100, 0.0)
        with pytest.raises(RuntimeError):
            study.projection(dataset)


class TestDropStudy:
    def test_history_supports_dropping(self):
        generator = TestDropGenerator(random_state=0)
        history = generator.generate(100_000, "history", excursion_rate=0.0)
        decision = analyze_drop_candidate(
            history, "testA", ["test1", "test2"]
        )
        assert decision.recommended_drop
        assert decision.n_uncaught_fails == 0
        assert min(decision.correlations.values()) > 0.9

    def test_correlations_match_paper_values(self):
        generator = TestDropGenerator(random_state=1)
        batch = generator.generate(100_000, "b")
        rho_a1 = pearson_correlation(
            batch.measurements["testA"], batch.measurements["test1"]
        )
        rho_b1 = pearson_correlation(
            batch.measurements["testB"], batch.measurements["test1"]
        )
        assert rho_a1 == pytest.approx(0.97, abs=0.01)
        assert rho_b1 == pytest.approx(0.96, abs=0.015)

    def test_excursion_produces_escapes(self):
        result = run_drop_study(
            n_history=100_000,
            n_future=80_000,
            future_excursion_rate=1e-4,
            random_state=2,
        )
        assert all(d.recommended_drop for d in result.decisions)
        assert result.total_escapes() > 0

    def test_no_excursion_no_escapes(self):
        result = run_drop_study(
            n_history=60_000,
            n_future=40_000,
            future_excursion_rate=0.0,
            random_state=3,
        )
        assert result.total_escapes() == 0

    def test_uncaught_fails_block_drop(self):
        generator = TestDropGenerator(
            correlation_noise=3.0,  # destroy the correlation
            candidate_limit_sigma=2.0,
            random_state=4,
        )
        history = generator.generate(50_000, "history")
        decision = analyze_drop_candidate(
            history, "testA", ["test1", "test2"]
        )
        assert not decision.recommended_drop

    def test_decision_describe(self):
        generator = TestDropGenerator(random_state=5)
        history = generator.generate(20_000, "history")
        decision = analyze_drop_candidate(history, "testA", ["test1"])
        text = decision.describe()
        assert "corr(testA,test1)" in text
        assert text.endswith(("DROP", "KEEP"))

    def test_generator_parameter_validation(self):
        generator = TestDropGenerator(random_state=0)
        with pytest.raises(ValueError):
            generator.generate(0, "x")
        with pytest.raises(ValueError):
            generator.generate(10, "x", excursion_rate=2.0)


class TestTrainingFrameStandardization:
    """Regression: the screening scaler is fit once, on the training
    population.  The original implementation refit ``RobustScaler`` on
    every screened population, so a systematically shifted (skewed)
    lot was silently re-centered into the training frame and screened
    as if it were in-family — train/serve skew hiding exactly the lots
    a zero-return flow must hold.
    """

    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.mfgtest import DEFAULT_DEFECT_SIGNATURE

        study = CustomerReturnStudy(random_state=5)
        report = study.run(
            n_train=6000, n_later=2000, n_sister=2000,
            train_defect_rate=0.001, later_defect_rate=0.001,
            sister_defect_rate=0.002,
        )
        return study, report, DEFAULT_DEFECT_SIGNATURE

    def test_seeded_capture_and_overkill_pinned(self, fitted):
        _, report, _ = fitted
        assert report.training.return_capture_rate == 1.0
        assert report.later_batch.return_capture_rate == 1.0
        assert report.sister_product.return_capture_rate == 1.0
        for outcome in (report.training, report.later_batch,
                        report.sister_product):
            assert outcome.overkill_rate <= 0.005

    def test_scaler_is_fit_once_on_training_population(self, fitted):
        study, _, _ = fitted
        assert study.scaler_ is not None
        center_before = study.scaler_.center_.copy()
        extra = ParametricTestGenerator(
            study.spec, random_state=np.random.default_rng(99)
        ).generate(500, defect_rate=0.0).passing()
        study.projection(extra)
        assert np.array_equal(study.scaler_.center_, center_before), (
            "screening a new population must not refit the scaler"
        )

    def test_skewed_sister_lot_is_not_recentered(self, fitted):
        """A whole-lot drift along the defect signature must be seen.

        Every chip of the lot is shifted by the same vector (5 robust
        scale units on the signature tests).  In the training frame the
        entire lot is out-of-family and must be flagged; the pre-fix
        per-population refit re-centered the lot exactly (a constant
        shift moves the median by itself and leaves the IQR unchanged),
        making the skewed lot bitwise indistinguishable from a healthy
        one.
        """
        from repro.mfgtest import TestDataset

        study, _, signature = fitted
        base = ParametricTestGenerator(
            study.spec, random_state=np.random.default_rng(123)
        ).generate(1500, defect_rate=0.0).passing()

        delta = np.zeros(len(study.spec.test_names))
        for name in signature:
            index = study.spec.test_names.index(name)
            delta[index] = 5.0 * study.scaler_.scale_[index]
        skewed = TestDataset(
            product=base.product,
            X=base.X + delta,
            factors=base.factors,
            wafer_ids=base.wafer_ids,
            defect_mask=base.defect_mask,
        )

        flags_base = study.detector_.is_outlier(study.projection(base))
        flags_skewed = study.detector_.is_outlier(study.projection(skewed))
        assert flags_base.mean() < 0.01, "healthy lot over-flagged"
        assert flags_skewed.mean() > 0.99, (
            "skewed lot screened as in-family: standardization is not "
            "in the training coordinate frame"
        )
