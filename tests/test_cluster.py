"""Tests for the clustering catalogue (Section 2.4)."""

import numpy as np
import pytest

from repro.cluster import (
    NOISE,
    AffinityPropagation,
    AgglomerativeClustering,
    DBSCAN,
    KMeans,
    MeanShift,
    SpectralClustering,
    adjusted_rand_index,
    cluster_purity,
    estimate_bandwidth,
    silhouette_score,
)


@pytest.fixture
def three_blobs(rng):
    X = np.vstack(
        [
            rng.normal((-4.0, 0.0), 0.4, size=(30, 2)),
            rng.normal((4.0, 0.0), 0.4, size=(30, 2)),
            rng.normal((0.0, 5.0), 0.4, size=(30, 2)),
        ]
    )
    y = np.repeat([0, 1, 2], 30)
    return X, y


class TestKMeans:
    def test_recovers_blobs(self, three_blobs):
        X, y = three_blobs
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.95

    def test_inertia_decreases_with_k(self, three_blobs):
        X, _ = three_blobs
        inertias = [
            KMeans(n_clusters=k, random_state=0).fit(X).inertia_
            for k in (1, 2, 3, 5)
        ]
        assert inertias == sorted(inertias, reverse=True)

    def test_predict_assigns_nearest_center(self, three_blobs):
        X, _ = three_blobs
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        probe = model.cluster_centers_[1] + 0.01
        assert model.predict(probe.reshape(1, -1))[0] == 1

    def test_seeded_determinism(self, three_blobs):
        X, _ = three_blobs
        a = KMeans(n_clusters=3, random_state=5).fit(X)
        b = KMeans(n_clusters=3, random_state=5).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_rejects_more_clusters_than_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_fit_predict_matches_labels(self, three_blobs):
        X, _ = three_blobs
        model = KMeans(n_clusters=3, random_state=0)
        labels = model.fit_predict(X)
        np.testing.assert_array_equal(labels, model.labels_)


class TestAgglomerative:
    def test_recovers_blobs_all_linkages(self, three_blobs):
        X, y = three_blobs
        for linkage in ("single", "complete", "average"):
            model = AgglomerativeClustering(
                n_clusters=3, linkage=linkage
            ).fit(X)
            assert adjusted_rand_index(y, model.labels_) > 0.9, linkage

    def test_merge_count(self, three_blobs):
        X, _ = three_blobs
        model = AgglomerativeClustering(n_clusters=3).fit(X)
        assert len(model.merges_) == len(X) - 3

    def test_single_linkage_chains_elongated_cluster(self, rng):
        # a long thin line plus a compact blob: single linkage keeps the
        # line whole, complete linkage tends to cut it
        line = np.column_stack(
            [np.linspace(0, 10, 40), rng.normal(0, 0.05, 40)]
        )
        blob = rng.normal((5.0, 5.0), 0.2, size=(20, 2))
        X = np.vstack([line, blob])
        truth = np.array([0] * 40 + [1] * 20)
        single = AgglomerativeClustering(2, linkage="single").fit(X)
        assert adjusted_rand_index(truth, single.labels_) > 0.95

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(linkage="ward").fit(np.zeros((5, 2)))


class TestDBSCAN:
    def test_finds_clusters_and_noise(self, three_blobs):
        X, y = three_blobs
        X_noisy = np.vstack([X, [[100.0, 100.0]]])
        model = DBSCAN(eps=1.0, min_samples=4).fit(X_noisy)
        assert model.n_clusters_ == 3
        assert model.labels_[-1] == NOISE

    def test_discovers_count_without_k(self, rng):
        X = np.vstack(
            [rng.normal(c, 0.2, size=(25, 2)) for c in (-5.0, 0.0, 5.0, 10.0)]
        )
        model = DBSCAN(eps=1.0, min_samples=4).fit(X)
        assert model.n_clusters_ == 4

    def test_eps_too_small_marks_everything_noise(self, three_blobs):
        X, _ = three_blobs
        model = DBSCAN(eps=1e-6, min_samples=3).fit(X)
        assert np.all(model.labels_ == NOISE)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0).fit(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0).fit(np.zeros((5, 2)))


class TestSpectral:
    def test_recovers_blobs(self, three_blobs):
        X, y = three_blobs
        model = SpectralClustering(
            n_clusters=3, gamma=1.0, random_state=0
        ).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.9

    def test_separates_rings_where_kmeans_fails(self, rings):
        X, y = rings
        spectral = SpectralClustering(
            n_clusters=2, gamma=4.0, random_state=0
        ).fit(X)
        kmeans = KMeans(n_clusters=2, random_state=0).fit(X)
        assert adjusted_rand_index(y, spectral.labels_) > 0.9
        assert adjusted_rand_index(y, kmeans.labels_) < 0.5

    def test_precomputed_affinity(self, three_blobs):
        X, y = three_blobs
        sq = np.sum(X**2, axis=1)
        A = np.exp(-(sq[:, None] + sq[None, :] - 2 * X @ X.T))
        model = SpectralClustering(
            n_clusters=3, affinity="precomputed", random_state=0
        ).fit(A)
        assert adjusted_rand_index(y, model.labels_) > 0.9

    def test_engine_backed_rbf_matches_seed_inline_affinity(self, three_blobs):
        X, _ = three_blobs
        model = SpectralClustering(n_clusters=3, gamma=0.7, random_state=0)
        # the seed computed this expression inline; the engine-backed
        # path must reproduce it
        sq = np.sum(X * X, axis=1)
        seed_affinity = np.exp(
            -0.7 * np.clip(sq[:, None] + sq[None, :] - 2.0 * X @ X.T, 0.0, None)
        )
        np.testing.assert_allclose(
            model._affinity_matrix(X), seed_affinity, atol=1e-12
        )

    def test_fixed_seed_fit_golden_across_refits(self, three_blobs):
        X, _ = three_blobs
        first = SpectralClustering(n_clusters=3, random_state=0).fit(X)
        # second fit reuses the cached Gram block and the same k-means
        # seed: labels must be identical
        second = SpectralClustering(n_clusters=3, random_state=0).fit(X)
        np.testing.assert_array_equal(first.labels_, second.labels_)
        np.testing.assert_array_equal(first.embedding_, second.embedding_)

    def test_kernel_instance_affinity(self, three_blobs):
        from repro.kernels import GramEngine, RBFKernel

        X, y = three_blobs
        engine = GramEngine()
        model = SpectralClustering(
            n_clusters=3, affinity=RBFKernel(1.0), random_state=0,
            engine=engine,
        ).fit(X)
        assert adjusted_rand_index(y, model.labels_) > 0.9
        assert engine.counters.gram_calls == 1
        string_affinity = SpectralClustering(
            n_clusters=3, affinity="rbf", gamma=1.0, random_state=0
        ).fit(X)
        np.testing.assert_array_equal(
            model.labels_, string_affinity.labels_
        )

    def test_sequence_samples_cluster_via_kernel_affinity(self):
        from repro.kernels import SpectrumKernel

        programs = [["LD", "ST"] * 8 for _ in range(10)] + [
            ["MUL", "DIV"] * 8 for _ in range(10)
        ]
        truth = np.repeat([0, 1], 10)
        model = SpectralClustering(
            n_clusters=2, affinity=SpectrumKernel(k=2), random_state=0
        ).fit(programs)
        assert adjusted_rand_index(truth, model.labels_) == pytest.approx(1.0)


class TestMeanShift:
    def test_discovers_modes(self, three_blobs):
        X, y = three_blobs
        model = MeanShift(bandwidth=1.5).fit(X)
        assert len(model.cluster_centers_) == 3
        assert cluster_purity(y, model.labels_) > 0.95

    def test_bandwidth_heuristic_positive(self, three_blobs):
        X, _ = three_blobs
        assert estimate_bandwidth(X) > 0

    def test_predict_nearest_mode(self, three_blobs):
        X, _ = three_blobs
        model = MeanShift(bandwidth=1.5).fit(X)
        labels = model.predict(model.cluster_centers_)
        assert sorted(labels.tolist()) == list(
            range(len(model.cluster_centers_))
        )


class TestAffinityPropagation:
    def test_discovers_blob_count(self, three_blobs):
        X, y = three_blobs
        model = AffinityPropagation().fit(X)
        assert model.n_clusters_ == 3
        assert cluster_purity(y, model.labels_) > 0.95

    def test_exemplars_are_data_points(self, three_blobs):
        X, _ = three_blobs
        model = AffinityPropagation().fit(X)
        data_rows = {tuple(row) for row in X}
        for center in model.cluster_centers_:
            assert tuple(center) in data_rows

    def test_preference_controls_cluster_count(self, three_blobs):
        X, _ = three_blobs
        few = AffinityPropagation(preference=-500.0).fit(X)
        many = AffinityPropagation(preference=-1.0).fit(X)
        assert many.n_clusters_ >= few.n_clusters_

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            AffinityPropagation(damping=0.3).fit(np.zeros((5, 2)))


class TestClusterMetrics:
    def test_ari_identical_labelings(self):
        labels = [0, 0, 1, 1, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_invariant_to_label_permutation(self):
        a = [0, 0, 1, 1]
        b = [1, 1, 0, 0]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_random_near_zero(self, rng):
        a = rng.integers(0, 3, size=500)
        b = rng.integers(0, 3, size=500)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_silhouette_high_for_separated(self, three_blobs):
        X, y = three_blobs
        assert silhouette_score(X, y) > 0.7

    def test_silhouette_low_for_random_labels(self, three_blobs, rng):
        X, _ = three_blobs
        random_labels = rng.integers(0, 3, size=len(X))
        assert silhouette_score(X, random_labels) < 0.1

    def test_silhouette_requires_two_clusters(self, three_blobs):
        X, _ = three_blobs
        with pytest.raises(ValueError):
            silhouette_score(X, np.zeros(len(X)))

    def test_purity_bounds(self, three_blobs, rng):
        X, y = three_blobs
        assert cluster_purity(y, y) == 1.0
        assert 0.0 < cluster_purity(y, rng.integers(0, 3, len(y))) <= 1.0
