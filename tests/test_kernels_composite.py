"""Tests for kernel combinators and Gram utilities."""

import numpy as np
import pytest

from repro.kernels import (
    LinearKernel,
    NormalizedKernel,
    PolynomialKernel,
    PrecomputedKernel,
    ProductKernel,
    RBFKernel,
    ScaledKernel,
    SumKernel,
    center_gram,
    is_positive_semidefinite,
    normalize_gram,
)


class TestSumKernel:
    def test_weighted_sum(self, rng):
        x, z = rng.normal(size=2), rng.normal(size=2)
        k = SumKernel([LinearKernel(), RBFKernel(1.0)], weights=[2.0, 3.0])
        expected = 2.0 * LinearKernel()(x, z) + 3.0 * RBFKernel(1.0)(x, z)
        assert k(x, z) == pytest.approx(expected)

    def test_preserves_psd(self, rng):
        X = rng.normal(size=(15, 3))
        K = SumKernel([LinearKernel(), RBFKernel(0.5)]).matrix(X)
        assert is_positive_semidefinite(K)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            SumKernel([LinearKernel()], weights=[-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SumKernel([])


class TestProductKernel:
    def test_elementwise_product(self, rng):
        x, z = rng.normal(size=3), rng.normal(size=3)
        k = ProductKernel([RBFKernel(1.0), RBFKernel(2.0)])
        assert k(x, z) == pytest.approx(
            RBFKernel(1.0)(x, z) * RBFKernel(2.0)(x, z)
        )

    def test_preserves_psd_schur(self, rng):
        X = rng.normal(size=(12, 2))
        K = ProductKernel(
            [RBFKernel(0.5), PolynomialKernel(2, coef0=1.0)]
        ).matrix(X)
        assert is_positive_semidefinite(K)


class TestScaledAndNormalized:
    def test_scaled(self, rng):
        x, z = rng.normal(size=2), rng.normal(size=2)
        assert ScaledKernel(LinearKernel(), 4.0)(x, z) == pytest.approx(
            4.0 * float(np.dot(x, z))
        )

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ScaledKernel(LinearKernel(), -1.0)

    def test_normalized_diag_is_one(self, rng):
        X = rng.normal(size=(8, 3)) + 2.0
        K = NormalizedKernel(PolynomialKernel(2, coef0=1.0)).matrix(X)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_normalized_bounded(self, rng):
        X = rng.normal(size=(10, 3))
        K = NormalizedKernel(PolynomialKernel(2, coef0=1.0)).matrix(X)
        assert np.all(np.abs(K) <= 1.0 + 1e-9)


class TestPrecomputedKernel:
    def test_indexing(self):
        K = np.array([[2.0, 0.5], [0.5, 1.0]])
        k = PrecomputedKernel(K)
        assert k(0, 1) == 0.5
        np.testing.assert_allclose(k.matrix([1, 0]), [[1.0, 0.5], [0.5, 2.0]])

    def test_cross_matrix(self):
        K = np.arange(9, dtype=float).reshape(3, 3)
        k = PrecomputedKernel(K)
        np.testing.assert_allclose(
            k.cross_matrix([0, 2], [1]), [[1.0], [7.0]]
        )

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            PrecomputedKernel(np.zeros((2, 3)))


class TestGramUtilities:
    def test_center_gram_zeroes_feature_mean(self, rng):
        X = rng.normal(size=(20, 4)) + 3.0
        K = LinearKernel().matrix(X)
        Kc = center_gram(K)
        # centering in feature space == centering X then linear kernel
        Xc = X - X.mean(axis=0)
        np.testing.assert_allclose(Kc, Xc @ Xc.T, atol=1e-8)

    def test_normalize_gram_unit_diag(self, rng):
        X = rng.normal(size=(10, 3))
        K = PolynomialKernel(2, coef0=1.0).matrix(X)
        np.testing.assert_allclose(np.diag(normalize_gram(K)), 1.0)

    def test_psd_check_detects_non_psd(self):
        K = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        assert not is_positive_semidefinite(K)

    def test_psd_check_detects_asymmetry(self):
        K = np.array([[1.0, 0.5], [0.2, 1.0]])
        assert not is_positive_semidefinite(K)
