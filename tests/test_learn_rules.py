"""Tests for CN2-SD subgroup discovery (the Table 1 / Fig. 10 learner)."""

import numpy as np
import pytest

from repro.learn import CN2SD, RuleSetClassifier
from repro.learn.rules import (
    Condition,
    Rule,
    weighted_relative_accuracy,
)


class TestCondition:
    def test_threshold_matching(self):
        X = np.array([[1.0], [5.0]])
        assert Condition(0, "<=", 3.0).matches(X).tolist() == [True, False]
        assert Condition(0, ">", 3.0).matches(X).tolist() == [False, True]

    def test_equality_matching(self):
        X = np.array([[2.0], [3.0]])
        assert Condition(0, "==", 2.0).matches(X).tolist() == [True, False]

    def test_str_uses_feature_name(self):
        condition = Condition(1, ">", 0.5, feature_name="via45")
        assert "via45 > 0.5" in str(condition)


class TestWRAcc:
    def test_zero_for_uninformative_rule(self):
        covered = np.array([True, True, False, False])
        positive = np.array([True, False, True, False])
        weights = np.ones(4)
        assert weighted_relative_accuracy(
            covered, positive, weights
        ) == pytest.approx(0.0)

    def test_positive_for_enriching_rule(self):
        covered = np.array([True, True, False, False])
        positive = np.array([True, True, False, False])
        weights = np.ones(4)
        assert weighted_relative_accuracy(covered, positive, weights) > 0

    def test_weighting_reduces_covered_value(self):
        covered = np.array([True, True, False, False])
        positive = np.array([True, True, False, False])
        full = weighted_relative_accuracy(covered, positive, np.ones(4))
        decayed = weighted_relative_accuracy(
            covered, positive, np.array([0.1, 0.1, 1.0, 1.0])
        )
        assert decayed < full


class TestCN2SD:
    def test_recovers_conjunctive_concept(self, rng):
        X = rng.uniform(size=(400, 4))
        y = ((X[:, 1] > 0.7) & (X[:, 3] < 0.3)).astype(int)
        learner = CN2SD(target_class=1, max_rules=3).fit(
            X, y, feature_names=["a", "b", "c", "d"]
        )
        assert learner.rules_
        top = learner.rules_[0]
        assert set(top.features_used()) == {1, 3}
        assert top.precision > 0.8

    def test_recovers_disjunctive_concept(self, rng):
        X = rng.uniform(size=(500, 4))
        y = ((X[:, 0] > 0.85) | (X[:, 2] < 0.1)).astype(int)
        learner = CN2SD(
            target_class=1, max_rules=4, max_conditions=2
        ).fit(X, y)
        used = learner.features_used()
        assert 0 in used
        assert 2 in used

    def test_rules_cover_most_positives(self, rng):
        X = rng.uniform(size=(400, 3))
        y = (X[:, 0] > 0.6).astype(int)
        learner = CN2SD(target_class=1, max_rules=3).fit(X, y)
        covered = learner.covers(X)
        recall = np.sum(covered & (y == 1)) / np.sum(y == 1)
        assert recall > 0.8

    def test_no_duplicate_rules(self, rng):
        X = rng.uniform(size=(300, 4))
        y = ((X[:, 1] > 0.5) & (X[:, 2] > 0.5)).astype(int)
        learner = CN2SD(target_class=1, max_rules=5).fit(X, y)
        signatures = [
            tuple(sorted((c.feature, c.operator, c.value)
                         for c in rule.conditions))
            for rule in learner.rules_
        ]
        assert len(signatures) == len(set(signatures))

    def test_describe_is_engineer_readable(self, rng):
        X = rng.uniform(size=(200, 2))
        y = (X[:, 0] > 0.5).astype(int)
        learner = CN2SD(target_class=1).fit(
            X, y, feature_names=["via45_count", "wire_m5"]
        )
        assert "via45_count" in learner.describe()
        assert "IF" in learner.describe()

    def test_requires_target_examples(self, rng):
        X = rng.uniform(size=(50, 2))
        with pytest.raises(ValueError, match="target class"):
            CN2SD(target_class=1).fit(X, np.zeros(50, dtype=int))

    def test_gamma_validation(self, rng):
        X = rng.uniform(size=(50, 2))
        y = (X[:, 0] > 0.5).astype(int)
        with pytest.raises(ValueError):
            CN2SD(gamma=1.0).fit(X, y)

    def test_max_conditions_respected(self, rng):
        X = rng.uniform(size=(300, 5))
        y = ((X[:, 0] > 0.5) & (X[:, 1] > 0.5) & (X[:, 2] > 0.5)).astype(int)
        learner = CN2SD(target_class=1, max_conditions=2).fit(X, y)
        for rule in learner.rules_:
            assert len(rule.conditions) <= 2

    def test_low_cardinality_features_get_equality_conditions(self):
        X = np.column_stack(
            [np.tile([0.0, 1.0], 50), np.random.default_rng(0).uniform(size=100)]
        )
        y = (X[:, 0] == 1.0).astype(int)
        learner = CN2SD(target_class=1, max_conditions=1).fit(X, y)
        assert learner.rules_[0].precision == 1.0


class TestRuleSetClassifier:
    def test_behaves_as_binary_classifier(self, rng):
        X = rng.uniform(size=(300, 3))
        y = (X[:, 1] > 0.6).astype(int)
        model = RuleSetClassifier(max_rules=3).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_custom_class_labels(self, rng):
        X = rng.uniform(size=(200, 2))
        y = np.where(X[:, 0] > 0.5, "slow", "fast")
        model = RuleSetClassifier(
            positive_class="slow", negative_class="fast"
        ).fit(X, y)
        assert set(model.predict(X)) <= {"slow", "fast"}
