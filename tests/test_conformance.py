"""The registry × checks conformance matrix, one pytest id per cell.

Each cell reports as ``<Estimator>.<check>`` so a failure pinpoints
exactly which estimator broke which contract.  Companion suites:
``test_conformance_regressions.py`` holds one targeted test per bug the
harness originally surfaced.
"""

import numpy as np
import pytest

from repro.core.base import Estimator, TransformerMixin
from repro.testing import (
    ALL_CHECKS,
    MAX_WAIVERS,
    ConformanceFailure,
    check_estimator,
    iter_specs,
    run_case,
    run_conformance,
    spec_names,
    unregistered_classes,
)

pytestmark = pytest.mark.conformance

_CASES = [
    (spec.name, check_name)
    for spec in iter_specs()
    for check_name in ALL_CHECKS
]


@pytest.mark.parametrize(
    "estimator,check",
    _CASES,
    ids=[f"{estimator}.{check}" for estimator, check in _CASES],
)
def test_conformance_cell(estimator, check):
    result = run_case({"estimator": estimator, "check": check})
    if result["status"] == "failed":
        pytest.fail(f"{estimator}.{check}: {result['detail']}")
    assert result["status"] in ("passed", "waived", "skipped")


class TestRegistryCompleteness:
    def test_every_concrete_estimator_is_registered(self):
        import repro.cluster  # noqa: F401 — imports are the point
        import repro.learn  # noqa: F401
        import repro.transform  # noqa: F401

        missing = unregistered_classes()
        assert not missing, (
            "estimators missing a conformance spec: "
            f"{sorted(cls.__name__ for cls in missing)} — register them "
            "in repro/testing/registry.py"
        )

    def test_registry_names_are_class_names(self):
        # base name is the class; an optional "@variant" suffix marks an
        # alternative-path spec for the same class (e.g. "SVC@nystrom")
        for spec in iter_specs():
            assert spec.name.partition("@")[0] == spec.cls.__name__

    def test_every_spec_constructs_and_is_tagged(self):
        for spec in iter_specs():
            est = spec.make()
            assert isinstance(est, Estimator)
            assert spec.tags, f"{spec.name} has no capability tags"


class TestWaiverBudget:
    def test_total_waivers_within_budget(self):
        total = sum(len(spec.waivers) for spec in iter_specs())
        assert total <= MAX_WAIVERS, (
            f"{total} waivers exceed the budget of {MAX_WAIVERS}; fix "
            "estimators instead of waiving them"
        )

    def test_every_waiver_names_a_check_and_gives_a_reason(self):
        for spec in iter_specs():
            for check_name, reason in spec.waivers.items():
                assert check_name in ALL_CHECKS, (
                    f"{spec.name} waives unknown check {check_name!r}"
                )
                assert len(reason) >= 20, (
                    f"{spec.name} waiver for {check_name!r} needs a real "
                    "reason string"
                )


class _NaNSwallowingScaler(Estimator, TransformerMixin):
    """Deliberately broken: accepts any X without validation."""

    def __init__(self, factor: float = 1.0):
        self.factor = factor

    def fit(self, X, y=None):
        self.scale_ = float(self.factor)
        return self

    def transform(self, X):
        return np.asarray(X, dtype=float) * self.scale_


class TestCheckEstimatorRunner:
    def test_registered_estimator_passes_by_name(self):
        results = check_estimator("StandardScaler")
        assert all(r["status"] != "failed" for r in results)

    def test_broken_estimator_is_flagged(self):
        with pytest.raises(ConformanceFailure) as excinfo:
            check_estimator(_NaNSwallowingScaler())
        message = str(excinfo.value)
        assert "_NaNSwallowingScaler" in message
        assert "rejects_nan_X" in message

    def test_raise_on_failure_false_returns_results(self):
        results = check_estimator(_NaNSwallowingScaler(),
                                  raise_on_failure=False)
        statuses = {r["status"] for r in results}
        assert "failed" in statuses

    def test_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            check_estimator(object())


class TestParallelRunner:
    def test_thread_backend_matches_serial(self):
        subset = spec_names()[:3]
        serial = run_conformance(estimators=subset, backend="serial")
        threaded = run_conformance(estimators=subset, backend="thread",
                                   n_workers=4)
        assert serial == threaded

    def test_matrix_order_is_deterministic(self):
        subset = spec_names()[:2]
        checks = tuple(ALL_CHECKS)[:4]
        result = run_conformance(estimators=subset, checks=checks,
                                 backend="serial")
        expected = [
            (estimator, check)
            for estimator in subset
            for check in checks
        ]
        assert [(r["estimator"], r["check"]) for r in result] == expected
