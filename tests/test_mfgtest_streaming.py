"""StreamingTestFloor + discovery-loop streaming: determinism, resume,
and the SIGKILL-mid-stream acceptance scenario."""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import CheckpointStore
from repro.mfgtest import (
    StreamingMahalanobisDetector,
    StreamingTestFloor,
    run_streaming_discovery,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

FLOOR_KWARGS = dict(n_batches=6, batch_size=120, defect_rate=0.01,
                    random_state=77)


# ---------------------------------------------------------------------
# the floor itself
# ---------------------------------------------------------------------


class TestStreamingTestFloor:
    def test_shape_and_timestamps(self):
        floor = StreamingTestFloor(n_batches=4, batch_size=50,
                                   start_time=100.0, seconds_per_batch=2.5,
                                   random_state=0)
        assert len(floor) == 4
        assert floor.total_chips == 200
        batches = list(floor)
        assert [b.index for b in batches] == [0, 1, 2, 3]
        assert [b.timestamp for b in batches] == [100.0, 102.5, 105.0, 107.5]
        assert all(b.n_chips == 50 for b in batches)

    def test_batches_tile_the_campaign(self):
        floor = StreamingTestFloor(**FLOOR_KWARGS)
        X = np.vstack([floor.batch(i).dataset.X for i in range(len(floor))])
        assert np.array_equal(X, floor.campaign.X)

    def test_random_access_is_deterministic(self):
        floor = StreamingTestFloor(**FLOOR_KWARGS)
        again = floor.batch(3)
        assert np.array_equal(floor.batch(3).dataset.X, again.dataset.X)

    def test_same_seed_same_stream(self):
        a = StreamingTestFloor(**FLOOR_KWARGS)
        b = StreamingTestFloor(**FLOOR_KWARGS)
        assert np.array_equal(a.campaign.X, b.campaign.X)
        assert np.array_equal(a.campaign.defect_mask, b.campaign.defect_mask)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_fingerprint(self):
        a = StreamingTestFloor(n_batches=3, batch_size=40, random_state=1)
        b = StreamingTestFloor(n_batches=3, batch_size=40, random_state=2)
        assert a.fingerprint() != b.fingerprint()
        assert not np.array_equal(a.campaign.X, b.campaign.X)

    def test_index_and_shape_validation(self):
        floor = StreamingTestFloor(n_batches=3, batch_size=40,
                                   random_state=0)
        with pytest.raises(IndexError):
            floor.batch(3)
        with pytest.raises(IndexError):
            floor.batch(-1)
        with pytest.raises(ValueError):
            StreamingTestFloor(n_batches=0)
        with pytest.raises(ValueError):
            StreamingTestFloor(batch_size=0)


# ---------------------------------------------------------------------
# streaming discovery over the floor
# ---------------------------------------------------------------------


class TestRunStreamingDiscovery:
    def test_consumes_whole_stream(self):
        floor = StreamingTestFloor(**FLOOR_KWARGS)
        run = run_streaming_discovery(floor)
        assert run.consumed_batches == len(floor)
        assert run.resumed_batches == 0
        assert run.n_chips == sum(
            floor.batch(i).dataset.passing().n_chips
            for i in range(len(floor))
        )
        assert isinstance(run.model, StreamingMahalanobisDetector)
        assert [r["batch"] for r in run.records] == list(range(len(floor)))

    def test_model_equals_direct_stream(self):
        """The loop is plumbing: the model it grows is bitwise the model
        you'd get streaming the shipped chips by hand."""
        floor = StreamingTestFloor(**FLOOR_KWARGS)
        run = run_streaming_discovery(floor)
        direct = StreamingMahalanobisDetector()
        for micro in floor:
            direct.partial_fit(micro.dataset.passing().X)
        assert np.array_equal(run.model.location_, direct.location_)
        assert np.array_equal(run.model.precision_, direct.precision_)

    def test_resume_in_process_is_bitwise(self, tmp_path):
        floor = StreamingTestFloor(**FLOOR_KWARGS)
        reference = run_streaming_discovery(floor)

        store = CheckpointStore(str(tmp_path / "ckpt"), allow_pickle=True)

        class StopAfter:
            """Judge that raises once enough batches have been mined."""

            def __init__(self, limit):
                self.seen = 0
                self.limit = limit

            def __call__(self, result):
                self.seen += 1
                if self.seen > self.limit:
                    raise KeyboardInterrupt
                return result["batch"] == len(floor) - 1, "feedback"

        fingerprint = "stream-resume-test"
        with pytest.raises(KeyboardInterrupt):
            run_streaming_discovery(floor, judge=StopAfter(3),
                                    checkpoint=store,
                                    run_fingerprint=fingerprint)
        assert len(store) > 0

        resumed = run_streaming_discovery(floor, checkpoint=store,
                                          run_fingerprint=fingerprint)
        assert resumed.resumed_batches == 3
        assert resumed.consumed_batches == len(floor)
        assert np.array_equal(resumed.model.location_,
                              reference.model.location_)
        assert np.array_equal(resumed.model.precision_,
                              reference.model.precision_)
        probe = floor.campaign.X
        assert np.array_equal(resumed.model.score_samples(probe),
                              reference.model.score_samples(probe))


# ---------------------------------------------------------------------
# the SIGKILL acceptance scenario
# ---------------------------------------------------------------------

_DRIVER = """\
import sys

sys.path.insert(0, {src!r})

from repro.core import CheckpointStore
from repro.mfgtest import StreamingTestFloor, run_streaming_discovery

ckpt_dir = sys.argv[1]
floor = StreamingTestFloor(n_batches=6, batch_size=120, defect_rate=0.01,
                           random_state=77)


def slow_judge(result):
    import time
    time.sleep(0.15)
    return result["batch"] == len(floor) - 1, "feedback"


run_streaming_discovery(
    floor,
    judge=slow_judge,
    checkpoint=CheckpointStore(ckpt_dir, allow_pickle=True),
    run_fingerprint="sigkill-stream",
)
print("COMPLETED")
"""


@pytest.mark.chaos
def test_sigkill_midstream_resume_is_bitwise_identical(tmp_path):
    """Acceptance: SIGKILL a checkpointed streaming run mid-stream,
    restart over the same store, and the resumed trajectory — batches,
    counts, and final model state — is bitwise identical to a run that
    was never interrupted."""
    floor = StreamingTestFloor(**FLOOR_KWARGS)
    reference = run_streaming_discovery(floor)

    ckpt_dir = str(tmp_path / "ckpt")
    script = tmp_path / "driver.py"
    script.write_text(_DRIVER.format(src=SRC))

    proc = subprocess.Popen(
        [sys.executable, str(script), ckpt_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # wait for at least two mined batches to land on disk, then
        # kill the driver dead — no signal handler gets to run
        deadline = time.monotonic() + 60.0
        store = CheckpointStore(ckpt_dir, allow_pickle=True)
        while len(store) < 3:  # campaign meta + 2 iterations
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate()
                pytest.fail(
                    f"driver finished before it could be killed: "
                    f"{out!r} {err!r}"
                )
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL

    resumed = run_streaming_discovery(
        floor,
        checkpoint=CheckpointStore(ckpt_dir, allow_pickle=True),
        run_fingerprint="sigkill-stream",
    )
    assert resumed.resumed_batches >= 2
    assert resumed.consumed_batches == len(floor)
    assert resumed.resumed_batches < len(floor)

    assert [r["batch"] for r in resumed.records] == [
        r["batch"] for r in reference.records
    ]
    for resumed_record, reference_record in zip(resumed.records,
                                                reference.records):
        for key in ("n_chips", "n_flagged", "n_returns",
                    "n_returns_flagged", "timestamp"):
            assert resumed_record[key] == reference_record[key]

    assert np.array_equal(resumed.model.location_,
                          reference.model.location_)
    assert np.array_equal(resumed.model.precision_,
                          reference.model.precision_)
    probe = floor.campaign.X
    assert np.array_equal(resumed.model.score_samples(probe),
                          reference.model.score_samples(probe))
