"""Correctness tests for the shared Gram-matrix engine.

Covers the cache contract (bitwise-identical hits, structural
invalidation, LRU byte budget), the parallel chunked fallback (must
match serial evaluation exactly), the blockwise assembly, the
instrumentation counters, and the ``gram_matrix`` shim.
"""

import numpy as np
import pytest

from repro.kernels import (
    GramEngine,
    Kernel,
    RBFKernel,
    SpectrumKernel,
    default_engine,
    gram_matrix,
    set_default_engine,
)


class CallOnlyRBF(Kernel):
    """An object-sample kernel with no vectorized collection path, so
    the engine must use its chunked pairwise fallback."""

    def __init__(self, gamma: float = 1.0):
        self.gamma = float(gamma)

    def __call__(self, x, z) -> float:
        diff = np.asarray(x, float) - np.asarray(z, float)
        return float(np.exp(-self.gamma * diff @ diff))


class CountingKernel(Kernel):
    """Counts pairwise evaluations (call-level, no fast path)."""

    n_calls = 0

    def __init__(self, tag: int = 0):
        self.tag = tag

    def __call__(self, x, z) -> float:
        type(self).n_calls += 1
        return float(np.dot(np.asarray(x, float), np.asarray(z, float)))


@pytest.fixture
def vectors(rng):
    return rng.normal(size=(40, 3))


@pytest.fixture
def programs(rng):
    vocabulary = ["LD", "ST", "ADD", "SUB", "MUL", "SYNC"]
    return [
        [vocabulary[i] for i in rng.integers(0, 6, size=25)]
        for _ in range(30)
    ]


class TestCache:
    def test_hit_returns_bitwise_identical_matrix(self, programs):
        engine = GramEngine(block_size=8)
        kernel = SpectrumKernel(k=2)
        first = engine.gram(kernel, programs)
        before = engine.counters.cache_hits
        second = engine.gram(kernel, programs)
        assert np.array_equal(first, second)
        assert engine.counters.cache_hits > before
        # all blocks of the second call were served from cache
        assert engine.counters.hit_rate == pytest.approx(0.5)

    def test_structurally_equal_kernel_instance_hits(self, vectors):
        engine = GramEngine()
        first = engine.gram(RBFKernel(0.5), vectors)
        second = engine.gram(RBFKernel(0.5), vectors)  # a different object
        assert np.array_equal(first, second)
        assert engine.counters.cache_hits == 1

    def test_hyperparameter_change_invalidates(self, vectors):
        engine = GramEngine()
        engine.gram(RBFKernel(0.5), vectors)
        engine.gram(RBFKernel(0.9), vectors)
        assert engine.counters.cache_hits == 0
        assert engine.counters.cache_misses == 2
        assert engine.cache_info()["entries"] == 2

    def test_data_change_invalidates(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        engine.gram(kernel, vectors)
        perturbed = vectors.copy()
        perturbed[0, 0] += 1e-9
        engine.gram(kernel, perturbed)
        assert engine.counters.cache_hits == 0

    def test_mutating_returned_matrix_does_not_poison_cache(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        first = engine.gram(kernel, vectors)
        original = first[0, 0]
        first[0, 0] = 123.0
        second = engine.gram(kernel, vectors)
        assert second[0, 0] == original

    def test_cross_gram_caches_too(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        first = engine.cross_gram(kernel, vectors[:10], vectors[10:])
        second = engine.cross_gram(kernel, vectors[:10], vectors[10:])
        assert np.array_equal(first, second)
        assert engine.counters.cache_hits == 1

    def test_cache_disabled_when_budget_zero(self, vectors):
        engine = GramEngine(cache_bytes=0)
        kernel = RBFKernel(0.5)
        engine.gram(kernel, vectors)
        engine.gram(kernel, vectors)
        assert engine.counters.cache_hits == 0
        assert engine.cache_info()["entries"] == 0

    def test_clear_cache(self, vectors):
        engine = GramEngine()
        engine.gram(RBFKernel(0.5), vectors)
        assert engine.cache_info()["entries"] == 1
        engine.clear_cache()
        assert engine.cache_info() == {
            "entries": 0,
            "bytes": 0,
            "budget_bytes": engine.cache_bytes,
        }


class TestLRUEviction:
    def test_byte_budget_is_respected(self, rng):
        X = rng.normal(size=(32, 2))
        block_bytes = 32 * 32 * 8
        engine = GramEngine(cache_bytes=3 * block_bytes)
        for gamma in (0.1, 0.2, 0.3, 0.4, 0.5):
            engine.gram(RBFKernel(gamma), X)
        info = engine.cache_info()
        assert info["bytes"] <= engine.cache_bytes
        assert info["entries"] == 3
        assert engine.counters.evictions == 2

    def test_least_recently_used_is_evicted_first(self, rng):
        X = rng.normal(size=(16, 2))
        block_bytes = 16 * 16 * 8
        engine = GramEngine(cache_bytes=2 * block_bytes)
        engine.gram(RBFKernel(0.1), X)
        engine.gram(RBFKernel(0.2), X)
        engine.gram(RBFKernel(0.1), X)  # refresh 0.1 → 0.2 is now LRU
        engine.gram(RBFKernel(0.3), X)  # evicts 0.2
        engine.reset_counters()
        engine.gram(RBFKernel(0.1), X)
        assert engine.counters.cache_hits == 1
        engine.gram(RBFKernel(0.2), X)
        assert engine.counters.cache_misses == 1

    def test_block_larger_than_budget_is_not_cached(self, rng):
        X = rng.normal(size=(32, 2))
        engine = GramEngine(cache_bytes=100)  # smaller than any block
        engine.gram(RBFKernel(0.5), X)
        assert engine.cache_info()["entries"] == 0


class TestParallelFallback:
    def test_parallel_matches_serial_exactly(self, rng):
        X = list(rng.normal(size=(37, 3)))
        kernel = CallOnlyRBF(0.6)
        serial = GramEngine(block_size=10, chunk_size=3, n_jobs=1)
        parallel = GramEngine(block_size=10, chunk_size=3, n_jobs=4)
        K_serial = serial.gram(kernel, X)
        K_parallel = parallel.gram(kernel, X)
        assert np.array_equal(K_serial, K_parallel)
        np.testing.assert_allclose(
            K_serial, RBFKernel(0.6).matrix(np.asarray(X)), atol=1e-12
        )

    def test_parallel_cross_matches_serial_exactly(self, rng):
        A = list(rng.normal(size=(23, 3)))
        B = list(rng.normal(size=(31, 3)))
        kernel = CallOnlyRBF(0.4)
        serial = GramEngine(block_size=8, chunk_size=4, n_jobs=1)
        parallel = GramEngine(block_size=8, chunk_size=4, n_jobs=3)
        assert np.array_equal(
            serial.cross_gram(kernel, A, B), parallel.cross_gram(kernel, A, B)
        )

    def test_fallback_matches_base_class_loop(self, rng):
        X = list(rng.normal(size=(19, 3)))
        kernel = CallOnlyRBF(0.8)
        engine = GramEngine(block_size=100)  # single block
        assert np.array_equal(
            engine.gram(kernel, X), Kernel.matrix(kernel, X)
        )

    def test_symmetric_fallback_evaluates_triangle_only(self, rng):
        X = list(rng.normal(size=(12, 2)))
        CountingKernel.n_calls = 0
        GramEngine(block_size=100, cache_bytes=0).gram(CountingKernel(), X)
        assert CountingKernel.n_calls == 12 * 13 // 2

    @pytest.mark.slow
    def test_parallel_stress_many_blocks(self, rng):
        X = list(rng.normal(size=(120, 3)))
        kernel = CallOnlyRBF(0.5)
        serial = GramEngine(block_size=16, chunk_size=5, n_jobs=1)
        parallel = GramEngine(block_size=16, chunk_size=5, n_jobs=-1)
        assert np.array_equal(serial.gram(kernel, X), parallel.gram(kernel, X))


class TestBlockwiseAssembly:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 64])
    def test_gram_matches_whole_matrix(self, vectors, block_size):
        engine = GramEngine(block_size=block_size)
        kernel = RBFKernel(0.5)
        np.testing.assert_allclose(
            engine.gram(kernel, vectors), kernel.matrix(vectors), atol=1e-12
        )

    @pytest.mark.parametrize("block_size", [1, 4, 9, 64])
    def test_cross_gram_matches_whole_matrix(self, vectors, block_size):
        engine = GramEngine(block_size=block_size)
        kernel = RBFKernel(0.5)
        np.testing.assert_allclose(
            engine.cross_gram(kernel, vectors[:13], vectors[13:]),
            kernel.cross_matrix(vectors[:13], vectors[13:]),
            atol=1e-12,
        )

    def test_single_block_is_bitwise_equal_to_kernel_matrix(self, vectors):
        engine = GramEngine(block_size=4096)
        kernel = RBFKernel(0.5)
        assert np.array_equal(engine.gram(kernel, vectors),
                              kernel.matrix(vectors))

    def test_sequence_samples_blockwise(self, programs):
        engine = GramEngine(block_size=7)
        kernel = SpectrumKernel(k=2)
        np.testing.assert_allclose(
            engine.gram(kernel, programs), kernel.matrix(programs), atol=1e-12
        )

    def test_empty_and_single_sample(self):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        assert engine.gram(kernel, np.empty((0, 2))).shape == (0, 0)
        K = engine.gram(kernel, np.array([[1.0, 2.0]]))
        assert K.shape == (1, 1)
        assert K[0, 0] == pytest.approx(1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GramEngine(block_size=0)
        with pytest.raises(ValueError):
            GramEngine(cache_bytes=-1)
        with pytest.raises(ValueError):
            GramEngine(n_jobs=0)
        with pytest.raises(ValueError):
            GramEngine(chunk_size=0)


class TestCounters:
    def test_counts_and_stats_shape(self, vectors):
        engine = GramEngine(block_size=10)
        kernel = RBFKernel(0.5)
        engine.gram(kernel, vectors)
        engine.cross_gram(kernel, vectors[:5], vectors[5:])
        stats = engine.stats()
        assert stats["gram_calls"] == 1
        assert stats["cross_calls"] == 1
        assert stats["blocks_computed"] > 0
        assert stats["pair_evaluations"] > 0
        assert stats["compute_seconds"] >= 0.0
        assert stats["cached_bytes"] <= stats["cache_budget_bytes"]

    def test_pair_evaluations_not_charged_on_hits(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        engine.gram(kernel, vectors)
        evaluated = engine.counters.pair_evaluations
        engine.gram(kernel, vectors)
        assert engine.counters.pair_evaluations == evaluated

    def test_reset_counters_keeps_cache(self, vectors):
        engine = GramEngine()
        engine.gram(RBFKernel(0.5), vectors)
        engine.reset_counters()
        assert engine.counters.gram_calls == 0
        engine.gram(RBFKernel(0.5), vectors)
        assert engine.counters.cache_hits == 1

    def test_duck_typed_kernel_without_cache_key_is_uncached(self, vectors):
        class NoKey:
            """Call-only duck-typed kernel (no Kernel base, no cache_key)."""

            def __call__(self, x, z):
                return float(np.dot(x, z))

        engine = GramEngine(block_size=100)
        K = engine.gram(NoKey(), vectors[:6])
        np.testing.assert_allclose(
            K, vectors[:6] @ vectors[:6].T, atol=1e-12
        )
        assert engine.counters.uncached_blocks == 1
        assert engine.counters.cache_hits == 0
        assert engine.counters.cache_misses == 0
        assert engine.cache_info()["entries"] == 0


class TestDefaultEngineAndShim:
    def test_gram_matrix_shim_routes_through_default_engine(self, vectors):
        probe = GramEngine()
        previous = set_default_engine(probe)
        try:
            kernel = RBFKernel(0.5)
            K = gram_matrix(kernel, vectors)
            np.testing.assert_allclose(K, kernel.matrix(vectors), atol=1e-12)
            assert probe.counters.gram_calls == 1
            assert default_engine() is probe
        finally:
            set_default_engine(previous)

    def test_gram_matrix_accepts_explicit_engine(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        gram_matrix(kernel, vectors, engine=engine)
        assert engine.counters.gram_calls == 1

    def test_deepcopy_shares_the_engine(self):
        import copy

        engine = GramEngine()
        assert copy.deepcopy(engine) is engine


class TestFloat32BlockMode:
    """The dtype-aware block path: downcasting, budgets, cache keying."""

    def test_float32_gram_within_budget_of_float64(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        K64 = engine.gram(kernel, vectors)
        K32 = engine.gram(kernel, vectors, dtype="float32")
        assert K32.dtype == np.float32
        scale = max(1.0, float(np.abs(K64).max()))
        assert np.abs(K32.astype(float) - K64).max() <= (
            engine.float32_error_budget * scale
        )

    def test_engine_level_dtype_default(self, vectors):
        engine = GramEngine(dtype="float32")
        assert engine.gram(RBFKernel(0.5), vectors).dtype == np.float32
        # per-call override wins over the engine default
        assert (
            engine.gram(RBFKernel(0.5), vectors, dtype="float64").dtype
            == np.float64
        )

    def test_downcast_counter_increments(self, vectors):
        engine = GramEngine(block_size=16)
        engine.gram(RBFKernel(0.5), vectors, dtype="float32")
        assert engine.counters.downcast_blocks > 0
        engine.reset_counters()
        engine.gram(RBFKernel(0.7), vectors)
        assert engine.counters.downcast_blocks == 0

    def test_impossible_budget_raises(self, vectors):
        engine = GramEngine(float32_error_budget=1e-16)
        with pytest.raises(ValueError, match="error budget"):
            engine.gram(RBFKernel(0.5), vectors, dtype="float32")

    def test_rejects_unsupported_dtype(self, vectors):
        with pytest.raises(ValueError):
            GramEngine(dtype="int32")
        with pytest.raises(ValueError):
            GramEngine().gram(RBFKernel(0.5), vectors, dtype="float16")
        with pytest.raises(ValueError):
            GramEngine(float32_error_budget=0.0)

    def test_cross_gram_float32(self, vectors):
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        C64 = engine.cross_gram(kernel, vectors[:10], vectors[10:])
        C32 = engine.cross_gram(kernel, vectors[:10], vectors[10:],
                                dtype="float32")
        assert C32.dtype == np.float32
        np.testing.assert_allclose(C32, C64, atol=1e-6)

    def test_cache_keyed_on_dtype_no_stale_blocks(self, vectors):
        # regression: a float64 warm cache must never serve blocks to a
        # float32 request (or vice versa) — the dtypes are distinct
        # cache entries
        engine = GramEngine()
        kernel = RBFKernel(0.5)
        engine.gram(kernel, vectors)  # warm float64
        warm_hits = engine.counters.cache_hits
        K32 = engine.gram(kernel, vectors, dtype="float32")
        assert engine.counters.cache_hits == warm_hits  # no cross-dtype hit
        assert K32.dtype == np.float32
        # both dtypes now warm: each repeat call is a pure cache hit
        again32 = engine.gram(kernel, vectors, dtype="float32")
        again64 = engine.gram(kernel, vectors)
        assert engine.counters.cache_hits > warm_hits
        assert again32.dtype == np.float32
        assert again64.dtype == np.float64
        np.testing.assert_array_equal(again32, K32)

    def test_float32_survives_pickle(self, vectors):
        import pickle

        engine = GramEngine(dtype="float32", float32_error_budget=1e-5)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.dtype == np.dtype("float32")
        assert clone.float32_error_budget == 1e-5
        assert clone.gram(RBFKernel(0.5), vectors).dtype == np.float32
