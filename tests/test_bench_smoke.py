"""Smoke tests for the figure/perf benchmarks in ``benchmarks/``.

Benchmarks only run on demand, so an API change can silently rot them
between campaigns.  These smokes keep them honest cheaply: every module
must import cleanly (which exercises its ``repro`` imports and
module-level setup), and the data-builder + model machinery of the
heavier benches must run end-to-end at tiny N.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

pytestmark = pytest.mark.smoke

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def _load(path: pathlib.Path):
    name = f"_bench_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_bench_directory_is_populated():
    assert len(BENCH_FILES) >= 18


@pytest.mark.parametrize("path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES])
def test_bench_module_imports(path):
    module = _load(path)
    test_functions = [n for n in dir(module) if n.startswith("test_")]
    assert test_functions, f"{path.name} defines no test functions"


class TestTinyRuns:
    """Run the actual bench machinery at toy sizes."""

    def test_fig2_models_fit_tiny_problem(self):
        module = _load(BENCH_DIR / "bench_fig2_basic_ideas.py")
        X_train, X_test, y_train, y_test = module.make_problem(seed=0, n=40)
        for _, factory in module.MODELS:
            model = factory().fit(X_train, y_train)
            assert len(model.predict(X_test)) == len(y_test)

    def test_fig3_rings_are_ring_shaped(self):
        module = _load(BENCH_DIR / "bench_fig3_kernel_trick.py")
        X, y = module.make_rings(seed=0, n_per_class=12)
        assert X.shape == (24, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_fig5_noisy_problem_splits(self):
        module = _load(BENCH_DIR / "bench_fig5_overfitting.py")
        X_train, y_train, X_val, y_val = module.noisy_problem(
            seed=0, n_train=24, n_val=16
        )
        assert len(X_train) == len(y_train) == 24
        assert len(X_val) == len(y_val) == 16

    def test_gram_engine_matches_naive_at_tiny_n(self):
        module = _load(BENCH_DIR / "bench_perf_gram_engine.py")
        from repro.kernels import GramEngine, Kernel, SpectrumKernel

        programs = module._make_programs(6, length=10)
        kernel = SpectrumKernel(k=3)
        naive = Kernel.matrix(kernel, programs)
        engine_gram = GramEngine().gram(kernel, programs)
        np.testing.assert_allclose(engine_gram, naive, atol=1e-10)

    def test_model_selection_pipeline_fits_tiny_data(self):
        module = _load(BENCH_DIR / "bench_perf_model_selection.py")
        X, y = module._make_data(n=24, seed=0)
        pipeline = module._pipeline().fit(X, y)
        assert pipeline.score(X, y) > 0.5

    def test_perf_scale_bench_runs_tiny(self, monkeypatch):
        # the full bench extrapolates to N=20k; at tiny env-overridden
        # sizes every stage (data builders, exact curve, approximate
        # fits, sink payload merge) must still run end to end
        from repro.artifacts import MetricSink

        module = _load(BENCH_DIR / "bench_perf_scale.py")
        monkeypatch.setenv("REPRO_SCALE_N", "300")
        monkeypatch.setenv("REPRO_SCALE_EXACT_NS", "40,80,160")
        monkeypatch.setenv("REPRO_SCALE_CURVE_N", "60")
        monkeypatch.setenv("REPRO_SCALE_SEQ_N", "80")
        sink = MetricSink(bench="perf_scale", echo=False)

        module.test_perf_scale_svc_vector(sink)
        module.test_perf_scale_error_curves(sink)
        module.test_perf_scale_one_class_sequence(sink)
        assert len(sink.texts) == 3
        payload = sink.summary()["payload"]
        assert payload["svc_vector"]["exact_extrapolated"] is True
        assert payload["svc_vector"]["accuracy"]["budget"] == 0.02
        assert payload["svc_vector"]["speedup"] > 0
        assert {"svc_vector", "error_curve", "one_class_sequence"} <= set(
            payload
        )
        # the flattened metric names the gate rules reference exist
        metrics = sink.metrics()
        assert "svc_vector.accuracy.delta" in metrics
        assert "one_class_sequence.decision_agreement" in metrics

    def test_every_bench_registers_a_spec(self):
        from repro.artifacts import find_bench

        for path in BENCH_FILES:
            _load(path)
            name = path.stem[len("bench_"):]
            spec = find_bench(name)
            assert spec is not None, f"{path.name} registered no BenchSpec"
            assert spec.name == name

    def test_perf_scale_data_builders(self):
        module = _load(BENCH_DIR / "bench_perf_scale.py")
        X, y = module._returns_data(50, seed=0)
        assert X.shape == (50, 8) and set(np.unique(y)) == {0, 1}
        programs = module._programs(12, length=10)
        assert len(programs) == 12 and len(programs[0]) == 10
        seconds, exponent = module._power_law_extrapolate(
            [100, 200, 400], [1.0, 4.0, 16.0], 800
        )
        assert exponent == pytest.approx(2.0)
        assert seconds == pytest.approx(64.0)

    def test_imbalance_evaluation_runs_tiny(self):
        module = _load(BENCH_DIR / "bench_abl_imbalance.py")
        classifier_recall, screen_recall = module.evaluate_both(
            n_good=40, n_rare=6, seed=0
        )
        assert 0.0 <= classifier_recall <= 1.0
        assert 0.0 <= screen_recall <= 1.0
