"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def blobs(rng):
    """Two well-separated Gaussian blobs: (X, y) with y in {0, 1}."""
    X = np.vstack(
        [
            rng.normal(-2.0, 0.6, size=(40, 2)),
            rng.normal(2.0, 0.6, size=(40, 2)),
        ]
    )
    y = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
    return X, y


@pytest.fixture
def rings(rng):
    """Concentric classes: not linearly separable in the input space
    (the Fig. 3 geometry)."""
    n = 60
    inner_radius = rng.uniform(0.0, 1.0, n)
    inner_angle = rng.uniform(0.0, 2 * np.pi, n)
    outer_radius = rng.uniform(2.0, 3.0, n)
    outer_angle = rng.uniform(0.0, 2 * np.pi, n)
    X = np.vstack(
        [
            np.column_stack(
                [inner_radius * np.cos(inner_angle),
                 inner_radius * np.sin(inner_angle)]
            ),
            np.column_stack(
                [outer_radius * np.cos(outer_angle),
                 outer_radius * np.sin(outer_angle)]
            ),
        ]
    )
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return X, y


@pytest.fixture
def sine_regression(rng):
    """1-D noisy sine wave regression data."""
    X = rng.uniform(-3.0, 3.0, size=(80, 1))
    y = np.sin(X[:, 0]) + rng.normal(0.0, 0.05, size=80)
    return X, y


@pytest.fixture
def linear_regression_data(rng):
    """y = 2 x0 - x1 + 0.5 + noise."""
    X = rng.normal(0.0, 1.0, size=(100, 2))
    y = 2.0 * X[:, 0] - X[:, 1] + 0.5 + rng.normal(0.0, 0.01, size=100)
    return X, y
