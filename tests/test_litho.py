"""Tests for the lithography substrate (Fig. 8 / Fig. 9)."""

import numpy as np
import pytest

from repro.litho import (
    Layout,
    LayoutGenerator,
    LithographySimulator,
    ProcessWindow,
    VariabilityPredictor,
    clip_histogram_features,
    density_histogram,
    edge_histogram,
    histogram_feature_matrix,
    run_length_histogram,
    run_variability_experiment,
    window_grid,
)


class TestLayout:
    def test_binarizes_pixels(self):
        layout = Layout(np.array([[0, 2], [5, 0]]))
        assert set(np.unique(layout.pixels)) <= {0, 1}

    def test_density(self):
        layout = Layout(np.array([[1, 0], [0, 0]]))
        assert layout.density() == pytest.approx(0.25)

    def test_window_bounds_checked(self):
        layout = Layout(np.zeros((10, 10)))
        with pytest.raises(ValueError):
            layout.window(8, 8, 4)

    def test_window_grid_covers_layout(self):
        layout = Layout(np.zeros((64, 64)))
        anchors, clips = window_grid(layout, size=32, stride=16)
        assert len(anchors) == 9
        assert clips[0].shape == (32, 32)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Layout(np.zeros(10))


class TestLayoutGenerator:
    def test_seeded_determinism(self):
        a = LayoutGenerator(random_state=5).generate()
        b = LayoutGenerator(random_state=5).generate()
        np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_nonempty_and_nonfull(self):
        layout = LayoutGenerator(random_state=0).generate()
        assert 0.02 < layout.density() < 0.9

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            LayoutGenerator().generate(rows=8, cols=8)


class TestFeatures:
    def test_density_histogram_mass(self):
        clip = np.ones((16, 16))
        histogram = density_histogram(clip, block=4, n_bins=8)
        assert histogram.sum() == 16  # 4x4 blocks
        assert histogram[-1] == 16  # all blocks fully dense

    def test_run_length_histogram_counts_runs(self):
        clip = np.zeros((4, 8), dtype=int)
        clip[0, 0:3] = 1  # one horizontal run of 3
        histogram = run_length_histogram(clip, max_run=8)
        assert histogram[2] >= 1  # run length 3 -> bin index 2

    def test_run_length_long_runs_clamped(self):
        clip = np.ones((1, 50), dtype=int)
        histogram = run_length_histogram(clip, max_run=4)
        assert histogram[3] > 0

    def test_edge_histogram_dense_grating_vs_block(self):
        grating = np.zeros((16, 16), dtype=int)
        grating[:, ::2] = 1
        block = np.zeros((16, 16), dtype=int)
        block[4:12, 4:12] = 1
        grating_hist = edge_histogram(grating)
        block_hist = edge_histogram(block)
        # grating scanlines have many transitions -> mass in higher bins
        upper = len(grating_hist) // 2
        assert grating_hist[upper:].sum() > block_hist[upper:].sum()

    def test_feature_vector_nonnegative(self, rng):
        clip = (rng.uniform(size=(32, 32)) > 0.5).astype(int)
        features = clip_histogram_features(clip)
        assert np.all(features >= 0)

    def test_feature_matrix_shape(self, rng):
        clips = [(rng.uniform(size=(32, 32)) > 0.5).astype(int)
                 for _ in range(5)]
        H = histogram_feature_matrix(clips)
        assert H.shape[0] == 5
        assert H.shape[1] == len(clip_histogram_features(clips[0]))


class TestLithographySimulator:
    def test_aerial_image_bounded(self):
        layout = LayoutGenerator(random_state=1).generate(rows=64, cols=64)
        image = LithographySimulator().aerial_image(layout)
        assert image.min() >= 0.0
        assert image.max() <= 1.0 + 1e-9

    def test_wide_line_prints_fine_line_may_not(self):
        pixels = np.zeros((64, 64), dtype=int)
        pixels[10:22, 8:56] = 1  # 12-wide bar
        pixels[40:41, 8:56] = 1  # 1-wide line
        simulator = LithographySimulator()
        printed = simulator.printed_image(Layout(pixels))
        assert printed[16, 32] == 1  # center of wide bar prints
        assert printed[40, 32] == 0  # thin line lost at this blur

    def test_variability_concentrates_at_edges(self):
        pixels = np.zeros((64, 64), dtype=int)
        pixels[16:48, 16:48] = 1
        variability = LithographySimulator().variability_map(Layout(pixels))
        assert variability[32, 32] < 0.2  # deep inside: stable
        edge_band = variability[32, 12:21]  # around the left edge
        assert edge_band.max() > variability[32, 32]

    def test_fine_grating_more_variable_than_block(self):
        grating = np.zeros((64, 64), dtype=int)
        for start in range(8, 56, 4):
            grating[8:56, start : start + 2] = 1
        block = np.zeros((64, 64), dtype=int)
        block[8:56, 8:56] = 1
        simulator = LithographySimulator()
        grating_score = simulator.variability_map(Layout(grating)).mean()
        block_score = simulator.variability_map(Layout(block)).mean()
        assert grating_score > block_score

    def test_label_windows_percentile_default(self):
        layout = LayoutGenerator(random_state=2).generate(rows=128, cols=128)
        anchors, _ = window_grid(layout, 32, 16)
        scores, labels = LithographySimulator().label_windows(
            layout, anchors, 32
        )
        assert len(scores) == len(anchors)
        assert 0 < labels.sum() < len(labels)

    def test_process_window_corners(self):
        process = ProcessWindow()
        corners = process.corners()
        assert (process.nominal_blur, process.nominal_threshold) in corners
        assert len(corners) == 9

    def test_rejects_nonpositive_blur(self):
        layout = Layout(np.zeros((32, 32)))
        with pytest.raises(ValueError):
            LithographySimulator().aerial_image(layout, blur=0.0)


class TestVariabilityPrediction:
    @pytest.fixture(scope="class")
    def report(self):
        generator = LayoutGenerator(random_state=7)
        train = generator.generate(rows=192, cols=192)
        test = generator.generate(rows=192, cols=192)
        report, details = run_variability_experiment(
            train, test, window_size=32, stride=8, random_state=0
        )
        return report, details

    def test_recall_is_high(self, report):
        # Fig. 9: most simulator-flagged hotspots found by the model
        assert report[0].recall > 0.6

    def test_auc_beats_chance(self, report):
        assert report[0].auc > 0.8

    def test_details_align(self, report):
        _, details = report
        assert len(details["truth"]) == len(details["scores"])
        assert len(details["anchors"]) == len(details["truth"])

    def test_one_class_mode_runs(self):
        generator = LayoutGenerator(random_state=9)
        train = generator.generate(rows=128, cols=128)
        anchors, clips = window_grid(train, 32, 16)
        simulator = LithographySimulator()
        _, labels = simulator.label_windows(train, anchors, 32)
        predictor = VariabilityPredictor(mode="one_class", nu=0.2)
        predictor.fit(clips, labels)
        predictions = predictor.predict(clips)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            VariabilityPredictor(mode="magic")

    def test_unfitted_predictor_raises(self, rng):
        predictor = VariabilityPredictor()
        with pytest.raises(RuntimeError):
            predictor.predict([(rng.uniform(size=(32, 32)) > 0.5)])
