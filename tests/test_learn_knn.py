"""Tests for nearest-neighbor learners (Section 2.1 idea #1)."""

import numpy as np
import pytest

from repro.learn import KNeighborsClassifier, KNeighborsRegressor


class TestKNNClassifier:
    def test_one_neighbor_memorizes_training_set(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 0, 1])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict([[0.05]])[0] == 0

    def test_distance_weights_break_ties_toward_closer(self):
        # 2 far class-0 points vs 1 near class-1 point, k=3
        X = np.array([[0.0], [4.0], [4.1]])
        y = np.array([1, 0, 0])
        uniform = KNeighborsClassifier(n_neighbors=3, weights="uniform")
        distance = KNeighborsClassifier(n_neighbors=3, weights="distance")
        assert uniform.fit(X, y).predict([[0.2]])[0] == 0
        assert distance.fit(X, y).predict([[0.2]])[0] == 1

    def test_predict_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        proba = model.predict_proba(X[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_exact_hit_dominates_distance_weighting(self):
        X = np.array([[0.0], [1.0], [1.1]])
        y = np.array([1, 0, 0])
        model = KNeighborsClassifier(
            n_neighbors=3, weights="distance"
        ).fit(X, y)
        assert model.predict([[0.0]])[0] == 1

    def test_manhattan_metric(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(
            n_neighbors=3, metric="manhattan"
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_rejects_k_larger_than_dataset(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=5).fit(
                [[0.0], [1.0]], [0, 1]
            )

    def test_rejects_unknown_metric(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(metric="cosine").fit(X, y)
        with pytest.raises(ValueError):
            model.predict(X[:1])

    def test_rejects_bad_weights(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="gravity").fit(X, y)


class TestKNNRegressor:
    def test_interpolates_smooth_function(self, sine_regression):
        X, y = sine_regression
        model = KNeighborsRegressor(n_neighbors=5).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_one_neighbor_reproduces_training_targets(self, sine_regression):
        X, y = sine_regression
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_prediction_is_neighbor_mean(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([2.0, 4.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict([[0.5]])[0] == pytest.approx(3.0)

    def test_distance_weighted_regression_pulls_to_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(
            n_neighbors=2, weights="distance"
        ).fit(X, y)
        assert model.predict([[0.1]])[0] < 5.0
