"""Tests for Apriori association rule mining ([26])."""

import pytest

from repro.learn import (
    apriori_frequent_itemsets,
    generate_rules,
    mine_association_rules,
)

MARKET = [
    {"bread", "milk"},
    {"bread", "diapers", "beer", "eggs"},
    {"milk", "diapers", "beer", "cola"},
    {"bread", "milk", "diapers", "beer"},
    {"bread", "milk", "diapers", "cola"},
]


class TestFrequentItemsets:
    def test_singleton_supports(self):
        frequent = apriori_frequent_itemsets(MARKET, min_support=0.4)
        assert frequent[frozenset(["bread"])] == pytest.approx(0.8)
        assert frequent[frozenset(["beer"])] == pytest.approx(0.6)

    def test_pair_supports(self):
        frequent = apriori_frequent_itemsets(MARKET, min_support=0.4)
        assert frequent[frozenset(["diapers", "beer"])] == pytest.approx(0.6)

    def test_below_threshold_excluded(self):
        frequent = apriori_frequent_itemsets(MARKET, min_support=0.4)
        assert frozenset(["eggs"]) not in frequent

    def test_downward_closure(self):
        frequent = apriori_frequent_itemsets(MARKET, min_support=0.4)
        for itemset in frequent:
            if len(itemset) > 1:
                for item in itemset:
                    assert itemset - {item} in frequent

    def test_min_support_one_returns_only_universal(self):
        frequent = apriori_frequent_itemsets(
            [{"a", "b"}, {"a"}], min_support=1.0
        )
        assert set(frequent) == {frozenset(["a"])}

    def test_rejects_bad_support(self):
        with pytest.raises(ValueError):
            apriori_frequent_itemsets(MARKET, min_support=0.0)

    def test_rejects_empty_transactions(self):
        with pytest.raises(ValueError):
            apriori_frequent_itemsets([], min_support=0.5)


class TestRuleGeneration:
    def test_classic_diapers_beer_rule(self):
        rules = mine_association_rules(
            MARKET, min_support=0.4, min_confidence=0.7
        )
        found = [
            r for r in rules
            if r.antecedent == frozenset(["beer"])
            and r.consequent == frozenset(["diapers"])
        ]
        assert found
        assert found[0].confidence == pytest.approx(1.0)
        assert found[0].lift > 1.0

    def test_confidence_threshold_filters(self):
        loose = mine_association_rules(MARKET, 0.4, min_confidence=0.6)
        strict = mine_association_rules(MARKET, 0.4, min_confidence=0.95)
        assert len(strict) <= len(loose)
        assert all(r.confidence >= 0.95 for r in strict)

    def test_rules_sorted_by_lift(self):
        rules = mine_association_rules(MARKET, 0.4, 0.6)
        lifts = [r.lift for r in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_lift_definition(self):
        frequent = apriori_frequent_itemsets(MARKET, min_support=0.4)
        rules = generate_rules(frequent, min_confidence=0.6)
        for rule in rules:
            expected = rule.confidence / frequent[rule.consequent]
            assert rule.lift == pytest.approx(expected)

    def test_string_rendering(self):
        rules = mine_association_rules(MARKET, 0.4, 0.7)
        text = str(rules[0])
        assert "=>" in text
        assert "confidence=" in text

    def test_rejects_bad_confidence(self):
        frequent = apriori_frequent_itemsets(MARKET, 0.4)
        with pytest.raises(ValueError):
            generate_rules(frequent, min_confidence=0.0)


class TestOnEDAFlavoredData:
    def test_instruction_attribute_cooccurrence(self):
        # tests exercising unaligned loads tend to exercise locked ops
        transactions = []
        for i in range(30):
            items = {"has_load"}
            if i % 3 == 0:
                items |= {"unaligned", "locked"}
            if i % 5 == 0:
                items.add("mmio")
            transactions.append(items)
        rules = mine_association_rules(
            transactions, min_support=0.2, min_confidence=0.9
        )
        pair = [
            r for r in rules
            if r.antecedent == frozenset(["unaligned"])
            and "locked" in r.consequent
        ]
        assert pair
        assert pair[0].confidence == pytest.approx(1.0)
