"""Edge-case and failure-injection tests across modules.

Covers the awkward inputs each component must survive: degenerate
programs, empty traces, collapsed template ranges, single-sample
datasets, and pathological kernel inputs.
"""

import numpy as np
import pytest

from repro.verification import (
    CoverageTrace,
    Instruction,
    LoadStoreUnitSimulator,
    Program,
    TestTemplate,
)


class TestSimulatorEdgeCases:
    def test_empty_program(self):
        simulator = LoadStoreUnitSimulator()
        result = simulator.simulate(Program([]))
        assert result.cross_points == {}
        assert result.special_hits == []

    def test_alu_only_program_touches_no_lsu(self):
        simulator = LoadStoreUnitSimulator()
        result = simulator.simulate(
            Program([Instruction("ADD"), Instruction("XOR")])
        )
        assert simulator.coverage.n_cross_covered == 0

    def test_sc_without_ll_fails(self):
        simulator = LoadStoreUnitSimulator()
        result = simulator.simulate(
            Program([Instruction("SC", address=0x100)])
        )
        assert result.summary["sc_failures"] == 1

    def test_line_crossing_access_touches_two_lines(self):
        from repro.verification import CACHE_LINE_BYTES

        simulator = LoadStoreUnitSimulator()
        boundary = 4 * CACHE_LINE_BYTES
        # the crossing access caches BOTH lines (one miss event), so the
        # two aligned follow-ups within the same test both hit
        result = simulator.simulate(
            Program(
                [
                    Instruction("LW", address=boundary - 2),
                    Instruction("LW", address=boundary - 4),
                    Instruction("LW", address=boundary),
                ]
            )
        )
        assert result.summary["cache_misses"] == 1

    def test_repeated_sync_is_harmless(self):
        simulator = LoadStoreUnitSimulator()
        result = simulator.simulate(
            Program([Instruction("SYNC")] * 5)
        )
        assert result.summary["sync_drains"] == 0  # nothing to drain


class TestTemplateEdgeCases:
    def test_constrained_empty_intersection_collapses_to_midpoint(self):
        template = TestTemplate()
        refined = template.constrained(
            {"misaligned_fraction": (0.5, 0.9)}  # disjoint from (0, .06)
        )
        low, high = refined.knob_ranges["misaligned_fraction"]
        assert low == high == pytest.approx(0.7)

    def test_point_range_sampling(self, rng):
        template = TestTemplate()
        template.knob_ranges["misaligned_fraction"] = (0.05, 0.05)
        knobs = template.sample_knobs(rng)
        assert knobs["misaligned_fraction"] == pytest.approx(0.05)


class TestCoverageTrace:
    def test_tests_to_reach_none_when_unreached(self):
        trace = CoverageTrace()
        trace.record(1, 5)
        trace.record(2, 8)
        assert trace.tests_to_reach(100) is None
        assert trace.tests_to_reach(8) == 2
        assert trace.tests_to_reach(5) == 1

    def test_empty_trace(self):
        trace = CoverageTrace()
        assert trace.final_coverage == 0
        assert trace.tests_to_reach(1) is None


class TestSingleishSamples:
    def test_svc_with_two_samples(self):
        from repro.learn import SVC
        from repro.kernels import LinearKernel

        model = SVC(kernel=LinearKernel(), C=1.0, random_state=0)
        model.fit(np.array([[0.0], [1.0]]), np.array([0, 1]))
        assert model.predict(np.array([[-1.0]]))[0] == 0
        assert model.predict(np.array([[2.0]]))[0] == 1

    def test_one_class_on_single_sample(self):
        from repro.learn import OneClassSVM
        from repro.kernels import RBFKernel

        model = OneClassSVM(kernel=RBFKernel(1.0), nu=0.5)
        model.fit(np.array([[0.0, 0.0]]))
        assert model.predict(np.array([[0.0, 0.0]]))[0] == 1
        assert model.predict(np.array([[5.0, 5.0]]))[0] == -1

    def test_kmeans_single_cluster(self, rng):
        from repro.cluster import KMeans

        X = rng.normal(size=(10, 2))
        model = KMeans(n_clusters=1, random_state=0).fit(X)
        assert set(model.labels_.tolist()) == {0}
        np.testing.assert_allclose(
            model.cluster_centers_[0], X.mean(axis=0), atol=1e-9
        )

    def test_pca_more_components_than_rank(self):
        from repro.transform import PCA

        X = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])  # rank 1
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_[0] > 0.999


class TestKernelEdgeCases:
    def test_spectrum_kernel_single_token_programs(self):
        from repro.kernels import SpectrumKernel

        k = SpectrumKernel(k=2)
        # programs shorter than k have no bigrams at all
        assert k(["LD"], ["LD"]) == 0.0

    def test_hi_kernel_all_zero_histograms(self):
        from repro.kernels import HistogramIntersectionKernel

        k = HistogramIntersectionKernel()
        K = k.matrix(np.zeros((3, 4)))
        assert np.all(np.isfinite(K))

    def test_rbf_identical_points_gram_is_ones(self):
        from repro.kernels import RBFKernel

        X = np.ones((4, 2))
        np.testing.assert_allclose(RBFKernel(1.0).matrix(X), 1.0)


class TestMetricsEdgeCases:
    def test_r2_constant_truth(self):
        from repro.core.metrics import r2_score

        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_confusion_matrix_with_unseen_predicted_label(self):
        from repro.core.metrics import confusion_matrix

        matrix, labels = confusion_matrix([0, 0], [0, 9])
        assert labels == [0, 9]
        assert matrix[0, 1] == 1

    def test_format_series_single_point(self):
        from repro.flows import format_series

        text = format_series([1], [2])
        assert "1" in text and "2" in text
