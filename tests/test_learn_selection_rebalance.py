"""Tests for feature selection and rebalancing (Section 2.4)."""

import numpy as np
import pytest

from repro.learn import (
    OutlierSeparationSelector,
    SelectKBest,
    correlation_score,
    f_score,
    imbalance_ratio,
    mutual_information_score,
    random_oversample,
    random_undersample,
    smote,
)


@pytest.fixture
def labeled(rng):
    """Five features, only features 1 and 3 carry class signal."""
    n = 300
    y = rng.integers(0, 2, size=n)
    X = rng.normal(size=(n, 5))
    X[:, 1] += 2.0 * y
    X[:, 3] -= 1.5 * y
    return X, y


class TestUnivariateScores:
    def test_f_score_ranks_signal_features(self, labeled):
        X, y = labeled
        scores = f_score(X, y)
        assert set(np.argsort(-scores)[:2]) == {1, 3}

    def test_correlation_score_ranks_signal_features(self, labeled):
        X, y = labeled
        scores = correlation_score(X, y.astype(float))
        assert set(np.argsort(-scores)[:2]) == {1, 3}

    def test_mutual_information_ranks_signal_features(self, labeled):
        X, y = labeled
        scores = mutual_information_score(X, y)
        assert set(np.argsort(-scores)[:2]) == {1, 3}

    def test_mi_nonnegative(self, labeled):
        X, y = labeled
        assert np.all(mutual_information_score(X, y) >= 0.0)

    def test_f_score_requires_two_classes(self, rng):
        X = rng.normal(size=(20, 2))
        with pytest.raises(ValueError):
            f_score(X, np.zeros(20))


class TestSelectKBest:
    def test_selects_top_k(self, labeled):
        X, y = labeled
        selector = SelectKBest(k=2).fit(X, y)
        assert set(selector.selected_indices_) == {1, 3}
        assert selector.transform(X).shape == (len(X), 2)

    def test_k_larger_than_features_keeps_all(self, labeled):
        X, y = labeled
        selector = SelectKBest(k=99).fit(X, y)
        assert len(selector.selected_indices_) == X.shape[1]

    def test_rejects_k_zero(self, labeled):
        X, y = labeled
        with pytest.raises(ValueError):
            SelectKBest(k=0).fit(X, y)


class TestOutlierSeparationSelector:
    def test_finds_defect_signature_tests(self, rng):
        # 2 returns vs 1000 passing parts: classification is hopeless,
        # but the separating features are findable (Section 2.4's point)
        n_pass = 1000
        X = rng.normal(size=(n_pass + 2, 8))
        X[-2:, 2] += 5.0
        X[-2:, 6] -= 4.0
        y = np.array([0] * n_pass + [1, 1])
        selector = OutlierSeparationSelector(k=2).fit(X, y)
        assert set(selector.selected_indices_) == {2, 6}

    def test_selected_names_maps_to_tests(self, rng):
        X = rng.normal(size=(102, 3))
        X[-2:, 1] += 6.0
        y = np.array([0] * 100 + [1, 1])
        selector = OutlierSeparationSelector(k=1).fit(X, y)
        names = selector.selected_names(["T00", "T01", "T02"])
        assert names == ["T01"]

    def test_requires_positives(self, rng):
        X = rng.normal(size=(50, 3))
        with pytest.raises(ValueError):
            OutlierSeparationSelector().fit(X, np.zeros(50))

    def test_robust_to_scale(self, rng):
        # blowing up an uninformative feature's scale must not matter
        X = rng.normal(size=(202, 4))
        X[-2:, 3] += 5.0
        X[:, 0] *= 1e6
        y = np.array([0] * 200 + [1, 1])
        selector = OutlierSeparationSelector(k=1).fit(X, y)
        assert selector.selected_indices_[0] == 3


class TestRebalancing:
    def test_imbalance_ratio(self):
        assert imbalance_ratio([0] * 90 + [1] * 10) == pytest.approx(9.0)

    def test_undersample_balances(self, rng):
        X = rng.normal(size=(110, 2))
        y = np.array([0] * 100 + [1] * 10)
        X_out, y_out = random_undersample(X, y, random_state=0)
        assert imbalance_ratio(y_out) == pytest.approx(1.0)
        assert len(X_out) == 20

    def test_oversample_balances_without_dropping(self, rng):
        X = rng.normal(size=(110, 2))
        y = np.array([0] * 100 + [1] * 10)
        X_out, y_out = random_oversample(X, y, random_state=0)
        assert np.sum(y_out == 0) == 100
        assert np.sum(y_out == 1) == 100

    def test_oversample_duplicates_are_real_samples(self, rng):
        X = rng.normal(size=(55, 2))
        y = np.array([0] * 50 + [1] * 5)
        X_out, y_out = random_oversample(X, y, random_state=0)
        minority_rows = {tuple(row) for row in X[y == 1]}
        for row in X_out[y_out == 1]:
            assert tuple(row) in minority_rows

    def test_smote_synthesizes_new_points(self, rng):
        X = rng.normal(size=(55, 2))
        y = np.array([0] * 50 + [1] * 5)
        X_out, y_out = smote(X, y, random_state=0)
        original = {tuple(row) for row in X[y == 1]}
        synthetic = [
            row for row in X_out[y_out == 1] if tuple(row) not in original
        ]
        assert len(synthetic) == 45

    def test_smote_points_on_minority_segments(self, rng):
        # with 2 minority points all synthetics lie on the segment
        X = np.vstack([rng.normal(size=(20, 2)), [[0.0, 0.0]], [[1.0, 1.0]]])
        y = np.array([0] * 20 + [1, 1])
        X_out, y_out = smote(X, y, n_synthetic=10, random_state=0)
        synthetic = X_out[y_out == 1][-10:]
        for point in synthetic:
            assert point[0] == pytest.approx(point[1], abs=1e-9)
            assert -1e-9 <= point[0] <= 1.0 + 1e-9

    def test_smote_needs_two_minority_samples(self, rng):
        X = rng.normal(size=(21, 2))
        y = np.array([0] * 20 + [1])
        with pytest.raises(ValueError):
            smote(X, y)

    def test_rejects_multiclass(self, rng):
        X = rng.normal(size=(30, 2))
        y = np.repeat([0, 1, 2], 10)
        with pytest.raises(ValueError):
            random_undersample(X, y)
