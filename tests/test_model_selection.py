"""Tests for the parallel, instrumented model-selection runtime
(GridSearchCV, cross_validate, and the delegating shims)."""

import numpy as np
import pytest

from repro.core import (
    EventLog,
    GridSearchCV,
    KFold,
    NotFittedError,
    ParameterGrid,
    Pipeline,
    StandardScaler,
    StratifiedKFold,
    complexity_curve,
    cross_val_score,
    cross_validate,
    grid_search,
    learning_curve,
)
from repro.kernels import RBFKernel
from repro.learn import SVC, KNeighborsClassifier, LogisticRegression
from repro.learn import RidgeRegressor


def svc_pipeline():
    return Pipeline(
        [
            ("scale", StandardScaler()),
            ("svc", SVC(kernel=RBFKernel(1.0), random_state=0)),
        ]
    )


PIPELINE_GRID = {
    "svc__C": [0.5, 2.0],
    "svc__kernel__gamma": [0.1, 1.0],
}


class TestParameterGrid:
    def test_cartesian_product_order(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y"]})
        assert list(grid) == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(grid) == 4

    def test_list_of_grids_concatenated(self):
        grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
        assert list(grid) == [{"a": 1}, {"b": 2}, {"b": 3}]
        assert len(grid) == 3

    def test_scalar_values_rejected(self):
        with pytest.raises(ValueError, match="sequence"):
            ParameterGrid({"a": 3})


class TestCrossValidate:
    def test_matches_cross_val_score_shim(self, blobs):
        X, y = blobs
        cv = KFold(4, shuffle=True, random_state=0)
        model = KNeighborsClassifier(n_neighbors=3)
        out = cross_validate(model, X, y, cv=cv)
        np.testing.assert_array_equal(
            out["test_score"], cross_val_score(model, X, y, cv=cv)
        )
        assert out["fit_seconds"].shape == (4,)
        assert np.all(out["fit_seconds"] >= 0)

    def test_return_train_score(self, blobs):
        X, y = blobs
        out = cross_validate(
            KNeighborsClassifier(n_neighbors=1), X, y,
            cv=KFold(3), return_train_score=True,
        )
        # 1-NN memorizes its training set
        assert np.all(out["train_score"] == 1.0)

    def test_stratified_cv_supported(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(60, 2))
        X[:12] += 4.0
        y = np.array([1] * 12 + [0] * 48)
        out = cross_validate(
            LogisticRegression(max_iter=200), X, y,
            cv=StratifiedKFold(3),
        )
        assert out["test_score"].shape == (3,)

    def test_event_log_gets_fold_spans(self, blobs):
        X, y = blobs
        log = EventLog()
        cross_validate(
            KNeighborsClassifier(n_neighbors=3), X, y,
            cv=KFold(4), event_log=log,
        )
        fits = log.spans("fit")
        assert [s.meta["fold"] for s in fits] == [0, 1, 2, 3]
        assert all(s.gram is not None for s in fits)
        assert len(log.spans("score")) == 4

    def test_backends_agree(self, blobs):
        X, y = blobs
        cv = KFold(4, shuffle=True, random_state=1)
        model = KNeighborsClassifier(n_neighbors=3)
        serial = cross_validate(model, X, y, cv=cv)["test_score"]
        for backend in ("thread", "process"):
            scores = cross_validate(
                model, X, y, cv=cv, backend=backend, n_workers=2
            )["test_score"]
            np.testing.assert_array_equal(scores, serial)


class TestGridSearchCV:
    def test_nested_pipeline_and_kernel_params_searched(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            svc_pipeline(), PIPELINE_GRID, cv=KFold(3)
        ).fit(X, y)
        assert set(search.best_params_) == {
            "svc__C", "svc__kernel__gamma",
        }
        assert search.best_score_ > 0.9
        # the refit winner carries the chosen nested configuration
        svc = search.best_estimator_.named_steps.svc
        assert svc.C == search.best_params_["svc__C"]
        assert svc.kernel.gamma == search.best_params_["svc__kernel__gamma"]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_bitwise_identical(self, blobs, backend):
        X, y = blobs
        serial = GridSearchCV(
            svc_pipeline(), PIPELINE_GRID, cv=KFold(3), backend="serial"
        ).fit(X, y)
        other = GridSearchCV(
            svc_pipeline(), PIPELINE_GRID, cv=KFold(3), backend=backend,
            n_workers=2,
        ).fit(X, y)
        assert other.best_params_ == serial.best_params_
        assert other.best_score_ == serial.best_score_
        np.testing.assert_array_equal(
            other.cv_results_["fold_test_scores"],
            serial.cv_results_["fold_test_scores"],
        )

    def test_cv_results_structure(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            KNeighborsClassifier(),
            {"n_neighbors": [1, 3, 5]},
            cv=KFold(4),
        ).fit(X, y)
        results = search.cv_results_
        assert len(results["params"]) == 3
        assert results["fold_test_scores"].shape == (3, 4)
        assert results["rank_test_score"][search.best_index_] == 1
        assert results["mean_fit_seconds"].shape == (3,)
        assert search.n_splits_ == 4

    def test_rank_ties_break_on_first_candidate(self, blobs):
        X, y = blobs
        # both candidates score identically on separable blobs
        search = GridSearchCV(
            KNeighborsClassifier(),
            {"n_neighbors": [3, 5]},
            cv=KFold(3),
        ).fit(X, y)
        if (
            search.cv_results_["mean_test_score"][0]
            == search.cv_results_["mean_test_score"][1]
        ):
            assert search.best_index_ == 0

    def test_search_is_an_estimator_after_refit(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            svc_pipeline(), {"svc__C": [1.0]}, cv=KFold(3)
        ).fit(X, y)
        assert search.predict(X).shape == (len(X),)
        assert search.decision_function(X).shape == (len(X),)
        assert search.score(X, y) > 0.9

    def test_unfitted_or_unrefit_search_raises(self, blobs):
        X, y = blobs
        with pytest.raises(NotFittedError):
            GridSearchCV(svc_pipeline(), {"svc__C": [1.0]}).predict(X)
        search = GridSearchCV(
            svc_pipeline(), {"svc__C": [1.0]}, cv=KFold(3), refit=False
        ).fit(X, y)
        assert not hasattr(search, "best_estimator_")
        with pytest.raises(NotFittedError):
            search.predict(X)

    def test_custom_scorer(self, linear_regression_data):
        X, y = linear_regression_data
        search = GridSearchCV(
            RidgeRegressor(),
            {"alpha": [1e-6, 10.0]},
            cv=KFold(3),
            scorer=lambda t, p: -float(np.mean((t - p) ** 2)),
        ).fit(X, y)
        assert search.best_params_ == {"alpha": 1e-6}

    def test_empty_grid_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="no candidates"):
            GridSearchCV(
                KNeighborsClassifier(), {"n_neighbors": []}
            ).fit(X, y)

    def test_event_log_traces_candidates(self, blobs):
        X, y = blobs
        log = EventLog()
        GridSearchCV(
            svc_pipeline(), PIPELINE_GRID, cv=KFold(3), event_log=log
        ).fit(X, y)
        fits = [s for s in log.spans("fit") if "candidate" in s.meta]
        assert len(fits) == 4 * 3  # candidates x folds
        assert all("params" in s.meta for s in fits)
        (search_span,) = log.spans("search")
        assert search_span.meta["n_candidates"] == 4
        assert search_span.gram is not None
        assert len(log.spans("refit")) == 1

    def test_grid_search_shim_matches_class(self, blobs):
        X, y = blobs
        cv = KFold(4, shuffle=True, random_state=0)
        best_params, best_score, results = grid_search(
            KNeighborsClassifier(),
            {"n_neighbors": [1, 3, 5], "weights": ["uniform", "distance"]},
            X,
            y,
            cv=cv,
        )
        assert best_score > 0.9
        assert len(results) == 6
        search = GridSearchCV(
            KNeighborsClassifier(),
            {"n_neighbors": [1, 3, 5], "weights": ["uniform", "distance"]},
            cv=cv,
            refit=False,
        ).fit(X, y)
        assert best_params == search.best_params_
        assert best_score == search.best_score_

    def test_search_object_cloneable(self):
        from repro.core import clone

        search = GridSearchCV(
            svc_pipeline(), PIPELINE_GRID, cv=KFold(3), backend="thread"
        )
        copy = clone(search)
        assert copy.param_grid == search.param_grid
        assert copy.backend == "thread"
        assert copy.estimator is not search.estimator


class TestCurveBackends:
    def test_complexity_curve_backend_equivalence(self, blobs):
        X, y = blobs
        serial = complexity_curve(
            lambda: KNeighborsClassifier(), "n_neighbors", [1, 3, 5],
            X, y, X, y,
        )
        threaded = complexity_curve(
            lambda: KNeighborsClassifier(), "n_neighbors", [1, 3, 5],
            X, y, X, y, backend="thread", n_workers=2,
        )
        assert threaded.rows() == serial.rows()

    def test_learning_curve_backend_equivalence(self, blobs):
        X, y = blobs
        kwargs = dict(
            sizes=[20, 40, 60], X_val=X, y_val=y, random_state=0
        )
        serial = learning_curve(
            KNeighborsClassifier(n_neighbors=3), X, y, **kwargs
        )
        threaded = learning_curve(
            KNeighborsClassifier(n_neighbors=3), X, y,
            backend="thread", n_workers=2, **kwargs,
        )
        assert threaded.rows() == serial.rows()
