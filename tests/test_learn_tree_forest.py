"""Tests for CART trees and random forests ([7], [8])."""

import numpy as np
import pytest

from repro.learn import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    entropy_impurity,
    gini_impurity,
    mse_impurity,
)


class TestImpurities:
    def test_gini_pure_is_zero(self):
        assert gini_impurity(np.array([1, 1, 1])) == 0.0

    def test_gini_balanced_binary_is_half(self):
        assert gini_impurity(np.array([0, 1, 0, 1])) == pytest.approx(0.5)

    def test_entropy_pure_is_zero(self):
        assert entropy_impurity(np.array([2, 2])) == pytest.approx(0.0)

    def test_entropy_balanced_is_log2(self):
        assert entropy_impurity(np.array([0, 1])) == pytest.approx(np.log(2))

    def test_mse_is_variance(self):
        y = np.array([1.0, 3.0])
        assert mse_impurity(y) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert gini_impurity(np.array([])) == 0.0
        assert mse_impurity(np.array([])) == 0.0


class TestDecisionTreeClassifier:
    def test_learns_axis_aligned_concept(self, rng):
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0.2) & (X[:, 1] < -0.1)).astype(int)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_depth_limit_respected(self, rng):
        X = rng.uniform(size=(200, 3))
        y = rng.integers(0, 2, size=200)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(size=(100, 2))
        y = rng.integers(0, 2, size=100)
        model = DecisionTreeClassifier(
            max_depth=10, min_samples_leaf=10
        ).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 10
            else:
                check(node.left)
                check(node.right)

        check(model.root_)

    def test_feature_importances_identify_signal(self, rng):
        X = rng.uniform(size=(400, 5))
        y = (X[:, 2] > 0.5).astype(int)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.argmax(model.feature_importances_) == 2
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_predict_proba_at_leaves(self, rng):
        X = rng.uniform(size=(200, 2))
        y = (X[:, 0] > 0.5).astype(int)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_entropy_criterion_works(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert model.score(X, y) > 0.95

    def test_unknown_criterion_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="chaos").fit(X, y)

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 0])
        model = DecisionTreeClassifier().fit(X, y)
        assert model.root_.is_leaf


class TestDecisionTreeRegressor:
    def test_fits_step_function(self, rng):
        X = rng.uniform(-1, 1, size=(300, 1))
        y = np.where(X[:, 0] > 0.0, 5.0, -5.0)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert model.score(X, y) > 0.99

    def test_deeper_tree_fits_train_better(self, sine_regression):
        X, y = sine_regression
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert deep.score(X, y) >= shallow.score(X, y)

    def test_leaf_prediction_is_mean(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([1.0, 3.0, 10.0, 12.0])
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        # optimal single split is at the group boundary; the left leaf
        # predicts mean(1, 3)
        assert model.predict([[0.05]])[0] == pytest.approx(2.0)
        assert model.predict([[5.05]])[0] == pytest.approx(11.0)


class TestRandomForest:
    def test_classifier_beats_single_tree_on_noise(self, rng):
        X = rng.uniform(-1, 1, size=(300, 6))
        y = ((X[:, 0] + 0.5 * X[:, 1] + 0.25 * X[:, 2]) > 0).astype(int)
        flip = rng.uniform(size=300) < 0.15
        y_train = np.where(flip, 1 - y, y)
        X_val = rng.uniform(-1, 1, size=(500, 6))
        y_val = ((X_val[:, 0] + 0.5 * X_val[:, 1] + 0.25 * X_val[:, 2]) > 0
                 ).astype(int)
        tree = DecisionTreeClassifier(max_depth=12, random_state=0)
        forest = RandomForestClassifier(
            n_estimators=30, max_depth=12, random_state=0
        )
        tree.fit(X, y_train)
        forest.fit(X, y_train)
        assert forest.score(X_val, y_val) >= tree.score(X_val, y_val)

    def test_probability_aggregation(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0
        ).fit(X, y)
        proba = forest.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_regressor_smooths(self, sine_regression):
        X, y = sine_regression
        forest = RandomForestRegressor(
            n_estimators=20, max_depth=6, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.85

    def test_reproducible_with_seed(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_importances_normalized(self, rng):
        X = rng.uniform(size=(200, 4))
        y = (X[:, 1] > 0.5).astype(int)
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0
        ).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(forest.feature_importances_) == 1

    def test_rejects_zero_estimators(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(X, y)
