"""Chaos tests for the shard protocol (repro.core.shard).

Injected failures at the *protocol* level — a worker process SIGKILLed
mid-shard, a lease left behind by a dead owner, many stealers racing
for one stale lease — must never change merged results: takeover is
single-winner, commits are exactly-once, and the surviving fleet (or
the driver drain) completes the run bitwise-identically.
"""

import os
import signal
import time

import pytest

from repro.core import ShardedBackend
from repro.core.resilience import LeaseFile
from repro.core.shard import (
    ShardRun,
    create_run,
    run_worker,
    spawn_local_workers,
)
from repro.testing.chaos import (
    ChaosError,
    ShardKillTask,
    attempt_count,
    contend_steal,
    expire_lease,
    fingerprint,
)

pytestmark = pytest.mark.chaos


# module-level so shard workers can pickle it
def slow_ident(payload):
    time.sleep(0.05)
    return payload


# ---------------------------------------------------------------------
# kill-worker-mid-shard (the ShardKillTask injector, end to end)
# ---------------------------------------------------------------------

class TestKillWorkerMidShard:
    def test_injected_kill_is_survived_and_exactly_once(self, tmp_path):
        """A worker dies (os._exit) mid-shard; a survivor steals the
        stale lease, re-runs only the uncommitted suffix, and the merge
        matches an undisturbed run exactly."""
        state_dir = str(tmp_path / "state")
        root = str(tmp_path / "root")
        payloads = list(range(10))
        task = ShardKillTask(
            kill_times=1, state_dir=state_dir, kill_on=7, seconds=0.02,
        )
        backend = ShardedBackend(
            n_workers=2, root=root, lease_ttl=1.0,
            heartbeat_interval=0.1, poll=0.02,
        )
        results = backend.map(task, payloads)
        assert results == payloads

        # the victim payload ran exactly twice: the killed attempt plus
        # the takeover's successful one
        key = fingerprint("shard-kill-task", 7)
        assert attempt_count(state_dir, key) == 2

        run_dirs = [
            entry.path for entry in os.scandir(root) if entry.is_dir()
        ]
        assert len(run_dirs) == 1
        stats = ShardRun(run_dirs[0]).worker_stats()
        assert stats["shards_done"] == len(ShardRun(run_dirs[0]).shard_ids())
        assert stats["steals"] >= 1  # the takeover actually happened
        assert stats["duplicate_commits"] == 0  # exactly-once held

    def test_kill_downgrades_to_error_in_driver(self, tmp_path):
        """Outside a shard worker the injector must not take the driver
        down — it raises ChaosError instead of exiting."""
        task = ShardKillTask(
            kill_times=1, state_dir=str(tmp_path / "state"), kill_on=0,
        )
        with pytest.raises(ChaosError):
            task(0)
        assert task(0) == 0  # attempt 2 succeeds


# ---------------------------------------------------------------------
# real SIGKILL of a worker process
# ---------------------------------------------------------------------

class TestRealWorkerSigkill:
    def test_sigkilled_worker_is_inherited(self, tmp_path):
        """SIGKILL the only worker mid-shard; its lease goes stale and
        a late-joining worker inherits and completes the run."""
        root = str(tmp_path / "root")
        payloads = list(range(12))
        run = create_run(
            root, slow_ident, payloads, n_shards=4, lease_ttl=0.5,
            heartbeat_interval=0.1,
        )
        workers = spawn_local_workers(run.run_dir, 1)
        try:
            # let it claim and commit something, then kill it dead
            deadline = time.monotonic() + 30.0
            store = run.results_store()
            while len(store) < 1:
                assert time.monotonic() < deadline, "worker never committed"
                time.sleep(0.01)
            os.kill(workers[0].pid, signal.SIGKILL)
            workers[0].join(timeout=10)
            assert workers[0].exitcode == -signal.SIGKILL
        finally:
            for process in workers:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)

        assert not run.all_done()
        stats = run_worker(
            run.run_dir, worker_id="inheritor", wait=True,
            lease_ttl=0.5, heartbeat_interval=0.1,
        )
        assert run.all_done()
        merged = run.merge()
        assert merged.results == payloads
        # the inheritor either stole the victim's shard lease or simply
        # claimed never-started shards; committed + resumed covers all
        assert stats["committed"] + stats["resumed"] >= 1
        assert merged.stats["duplicate_commits"] == 0


# ---------------------------------------------------------------------
# stale-lease takeover
# ---------------------------------------------------------------------

class TestStaleLeaseTakeover:
    def test_worker_steals_dead_owners_lease(self, tmp_path):
        """A lease held by a dead (never-heartbeating) owner is stolen
        once expired, and the shard still completes exactly-once."""
        root = str(tmp_path / "root")
        run = create_run(root, slow_ident, list(range(6)), n_shards=3)
        ghost_shard = run.shard_ids()[0]
        ghost = LeaseFile(
            run.lease_path(ghost_shard), owner="ghost", ttl=30.0
        )
        assert ghost.acquire()
        expired_owner = expire_lease(run.lease_path(ghost_shard))
        assert expired_owner == "ghost"

        stats = run_worker(
            run.run_dir, worker_id="survivor", wait=True, lease_ttl=30.0,
        )
        assert run.all_done()
        assert stats["steals"] == 1
        assert stats["claims"] == len(run.shard_ids()) - 1
        assert run.merge().results == list(range(6))
        # the ghost must notice it lost the lease
        assert not ghost.renew()

    def test_expire_lease_on_missing_path(self, tmp_path):
        assert expire_lease(str(tmp_path / "nothing.lease")) is None


# ---------------------------------------------------------------------
# duplicate-claim race
# ---------------------------------------------------------------------

class TestDuplicateClaimRace:
    def test_exactly_one_stealer_wins(self, tmp_path):
        path = str(tmp_path / "contested.lease")
        dead = LeaseFile(path, owner="dead-owner", ttl=30.0)
        assert dead.acquire()
        expire_lease(path)
        winners = contend_steal(
            path, [f"stealer-{i}" for i in range(8)], ttl=30.0
        )
        assert len(winners) == 1
        # and the winner genuinely holds it now
        holder = LeaseFile(path, owner=winners[0], ttl=30.0)
        assert holder.held()

    def test_race_repeats_deterministically_single_winner(self, tmp_path):
        """Ten consecutive races: never zero winners, never two."""
        for round_index in range(10):
            path = str(tmp_path / f"lease-{round_index}")
            assert LeaseFile(path, owner="dead", ttl=30.0).acquire()
            expire_lease(path)
            winners = contend_steal(
                path, [f"w{round_index}-{i}" for i in range(4)], ttl=30.0
            )
            assert len(winners) == 1

    def test_duplicate_execution_commits_identically(self, tmp_path):
        """The unavoidable revived-owner window: two workers execute
        the same shard concurrently.  Idempotent commits mean the
        result set is still correct and duplicates are counted, not
        divergent."""
        root = str(tmp_path / "root")
        run = create_run(root, slow_ident, list(range(4)), n_shards=1)
        first = run_worker(run.run_dir, worker_id="a", wait=True)
        # force a second full pass over the same (done) run with the
        # done marker removed: every task is already committed
        os.unlink(run.done_path(run.shard_ids()[0]))
        second = run_worker(run.run_dir, worker_id="b", wait=True)
        assert first["committed"] == 4
        assert second["committed"] == 0
        assert second["resumed"] == 4
        assert run.merge().results == list(range(4))


# ---------------------------------------------------------------------
# graceful shutdown (SIGTERM/SIGINT drain)
# ---------------------------------------------------------------------

class TestGracefulShutdown:
    def test_stop_event_finishes_task_and_releases_lease(self, tmp_path):
        """A stop request mid-shard: the in-flight task commits, the
        worker returns ``stopped=True``, and its lease is released
        immediately — a successor claims (not steals) the remainder."""
        import threading

        root = str(tmp_path / "root")
        payloads = list(range(8))
        run = create_run(
            root, slow_ident, payloads, n_shards=2, lease_ttl=60.0,
        )
        stop = threading.Event()
        result = {}

        def drain():
            result["stats"] = run_worker(
                run.run_dir, worker_id="draining", wait=True,
                lease_ttl=60.0, stop_event=stop,
            )

        worker = threading.Thread(target=drain)
        worker.start()
        store = run.results_store()
        deadline = time.monotonic() + 30.0
        while len(store) < 1:
            assert time.monotonic() < deadline, "worker never committed"
            time.sleep(0.005)
        stop.set()
        worker.join(timeout=30)
        assert not worker.is_alive()

        stats = result["stats"]
        assert stats["stopped"] is True
        assert not run.all_done()
        # the lease must be *released*, not abandoned: with a 60s TTL a
        # successor could only proceed by fresh claims, never steals
        successor = run_worker(
            run.run_dir, worker_id="successor", wait=True, lease_ttl=60.0,
        )
        assert successor["steals"] == 0
        assert run.all_done()
        assert run.merge().results == payloads
        assert run.merge().stats["duplicate_commits"] == 0

    def test_sigterm_drains_spawned_worker(self, tmp_path):
        """SIGTERM a real worker process: it exits 0 (graceful return,
        not a signal death), its lease comes back released, and the run
        completes without any steals under a long TTL."""
        root = str(tmp_path / "root")
        payloads = list(range(12))
        run = create_run(
            root, slow_ident, payloads, n_shards=4, lease_ttl=60.0,
        )
        workers = spawn_local_workers(run.run_dir, 1)
        try:
            store = run.results_store()
            deadline = time.monotonic() + 30.0
            while len(store) < 1:
                assert time.monotonic() < deadline, "worker never committed"
                time.sleep(0.01)
            os.kill(workers[0].pid, signal.SIGTERM)
            workers[0].join(timeout=30)
            # graceful drain returns normally — unlike the SIGKILL test
            # above, where exitcode is -9
            assert workers[0].exitcode == 0
        finally:
            for process in workers:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5)

        assert not run.all_done()
        successor = run_worker(
            run.run_dir, worker_id="successor", wait=True, lease_ttl=60.0,
        )
        assert successor["steals"] == 0
        assert run.all_done()
        assert run.merge().results == payloads
        assert run.merge().stats["duplicate_commits"] == 0

    def test_stop_before_any_claim_is_clean(self, tmp_path):
        """A worker told to stop before it claims anything exits with
        ``stopped=True`` and zero claims."""
        import threading

        root = str(tmp_path / "root")
        run = create_run(root, slow_ident, list(range(4)), n_shards=2)
        stop = threading.Event()
        stop.set()
        stats = run_worker(
            run.run_dir, worker_id="never-started", wait=True,
            stop_event=stop,
        )
        assert stats["stopped"] is True
        assert stats["claims"] == 0
        assert not run.all_done()


# ---------------------------------------------------------------------
# heartbeat plausibility window (regression: NaN / future-dated
# heartbeats made a dead owner's lease permanently unstealable)
# ---------------------------------------------------------------------

def _rewrite_heartbeat(lease_path: str, heartbeat) -> None:
    """Atomically rewrite the lease record's heartbeat_at in place."""
    import json
    import tempfile

    with open(lease_path, "r") as fh:
        record = json.load(fh)
    record["heartbeat_at"] = heartbeat
    fd, tmp = tempfile.mkstemp(
        prefix=".clock.", dir=os.path.dirname(lease_path) or "."
    )
    with os.fdopen(fd, "w") as fh:
        json.dump(record, fh)
    os.replace(tmp, lease_path)


class TestHeartbeatPlausibilityWindow:
    def _dead_owner_lease(self, tmp_path) -> LeaseFile:
        lease = LeaseFile(str(tmp_path / "unit.lease"), owner="dead",
                          ttl=5.0)
        assert lease.acquire()
        return lease

    def test_nan_heartbeat_is_stale_and_stealable(self, tmp_path):
        """A corrupt NaN heartbeat must not wedge the lease: ``now -
        NaN > ttl`` is always False, so before the plausibility window
        a dead worker's lease could never be stolen."""
        dead = self._dead_owner_lease(tmp_path)
        _rewrite_heartbeat(dead.path, float("nan"))
        stealer = LeaseFile(dead.path, owner="stealer", ttl=5.0)
        assert stealer.is_stale()
        assert stealer.steal()
        assert stealer.read()["owner"] == "stealer"

    def test_far_future_heartbeat_is_stale_and_stealable(self, tmp_path):
        """A heartbeat more than one TTL in the future (stepped clock,
        cross-host skew) is not evidence of a live owner; it must be
        stealable rather than unstealable-for-hours."""
        dead = self._dead_owner_lease(tmp_path)
        _rewrite_heartbeat(dead.path, time.time() + 3600.0)
        stealer = LeaseFile(dead.path, owner="stealer", ttl=5.0)
        assert stealer.is_stale()
        assert stealer.steal()
        assert stealer.read()["owner"] == "stealer"

    def test_slight_future_heartbeat_within_ttl_is_fresh(self, tmp_path):
        """Sub-TTL clock skew is normal fleet behavior: a slightly
        future heartbeat is a live owner and must NOT be stolen."""
        live = self._dead_owner_lease(tmp_path)
        _rewrite_heartbeat(live.path, time.time() + 0.5 * live.ttl)
        stealer = LeaseFile(live.path, owner="stealer", ttl=5.0)
        assert not stealer.is_stale()
        assert not stealer.steal()
        assert stealer.read()["owner"] == "dead"

    def test_non_numeric_heartbeat_is_stale(self, tmp_path):
        """A record whose heartbeat is not a number at all counts as
        corrupt, hence stale."""
        dead = self._dead_owner_lease(tmp_path)
        _rewrite_heartbeat(dead.path, "not-a-timestamp")
        stealer = LeaseFile(dead.path, owner="stealer", ttl=5.0)
        assert stealer.is_stale()
        assert stealer.steal()
