"""Tests for the verification substrate: ISA, programs, randomizer."""

import numpy as np
import pytest

from repro.verification import (
    CACHE_LINE_BYTES,
    DEFAULT_KNOB_RANGES,
    KNOB_NAMES,
    Instruction,
    OPCODES,
    Program,
    Randomizer,
    TestTemplate,
    access_alignment,
    is_memory_opcode,
    knob_feature_matrix,
    region_of,
)


class TestISA:
    def test_opcode_table_categories(self):
        assert OPCODES["LW"].category == "load"
        assert OPCODES["SW"].category == "store"
        assert OPCODES["LL"].is_locked
        assert OPCODES["SYNC"].category == "barrier"

    def test_memory_opcode_predicate(self):
        assert is_memory_opcode("LB")
        assert is_memory_opcode("SC")
        assert not is_memory_opcode("ADD")

    def test_alignment_classification(self):
        assert access_alignment(0x100, 4) == "aligned"
        assert access_alignment(0x101, 4) == "misaligned"
        # access starting 2 bytes before a line boundary, 4 bytes wide
        boundary = 3 * CACHE_LINE_BYTES
        assert access_alignment(boundary - 2, 4) == "line_crossing"

    def test_byte_access_always_aligned(self):
        assert access_alignment(0x123, 1) == "aligned"

    def test_region_lookup(self):
        assert region_of(0x0000_1000) == "dram"
        assert region_of(0x4000_0010) == "stack"
        assert region_of(0x8000_0004) == "mmio"
        assert region_of(0xC000_0000) == "scratchpad"


class TestInstructionAndProgram:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction("FNORD")

    def test_token_encodes_behaviour(self):
        load = Instruction("LW", address=0x8000_0001)
        assert load.token() == "LW.mis.mmi"
        alu = Instruction("ADD")
        assert alu.token() == "ADD"

    def test_measured_features_fracs_in_unit_interval(self):
        rand = Randomizer(random_state=0)
        program = rand.generate(TestTemplate())
        features = program.measured_features()
        for name, value in features.items():
            if name != "length":
                assert 0.0 <= value <= 1.0, name

    def test_knob_features_order(self):
        program = Program(
            instructions=[Instruction("NOP")],
            knobs={name: 0.5 for name in KNOB_NAMES},
        )
        np.testing.assert_allclose(program.knob_features(), 0.5)

    def test_listing_is_assembly_like(self):
        program = Program([Instruction("LW", rd=3, address=0x10)])
        assert "LW r3" in program.listing()

    def test_opcode_histogram(self):
        program = Program(
            [Instruction("ADD"), Instruction("ADD"), Instruction("NOP")]
        )
        assert program.opcode_histogram() == {"ADD": 2, "NOP": 1}

    def test_listing_roundtrip(self):
        rand = Randomizer(random_state=4)
        original = rand.generate(TestTemplate(), name="t")
        parsed = Program.from_listing(original.listing(), name="t")
        assert parsed.tokens() == original.tokens()
        assert len(parsed) == len(original)

    def test_from_listing_ignores_comments_and_blanks(self):
        text = """
        # a test fragment
        LW r3, 0x100

        ADD r1, r2, r3   # comment
        SYNC
        """
        program = Program.from_listing(text)
        assert [i.opcode for i in program] == ["LW", "ADD", "SYNC"]
        assert program.instructions[0].address == 0x100

    def test_from_listing_rejects_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Program.from_listing("FROB r1, r2, r3")

    def test_from_listing_rejects_bad_operands(self):
        with pytest.raises(ValueError):
            Program.from_listing("LW 0x100")  # missing register
        with pytest.raises(ValueError):
            Program.from_listing("LW r1")  # missing address


class TestTemplateAndRandomizer:
    def test_template_requires_all_knobs(self):
        with pytest.raises(ValueError):
            TestTemplate(knob_ranges={"load_fraction": (0.1, 0.2)})

    def test_sample_knobs_within_ranges(self, rng):
        template = TestTemplate()
        knobs = template.sample_knobs(rng)
        for name, value in knobs.items():
            low, high = DEFAULT_KNOB_RANGES[name]
            assert low <= value <= high

    def test_constrained_intersects(self):
        template = TestTemplate()
        refined = template.constrained({"misaligned_fraction": (0.02, 0.9)})
        low, high = refined.knob_ranges["misaligned_fraction"]
        assert low == pytest.approx(0.02)
        assert high == pytest.approx(0.06)  # original cap kept

    def test_biased_extends_beyond_original(self):
        template = TestTemplate()
        biased = template.biased(
            {"misaligned_fraction": (0.04, float("inf"))}
        )
        low, high = biased.knob_ranges["misaligned_fraction"]
        assert low == pytest.approx(0.04)
        assert high > 0.06  # pushed past the original template cap

    def test_biased_rejects_unknown_knob(self):
        with pytest.raises(KeyError):
            TestTemplate().biased({"frobnication": (0.0, 1.0)})

    def test_generated_program_statistics_follow_knobs(self):
        rand = Randomizer(random_state=7)
        template = TestTemplate().biased(
            {"misaligned_fraction": (0.4, float("inf")),
             "load_fraction": (0.4, float("inf"))}
        )
        programs = [rand.generate(template) for _ in range(30)]
        measured = np.mean(
            [p.measured_features()["misaligned_fraction"] for p in programs]
        )
        baseline_programs = [
            rand.generate(TestTemplate()) for _ in range(30)
        ]
        baseline = np.mean(
            [p.measured_features()["misaligned_fraction"]
             for p in baseline_programs]
        )
        assert measured > baseline * 2

    def test_stream_names_and_count(self):
        rand = Randomizer(random_state=1)
        programs = list(rand.stream(TestTemplate(), 5, prefix="x"))
        assert len(programs) == 5
        assert programs[3].name == "x3"

    def test_stream_rejects_negative(self):
        rand = Randomizer()
        with pytest.raises(ValueError):
            list(rand.stream(TestTemplate(), -1))

    def test_generation_is_seeded(self):
        a = [p.tokens() for p in Randomizer(9).stream(TestTemplate(), 3)]
        b = [p.tokens() for p in Randomizer(9).stream(TestTemplate(), 3)]
        assert a == b

    def test_sc_targets_ll_address(self):
        rand = Randomizer(random_state=3)
        template = TestTemplate().biased(
            {"atomic_fraction": (0.15, float("inf"))}
        )
        for program in rand.stream(template, 20):
            pending = None
            for instruction in program:
                if instruction.opcode == "LL":
                    pending = instruction.address
                elif instruction.opcode == "SC":
                    assert instruction.address == pending
                    pending = None

    def test_knob_feature_matrix_shape(self):
        rand = Randomizer(random_state=2)
        programs = list(rand.stream(TestTemplate(), 4))
        matrix = knob_feature_matrix(programs)
        assert matrix.shape == (4, len(KNOB_NAMES))
