"""Tests for naive Bayes (Section 2.1 idea #4) and discriminant
analysis (idea #3, the paper's Eq. 1)."""

import numpy as np
import pytest

from repro.learn import (
    BernoulliNaiveBayes,
    GaussianNaiveBayes,
    LinearDiscriminantAnalysis,
    QuadraticDiscriminantAnalysis,
)


class TestGaussianNaiveBayes:
    def test_separates_blobs(self, blobs):
        X, y = blobs
        assert GaussianNaiveBayes().fit(X, y).score(X, y) > 0.95

    def test_posteriors_sum_to_one(self, blobs):
        X, y = blobs
        proba = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_priors_reflect_class_frequencies(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 80 + [1] * 20)
        model = GaussianNaiveBayes().fit(X, y)
        np.testing.assert_allclose(model.class_prior_, [0.8, 0.2])

    def test_constant_feature_is_harmless(self, blobs):
        X, y = blobs
        X_aug = np.column_stack([X, np.ones(len(X))])
        model = GaussianNaiveBayes().fit(X_aug, y)
        assert np.all(np.isfinite(model.predict_proba(X_aug)))

    def test_requires_two_classes(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(X, np.zeros(10))

    def test_three_class_problem(self, rng):
        X = np.vstack(
            [rng.normal(c, 0.4, size=(30, 2)) for c in (-3.0, 0.0, 3.0)]
        )
        y = np.repeat([0, 1, 2], 30)
        assert GaussianNaiveBayes().fit(X, y).score(X, y) > 0.95


class TestBernoulliNaiveBayes:
    def test_learns_presence_pattern(self, rng):
        # class 1 almost always has feature 0 on; class 0 off
        n = 200
        y = rng.integers(0, 2, size=n)
        X = rng.uniform(size=(n, 4))
        X[:, 0] = np.where(
            y == 1, rng.uniform(0.8, 1.0, n), rng.uniform(0.0, 0.2, n)
        )
        model = BernoulliNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_laplace_smoothing_avoids_zero_probability(self):
        X = np.array([[1.0, 1.0], [0.0, 0.0]])
        y = np.array([1, 0])
        model = BernoulliNaiveBayes(alpha=1.0).fit(X, y)
        # an unseen combination must still get a finite posterior
        proba = model.predict_proba([[1.0, 0.0]])
        assert np.all(np.isfinite(proba))
        assert np.all(proba > 0.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            BernoulliNaiveBayes(alpha=0.0)


class TestLDA:
    def test_separates_blobs(self, blobs):
        X, y = blobs
        assert LinearDiscriminantAnalysis().fit(X, y).score(X, y) > 0.95

    def test_boundary_is_linear(self, rng):
        # along any segment, prediction changes at most once for LDA
        X = np.vstack(
            [rng.normal(-2, 1.0, size=(50, 2)), rng.normal(2, 1.0, size=(50, 2))]
        )
        y = np.repeat([0, 1], 50)
        model = LinearDiscriminantAnalysis().fit(X, y)
        ts = np.linspace(0, 1, 200)
        segment = np.outer(1 - ts, [-5.0, -5.0]) + np.outer(ts, [5.0, 5.0])
        labels = model.predict(segment)
        assert np.sum(np.diff(labels.astype(int)) != 0) <= 1

    def test_custom_priors_shift_boundary(self, blobs):
        X, y = blobs
        neutral = LinearDiscriminantAnalysis().fit(X, y)
        biased = LinearDiscriminantAnalysis(priors=[0.99, 0.01]).fit(X, y)
        point = np.array([[0.0, 0.0]])  # ambiguous midpoint
        assert biased.predict_proba(point)[0, 0] > neutral.predict_proba(
            point
        )[0, 0]


class TestQDA:
    def test_eq1_decision_function_sign(self, blobs):
        X, y = blobs
        model = QuadraticDiscriminantAnalysis().fit(X, y)
        scores = model.decision_function(X)
        predicted = model.predict(X)
        agree = (scores > 0) == (predicted == model.classes_[1])
        assert np.mean(agree) > 0.99

    def test_handles_unequal_covariances_better_than_lda(self, rng):
        # class 0: tight blob inside class 1's wide ring-ish cloud
        X0 = rng.normal(0.0, 0.3, size=(150, 2))
        X1 = rng.normal(0.0, 3.0, size=(150, 2))
        keep = np.linalg.norm(X1, axis=1) > 1.5
        X1 = X1[keep][:100]
        X = np.vstack([X0, X1])
        y = np.array([0] * len(X0) + [1] * len(X1))
        qda_score = QuadraticDiscriminantAnalysis().fit(X, y).score(X, y)
        lda_score = LinearDiscriminantAnalysis().fit(X, y).score(X, y)
        assert qda_score > lda_score

    def test_decision_function_binary_only(self, rng):
        X = rng.normal(size=(60, 2))
        y = np.repeat([0, 1, 2], 20)
        model = QuadraticDiscriminantAnalysis().fit(X + y[:, None], y)
        with pytest.raises(ValueError):
            model.decision_function(X)

    def test_rejects_singleton_class(self, rng):
        X = rng.normal(size=(11, 2))
        y = np.array([0] * 10 + [1])
        with pytest.raises(ValueError):
            QuadraticDiscriminantAnalysis().fit(X, y)
