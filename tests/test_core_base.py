"""Tests for the estimator protocol (repro.core.base)."""

import numpy as np
import pytest

from repro.core.base import (
    Estimator,
    as_1d_array,
    as_2d_array,
    check_fitted,
    check_paired,
    clone,
)
from repro.core.exceptions import DataShapeError, NotFittedError
from repro.learn import KNeighborsClassifier, RidgeRegressor


class Toy(Estimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class SpecialToy(Toy):
    pass


class Outer(Estimator):
    def __init__(self, inner=None, scale=1.0):
        self.inner = inner
        self.scale = scale


class TestParamAPI:
    def test_get_params_returns_constructor_args(self):
        toy = Toy(alpha=3.0, beta="y")
        assert toy.get_params() == {"alpha": 3.0, "beta": "y"}

    def test_set_params_roundtrip(self):
        toy = Toy()
        toy.set_params(alpha=9.0)
        assert toy.alpha == 9.0

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="no parameter"):
            Toy().set_params(gamma=1)

    def test_repr_mentions_params(self):
        assert "alpha=2" in repr(Toy(alpha=2))


class TestStructuralEquality:
    def test_clone_compares_equal(self):
        from repro.kernels import RBFKernel
        from repro.learn import SVC

        model = SVC(kernel=RBFKernel(0.7), C=2.0, random_state=0)
        assert clone(model) == model

    def test_different_params_not_equal(self):
        assert Toy(alpha=1.0) != Toy(alpha=2.0)

    def test_different_types_not_equal(self):
        from repro.learn import LogisticRegression, RidgeRegressor

        assert LogisticRegression() != RidgeRegressor()

    def test_nested_wrapper_equality(self):
        from repro.learn import LogisticRegression, OneVsRestClassifier

        a = OneVsRestClassifier(LogisticRegression(alpha=0.1))
        b = OneVsRestClassifier(LogisticRegression(alpha=0.1))
        c = OneVsRestClassifier(LogisticRegression(alpha=0.5))
        assert a == b
        assert a != c

    def test_fitted_state_ignored(self, blobs):
        from repro.learn import GaussianNaiveBayes

        X, y = blobs
        fitted = GaussianNaiveBayes().fit(X, y)
        fresh = GaussianNaiveBayes()
        assert fitted == fresh  # equality is on hyper-parameters only

    def test_usable_in_identity_keyed_dict(self):
        toy = Toy()
        registry = {toy: "x"}
        assert registry[toy] == "x"

    def test_subclass_comparison_symmetric(self):
        # regression: __eq__ used to return NotImplemented from one side
        # of a subclass comparison, making == order-dependent
        assert (Toy() == SpecialToy()) is False
        assert (SpecialToy() == Toy()) is False
        assert Toy() != SpecialToy()
        assert SpecialToy() != Toy()

    def test_comparison_with_non_estimator(self):
        assert (Toy() == 5) is False
        assert Toy() != 5
        assert Toy().__eq__(5) is NotImplemented


class TestNestedParams:
    def test_deep_params_expose_inner_with_prefix(self):
        outer = Outer(inner=Toy(alpha=3.0))
        deep = outer.get_params(deep=True)
        assert deep["inner__alpha"] == 3.0
        assert deep["inner__beta"] == "x"
        assert deep["inner"] is outer.inner

    def test_shallow_params_have_no_prefixed_keys(self):
        params = Outer(inner=Toy()).get_params(deep=False)
        assert set(params) == {"inner", "scale"}

    def test_set_nested_param_mutates_inner(self):
        outer = Outer(inner=Toy())
        outer.set_params(inner__alpha=7.0, scale=2.0)
        assert outer.inner.alpha == 7.0
        assert outer.scale == 2.0

    def test_replacement_applies_before_nested_assignment(self):
        outer = Outer(inner=Toy(alpha=1.0))
        outer.set_params(inner=Toy(alpha=2.0), inner__alpha=9.0)
        assert outer.inner.alpha == 9.0

    def test_nested_path_to_non_params_object_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            Outer(inner=Toy()).set_params(scale__x=1)

    def test_nested_unknown_leaf_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            Outer(inner=Toy()).set_params(inner__gamma=1)

    def test_clone_recurses_into_nested_estimators(self):
        outer = Outer(inner=Toy(beta=[1, 2]))
        copy = clone(outer)
        assert copy == outer
        assert copy.inner is not outer.inner
        copy.inner.beta.append(3)
        assert outer.inner.beta == [1, 2]


class TestClone:
    def test_clone_copies_params_not_state(self):
        model = RidgeRegressor(alpha=0.5)
        model.fit([[1.0], [2.0], [3.0]], [1.0, 2.0, 3.0])
        copy = clone(model)
        assert copy.alpha == 0.5
        assert not hasattr(copy, "coef_")

    def test_clone_deep_copies_mutable_params(self):
        model = Toy(beta=[1, 2])
        copy = clone(model)
        copy.beta.append(3)
        assert model.beta == [1, 2]


class TestCheckFitted:
    def test_raises_before_fit(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict([[0.0, 0.0]])

    def test_passes_after_fit(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        check_fitted(model, ["X_train_", "y_train_"])  # no raise

    def test_falsy_attributes_count_as_fitted(self):
        # regression: check_fitted used getattr(..., None) truthiness,
        # so None/0/[] fitted state misreported as "not fitted"
        toy = Toy()
        toy.offset_ = 0
        toy.labels_ = []
        toy.mask_ = None
        check_fitted(toy, ["offset_", "labels_", "mask_"])  # no raise

    def test_missing_attribute_still_raises(self):
        toy = Toy()
        toy.offset_ = 0
        with pytest.raises(NotFittedError):
            check_fitted(toy, ["offset_", "absent_"])


class TestArrayValidation:
    def test_as_2d_promotes_1d(self):
        out = as_2d_array([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_as_2d_rejects_3d(self):
        with pytest.raises(DataShapeError):
            as_2d_array(np.zeros((2, 2, 2)))

    def test_as_2d_rejects_nan(self):
        with pytest.raises(DataShapeError, match="NaN"):
            as_2d_array([[1.0, np.nan]])

    def test_as_2d_rejects_empty(self):
        with pytest.raises(DataShapeError):
            as_2d_array(np.zeros((0, 3)))

    def test_as_1d_rejects_matrix(self):
        with pytest.raises(DataShapeError):
            as_1d_array(np.zeros((2, 2)))

    def test_check_paired_mismatch(self):
        with pytest.raises(DataShapeError):
            check_paired(np.zeros((3, 1)), np.zeros(4))


class TestMixinScores:
    def test_classifier_score_is_accuracy(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.score(X, y) == pytest.approx(
            float(np.mean(model.predict(X) == y))
        )

    def test_regressor_score_is_r2(self, linear_regression_data):
        X, y = linear_regression_data
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        assert model.score(X, y) > 0.99
