"""Tests for the estimator protocol (repro.core.base)."""

import numpy as np
import pytest

from repro.core.base import (
    Estimator,
    as_1d_array,
    as_2d_array,
    check_fitted,
    check_paired,
    clone,
)
from repro.core.exceptions import DataShapeError, NotFittedError
from repro.learn import KNeighborsClassifier, RidgeRegressor


class Toy(Estimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class TestParamAPI:
    def test_get_params_returns_constructor_args(self):
        toy = Toy(alpha=3.0, beta="y")
        assert toy.get_params() == {"alpha": 3.0, "beta": "y"}

    def test_set_params_roundtrip(self):
        toy = Toy()
        toy.set_params(alpha=9.0)
        assert toy.alpha == 9.0

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="no parameter"):
            Toy().set_params(gamma=1)

    def test_repr_mentions_params(self):
        assert "alpha=2" in repr(Toy(alpha=2))


class TestStructuralEquality:
    def test_clone_compares_equal(self):
        from repro.kernels import RBFKernel
        from repro.learn import SVC

        model = SVC(kernel=RBFKernel(0.7), C=2.0, random_state=0)
        assert clone(model) == model

    def test_different_params_not_equal(self):
        assert Toy(alpha=1.0) != Toy(alpha=2.0)

    def test_different_types_not_equal(self):
        from repro.learn import LogisticRegression, RidgeRegressor

        assert LogisticRegression() != RidgeRegressor()

    def test_nested_wrapper_equality(self):
        from repro.learn import LogisticRegression, OneVsRestClassifier

        a = OneVsRestClassifier(LogisticRegression(alpha=0.1))
        b = OneVsRestClassifier(LogisticRegression(alpha=0.1))
        c = OneVsRestClassifier(LogisticRegression(alpha=0.5))
        assert a == b
        assert a != c

    def test_fitted_state_ignored(self, blobs):
        from repro.learn import GaussianNaiveBayes

        X, y = blobs
        fitted = GaussianNaiveBayes().fit(X, y)
        fresh = GaussianNaiveBayes()
        assert fitted == fresh  # equality is on hyper-parameters only

    def test_usable_in_identity_keyed_dict(self):
        toy = Toy()
        registry = {toy: "x"}
        assert registry[toy] == "x"


class TestClone:
    def test_clone_copies_params_not_state(self):
        model = RidgeRegressor(alpha=0.5)
        model.fit([[1.0], [2.0], [3.0]], [1.0, 2.0, 3.0])
        copy = clone(model)
        assert copy.alpha == 0.5
        assert not hasattr(copy, "coef_")

    def test_clone_deep_copies_mutable_params(self):
        model = Toy(beta=[1, 2])
        copy = clone(model)
        copy.beta.append(3)
        assert model.beta == [1, 2]


class TestCheckFitted:
    def test_raises_before_fit(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict([[0.0, 0.0]])

    def test_passes_after_fit(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        check_fitted(model, ["X_train_", "y_train_"])  # no raise


class TestArrayValidation:
    def test_as_2d_promotes_1d(self):
        out = as_2d_array([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_as_2d_rejects_3d(self):
        with pytest.raises(DataShapeError):
            as_2d_array(np.zeros((2, 2, 2)))

    def test_as_2d_rejects_nan(self):
        with pytest.raises(DataShapeError, match="NaN"):
            as_2d_array([[1.0, np.nan]])

    def test_as_2d_rejects_empty(self):
        with pytest.raises(DataShapeError):
            as_2d_array(np.zeros((0, 3)))

    def test_as_1d_rejects_matrix(self):
        with pytest.raises(DataShapeError):
            as_1d_array(np.zeros((2, 2)))

    def test_check_paired_mismatch(self):
        with pytest.raises(DataShapeError):
            check_paired(np.zeros((3, 1)), np.zeros(4))


class TestMixinScores:
    def test_classifier_score_is_accuracy(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.score(X, y) == pytest.approx(
            float(np.mean(model.predict(X) == y))
        )

    def test_regressor_score_is_r2(self, linear_regression_data):
        X, y = linear_regression_data
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        assert model.score(X, y) > 0.99
