"""Seed-robustness: the reproduced shapes hold across random seeds.

The headline reproductions must not be artifacts of one lucky seed.
These tests re-run scaled-down versions of each experiment across
several seeds and assert the qualitative claim every time.  (Marked
module-scope fixtures keep the cost at a few seconds per experiment.)
"""

import numpy as np
import pytest

SEEDS = (13, 101, 977)


class TestTable1AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_refinement_lift_holds(self, seed):
        from repro.verification import (
            Randomizer,
            TemplateRefinementFlow,
            TestTemplate,
        )

        flow = TemplateRefinementFlow(Randomizer(random_state=seed))
        stages = flow.run(TestTemplate(), stage_sizes=(250, 80, 40))
        original = set(stages[0].covered_points())
        final = set(stages[-1].covered_points())
        # the original template always misses several rare points...
        assert len(original) <= 6
        # ...and two learning rounds always close most of the gap
        assert len(final) >= 7


class TestFig10AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_metal5_diagnosis_holds(self, seed):
        from repro.timing import run_dstc_experiment

        result = run_dstc_experiment(n_paths=300, random_state=seed)
        assert result.cluster_separation > 0.08
        assert set(result.rule_features()) & {
            "n_via45", "n_via56", "wire_M5"
        }


class TestFig12AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_drop_decision_and_escapes_hold(self, seed):
        from repro.mfgtest import run_drop_study

        result = run_drop_study(
            n_history=80_000, n_future=80_000,
            future_excursion_rate=2e-4, random_state=seed,
        )
        assert all(d.recommended_drop for d in result.decisions)
        assert result.total_escapes() > 0


class TestFig11AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_return_screen_holds(self, seed):
        from repro.mfgtest import CustomerReturnStudy

        report = CustomerReturnStudy(random_state=seed).run(
            n_train=4000, n_later=4000, n_sister=4000,
            train_defect_rate=0.0015, later_defect_rate=0.0015,
            sister_defect_rate=0.0015,
        )
        assert report.training.return_capture_rate == 1.0
        assert report.later_batch.return_capture_rate >= 0.5
        assert report.sister_product.return_capture_rate >= 0.5
        assert report.later_batch.overkill_rate < 0.01


class TestFig7AcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_selection_saves_simulations(self, seed):
        from repro.verification import (
            NoveltyTestSelector,
            Randomizer,
            TestTemplate,
            run_selection_experiment,
        )

        programs = list(
            Randomizer(random_state=seed).stream(TestTemplate(), 250)
        )
        selector = NoveltyTestSelector(nu=0.1, seed_count=8)
        result = run_selection_experiment(programs, selector=selector)
        assert result.n_selected < 0.6 * result.n_stream
        assert result.coverage_match_fraction > 0.85
