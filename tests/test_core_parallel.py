"""Tests for the execution backends (repro.core.parallel)."""

import os
import threading
import time

import numpy as np
import pytest

from repro.core import WorkerError
from repro.core.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    spawn_seeds,
)

BACKENDS = [
    SerialBackend(),
    ThreadBackend(n_workers=3),
    ProcessBackend(n_workers=2),
]


def _ids(backend):
    return backend.name


# module-level task functions so the process backend can pickle them
def square(x):
    return x * x


def slow_inverse_order(x):
    # later tasks finish first: ordering must still be submission order
    time.sleep(0.002 * (5 - x))
    return x * 10


def seeded_draw(x, seed):
    return (x, int(np.random.default_rng(seed).integers(0, 1_000_000)))


def fail_on_even(x):
    if x % 2 == 0:
        raise RuntimeError(f"boom {x}")
    return x


def fail_until_marker(payload):
    """Fails until a sentinel file exists, then succeeds — lets the
    retry path be observed across process boundaries too."""
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("first attempt fails")
    return value * 2


class TestOrderingAndEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS, ids=_ids)
    def test_results_in_submission_order(self, backend):
        assert backend.map(square, range(20)) == [i * i for i in range(20)]

    def test_out_of_order_completion_still_ordered(self):
        backend = ThreadBackend(n_workers=5)
        assert backend.map(slow_inverse_order, range(5)) == [
            0, 10, 20, 30, 40,
        ]

    def test_backends_agree(self):
        expected = SerialBackend().map(square, range(12))
        for backend in (ThreadBackend(n_workers=3),
                        ProcessBackend(n_workers=2)):
            assert backend.map(square, range(12)) == expected

    @pytest.mark.parametrize("backend", BACKENDS, ids=_ids)
    def test_empty_payloads(self, backend):
        assert backend.map(square, []) == []


class TestSeeding:
    def test_spawn_seeds_deterministic_and_distinct(self):
        a = spawn_seeds(42, 8)
        b = spawn_seeds(42, 8)
        assert a == b
        assert len(set(a)) == 8
        assert spawn_seeds(43, 8) != a

    @pytest.mark.parametrize("backend", BACKENDS, ids=_ids)
    def test_per_task_seeds_reproducible(self, backend):
        serial = SerialBackend().map(seeded_draw, range(6), seed=7)
        assert backend.map(seeded_draw, range(6), seed=7) == serial

    def test_different_tasks_get_different_seeds(self):
        draws = SerialBackend().map(seeded_draw, [0] * 6, seed=11)
        assert len({value for _, value in draws}) == 6


class TestRetry:
    def test_retry_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "marker")
        backend = SerialBackend(retries=2)
        assert backend.map(fail_until_marker, [(marker, 21)]) == [42]

    def test_retry_recovers_in_worker_process(self, tmp_path):
        marker = str(tmp_path / "marker_proc")
        backend = ProcessBackend(n_workers=2, retries=2)
        assert backend.map(fail_until_marker, [(marker, 5)]) == [10]

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(retries=1), ThreadBackend(n_workers=2, retries=1),
         ProcessBackend(n_workers=2, retries=1)],
        ids=_ids,
    )
    def test_persistent_failure_raises_worker_error(self, backend):
        with pytest.raises(WorkerError) as info:
            backend.map(fail_on_even, range(4))
        assert info.value.task_index == 0
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_successful_tasks_survive_a_failing_sibling(self, tmp_path):
        # the failing task retries; already-complete results are kept
        marker = str(tmp_path / "marker_mix")
        calls = []

        def mixed(payload):
            calls.append(payload)
            if payload == "flaky":
                return fail_until_marker((marker, 1))
            return payload

        backend = SerialBackend(retries=1)
        assert backend.map(mixed, ["a", "flaky", "b"]) == ["a", 2, "b"]
        # only the flaky task re-ran on the retry pass
        assert calls.count("a") == 1 and calls.count("b") == 1


class TestResolution:
    def test_get_backend_names(self):
        assert isinstance(get_backend(None), SerialBackend)
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread"), ThreadBackend)
        assert isinstance(get_backend("threads"), ThreadBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_get_backend_passthrough_instance(self):
        backend = ThreadBackend(n_workers=7)
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            get_backend(3.14)

    def test_available_backends(self):
        assert available_backends() == [
            "serial", "thread", "process", "sharded"
        ]

    def test_worker_resolution(self):
        assert SerialBackend().resolved_workers() == 1
        assert ThreadBackend(n_workers=4).resolved_workers() == 4
        assert ThreadBackend(n_workers=-1).resolved_workers() >= 1
        assert ProcessBackend().resolved_workers() >= 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ThreadBackend(n_workers=0)
        with pytest.raises(ValueError):
            SerialBackend(retries=-1)


class TestWorkerErrorPickling:
    """Remote tracebacks must survive repeated pickle round-trips.

    A shard worker re-raises a WorkerError that already crossed one
    process boundary; the driver's CheckpointStore merge pickles it
    again.  The reduce tuple must carry ``__dict__`` so stapled
    attributes (the trampoline's ``_repro_traceback``/``_repro_spans``)
    survive the *second* hop, not just the first.
    """

    def _round_trip_twice(self, error):
        import pickle

        return pickle.loads(pickle.dumps(pickle.loads(pickle.dumps(error))))

    def test_worker_error_double_round_trip(self):
        error = WorkerError(
            "task 3 failed", task_index=3, attempts=2,
            traceback_str="Traceback ...\nValueError: boom\n",
        )
        error._repro_traceback = "remote traceback text"
        error._repro_pid = 4242
        twice = self._round_trip_twice(error)
        assert isinstance(twice, WorkerError)
        assert twice.args[0] == "task 3 failed"
        assert twice.task_index == 3
        assert twice.attempts == 2
        assert "ValueError: boom" in twice.traceback_str
        assert twice._repro_traceback == "remote traceback text"
        assert twice._repro_pid == 4242

    def test_task_timeout_error_double_round_trip(self):
        from repro.core import TaskTimeoutError

        error = TaskTimeoutError(
            "task 1 timed out", task_index=1, timeout=0.5,
            abandoned=True, attempts=3, traceback_str="tb",
        )
        error._repro_spans = ["span-a"]
        twice = self._round_trip_twice(error)
        assert isinstance(twice, TaskTimeoutError)
        assert twice.timeout == 0.5
        assert twice.abandoned is True
        assert twice.attempts == 3
        assert twice._repro_spans == ["span-a"]

    def test_deadline_error_double_round_trip(self):
        from repro.core import DeadlineExceededError

        error = DeadlineExceededError("out of time", pending=(4, 5))
        error._repro_pid = 7
        twice = self._round_trip_twice(error)
        assert twice.pending == (4, 5)
        assert twice._repro_pid == 7

    def test_real_remote_failure_survives_second_hop(self):
        """End to end: a WorkerError raised by the process backend still
        carries its remote traceback after another pickle round-trip."""
        import pickle

        backend = ProcessBackend(n_workers=2, retries=0)
        with pytest.raises(WorkerError) as info:
            backend.map(fail_on_even, [1, 2, 3])
        hop = pickle.loads(pickle.dumps(info.value))
        assert hop.task_index == 1
        assert "boom 2" in hop.traceback_str


class TestThreadSafetyOfMap:
    def test_concurrent_maps_do_not_interleave_results(self):
        backend = ThreadBackend(n_workers=4)
        outputs = {}

        def run(tag, offset):
            outputs[tag] = backend.map(
                square, [offset + i for i in range(10)]
            )

        threads = [
            threading.Thread(target=run, args=(tag, offset))
            for tag, offset in [("a", 0), ("b", 100)]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outputs["a"] == [i * i for i in range(10)]
        assert outputs["b"] == [(100 + i) ** 2 for i in range(10)]
