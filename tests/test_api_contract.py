"""API-contract tests applied to every estimator in the library.

Each estimator must: store constructor args verbatim, survive
get_params/set_params/clone round-trips, refuse to predict before fit,
and produce outputs of the documented shape after fit.  Testing the
contract generically keeps the whole catalogue honest as it grows.
"""

import pickle

import numpy as np
import pytest

from repro.core import NotFittedError, clone
from repro.kernels import RBFKernel

# ---------------------------------------------------------------------
# registry: (constructor, task) where task picks the fitting data
# ---------------------------------------------------------------------


def classifier_data(rng):
    X = np.vstack(
        [rng.normal(-2, 0.6, size=(25, 3)), rng.normal(2, 0.6, size=(25, 3))]
    )
    y = np.repeat([0, 1], 25)
    return X, y


def regressor_data(rng):
    X = rng.uniform(-1, 1, size=(40, 2))
    y = X[:, 0] * 2.0 + rng.normal(0, 0.05, 40)
    return X, y


def unsupervised_data(rng):
    return np.vstack(
        [rng.normal(-3, 0.4, size=(20, 2)), rng.normal(3, 0.4, size=(20, 2))]
    )


def _make_registry():
    from repro import cluster, learn, transform
    from repro.mfgtest import (
        OneClassSVMDetector,
        PCAOutlierDetector,
        RobustMahalanobisDetector,
    )

    classifiers = [
        lambda: learn.KNeighborsClassifier(n_neighbors=3),
        lambda: learn.LogisticRegression(max_iter=100),
        learn.GaussianNaiveBayes,
        learn.BernoulliNaiveBayes,
        learn.LinearDiscriminantAnalysis,
        learn.QuadraticDiscriminantAnalysis,
        lambda: learn.SVC(kernel=RBFKernel(0.5), random_state=0),
        lambda: learn.DecisionTreeClassifier(max_depth=4, random_state=0),
        lambda: learn.RandomForestClassifier(n_estimators=5, random_state=0),
        lambda: learn.MLPClassifier(hidden_layers=(4,), max_iter=30,
                                    random_state=0),
        lambda: learn.RuleSetClassifier(max_rules=2),
        lambda: learn.OneVsRestClassifier(
            learn.LogisticRegression(max_iter=100)
        ),
        lambda: learn.PlattCalibratedClassifier(
            learn.SVC(kernel=RBFKernel(0.5), random_state=0),
            random_state=0,
        ),
        lambda: learn.SelfTrainingClassifier(
            learn.GaussianNaiveBayes(), threshold=0.95
        ),
    ]
    regressors = [
        lambda: learn.KNeighborsRegressor(n_neighbors=3),
        learn.LeastSquaresRegressor,
        lambda: learn.RidgeRegressor(alpha=0.1),
        lambda: learn.KernelRidgeRegressor(kernel=RBFKernel(1.0),
                                           alpha=0.01),
        lambda: learn.SVR(kernel=RBFKernel(1.0), C=5.0, epsilon=0.05),
        lambda: learn.GaussianProcessRegressor(kernel=RBFKernel(1.0),
                                               noise=1e-3),
        lambda: learn.DecisionTreeRegressor(max_depth=4, random_state=0),
        lambda: learn.RandomForestRegressor(n_estimators=5, random_state=0),
        lambda: learn.MLPRegressor(hidden_layers=(4,), max_iter=30,
                                   random_state=0),
    ]
    clusterers = [
        lambda: cluster.KMeans(n_clusters=2, random_state=0),
        lambda: cluster.AgglomerativeClustering(n_clusters=2),
        lambda: cluster.DBSCAN(eps=1.0, min_samples=3),
        lambda: cluster.SpectralClustering(n_clusters=2, random_state=0),
        lambda: cluster.MeanShift(bandwidth=2.0),
        cluster.AffinityPropagation,
    ]
    transformers = [
        lambda: transform.PCA(n_components=2),
        lambda: transform.KernelPCA(kernel=RBFKernel(0.5), n_components=2),
        lambda: transform.FastICA(n_components=2, random_state=0),
    ]
    detectors = [
        RobustMahalanobisDetector,
        lambda: OneClassSVMDetector(kernel=RBFKernel(0.3), nu=0.1),
        lambda: PCAOutlierDetector(n_components=1),
    ]
    return classifiers, regressors, clusterers, transformers, detectors


(CLASSIFIERS, REGRESSORS, CLUSTERERS, TRANSFORMERS,
 DETECTORS) = _make_registry()


ALL_ESTIMATORS = (
    CLASSIFIERS + REGRESSORS + CLUSTERERS + TRANSFORMERS + DETECTORS
)


def _name(factory):
    return type(factory()).__name__


def _values_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    return a == b


@pytest.mark.parametrize("factory", ALL_ESTIMATORS, ids=_name)
class TestNestedParamsContract:
    def test_deep_params_superset_of_shallow(self, factory):
        model = factory()
        shallow = model.get_params(deep=False)
        deep = model.get_params(deep=True)
        for key in shallow:
            assert key in deep
            assert "__" not in key

    def test_nested_keys_roundtrip_through_set_params(self, factory):
        model = factory()
        nested = {
            key: value
            for key, value in model.get_params(deep=True).items()
            if "__" in key
        }
        model.set_params(**nested)
        after = model.get_params(deep=True)
        for key, value in nested.items():
            assert _values_equal(after[key], value)

    def test_clone_preserves_deep_params_without_sharing(self, factory):
        model = factory()
        copy = clone(model)
        before = model.get_params(deep=True)
        after = copy.get_params(deep=True)
        assert set(before) == set(after)
        for key, value in before.items():
            assert _values_equal(after[key], value)
        # nested estimator/kernel objects must be fresh copies
        for key, value in model.get_params(deep=False).items():
            if hasattr(value, "get_params") and not isinstance(value, type):
                assert getattr(copy, key) is not value

    def test_unfitted_pickle_roundtrip(self, factory):
        model = factory()
        revived = pickle.loads(pickle.dumps(model))
        assert type(revived) is type(model)
        before = model.get_params(deep=True)
        after = revived.get_params(deep=True)
        assert set(before) == set(after)
        for key, value in before.items():
            assert _values_equal(after[key], value)


class TestNestedAddressing:
    def test_kernel_hyperparameter_grid_addressable(self):
        from repro import learn

        model = learn.SVC(kernel=RBFKernel(0.5), C=1.0)
        model.set_params(kernel__gamma=2.0, C=4.0)
        assert model.kernel.gamma == 2.0
        assert model.get_params(deep=True)["kernel__gamma"] == 2.0

    def test_wrapper_base_estimator_addressable(self):
        from repro import learn

        wrapper = learn.OneVsRestClassifier(
            learn.LogisticRegression(max_iter=50)
        )
        wrapper.set_params(base__max_iter=200)
        assert wrapper.base.max_iter == 200

    def test_doubly_nested_path(self):
        from repro import learn

        wrapper = learn.PlattCalibratedClassifier(
            learn.SVC(kernel=RBFKernel(0.5), random_state=0)
        )
        wrapper.set_params(base__kernel__gamma=3.0)
        assert wrapper.base.kernel.gamma == 3.0

    def test_replacing_and_configuring_in_one_call(self):
        from repro import learn

        model = learn.SVC(kernel=RBFKernel(0.5))
        model.set_params(kernel=RBFKernel(1.0), kernel__gamma=9.0)
        # the replacement kernel receives the nested assignment
        assert model.kernel.gamma == 9.0


@pytest.mark.parametrize("factory", CLASSIFIERS, ids=_name)
class TestClassifierContract:
    def test_params_roundtrip_and_clone(self, factory):
        model = factory()
        params = model.get_params()
        copy = clone(model)
        assert copy.get_params() == params

    def test_unfitted_predict_raises(self, factory, rng):
        X, _ = classifier_data(rng)
        with pytest.raises((NotFittedError, RuntimeError, AttributeError)):
            factory().predict(X)

    def test_fit_predict_shapes(self, factory, rng):
        X, y = classifier_data(rng)
        model = factory().fit(X, y)
        predictions = model.predict(X)
        assert len(predictions) == len(X)
        assert set(np.unique(predictions)) <= set(np.unique(y)) | {"other"}

    def test_fit_returns_self(self, factory, rng):
        X, y = classifier_data(rng)
        model = factory()
        assert model.fit(X, y) is model

    def test_separable_data_high_accuracy(self, factory, rng):
        X, y = classifier_data(rng)
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.85


@pytest.mark.parametrize("factory", REGRESSORS, ids=_name)
class TestRegressorContract:
    def test_params_roundtrip_and_clone(self, factory):
        model = factory()
        copy = clone(model)
        assert copy.get_params() == model.get_params()

    def test_fit_predict_shapes(self, factory, rng):
        X, y = regressor_data(rng)
        model = factory().fit(X, y)
        predictions = model.predict(X)
        assert predictions.shape == (len(X),)
        assert np.all(np.isfinite(predictions))

    def test_linear_trend_learned(self, factory, rng):
        X, y = regressor_data(rng)
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.5


@pytest.mark.parametrize("factory", CLUSTERERS, ids=_name)
class TestClustererContract:
    def test_labels_shape(self, factory, rng):
        X = unsupervised_data(rng)
        model = factory().fit(X)
        assert model.labels_.shape == (len(X),)

    def test_fit_predict_matches_labels(self, factory, rng):
        X = unsupervised_data(rng)
        model = factory()
        labels = model.fit_predict(X)
        np.testing.assert_array_equal(labels, model.labels_)

    def test_two_far_blobs_separate(self, factory, rng):
        X = unsupervised_data(rng)
        labels = factory().fit_predict(X)
        first_half = set(labels[:20].tolist()) - {-1}
        second_half = set(labels[20:].tolist()) - {-1}
        assert first_half.isdisjoint(second_half)


@pytest.mark.parametrize("factory", TRANSFORMERS, ids=_name)
class TestTransformerContract:
    def test_fit_transform_equals_fit_then_transform(self, factory, rng):
        X = unsupervised_data(rng)
        a = factory()
        direct = a.fit_transform(X)
        b = factory().fit(X)
        np.testing.assert_allclose(direct, b.transform(X), atol=1e-8)

    def test_output_is_2d_finite(self, factory, rng):
        X = unsupervised_data(rng)
        out = factory().fit_transform(X)
        assert out.ndim == 2
        assert np.all(np.isfinite(out))


@pytest.mark.parametrize("factory", DETECTORS, ids=_name)
class TestDetectorContract:
    def test_scores_and_flags_align(self, factory, rng):
        X = rng.normal(size=(300, 2))
        detector = factory().fit(X)
        scores = detector.score_samples(X)
        flags = detector.is_outlier(X)
        assert scores.shape == (len(X),)
        assert flags.dtype == bool

    def test_extreme_point_flagged(self, factory, rng):
        X = rng.normal(size=(300, 2))
        detector = factory().fit(X)
        assert detector.is_outlier(np.array([[25.0, 25.0]]))[0]

    def test_predict_convention(self, factory, rng):
        X = rng.normal(size=(200, 2))
        detector = factory().fit(X)
        predictions = detector.predict(X)
        assert set(np.unique(predictions)) <= {-1, 1}
