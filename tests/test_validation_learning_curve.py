"""Tests for the learning-curve utility (Section 1's data-availability
principle) and the STA slack report."""

import numpy as np
import pytest

from repro.core import learning_curve
from repro.learn import KNeighborsClassifier, RidgeRegressor
from repro.timing import Path, PathGenerator, Stage, StaticTimer


class TestLearningCurve:
    @pytest.fixture
    def classification_problem(self, rng):
        X = np.vstack(
            [rng.normal(-1.2, 0.8, size=(200, 2)),
             rng.normal(1.2, 0.8, size=(200, 2))]
        )
        y = np.repeat([0, 1], 200)
        order = rng.permutation(400)
        X_val = np.vstack(
            [rng.normal(-1.2, 0.8, size=(150, 2)),
             rng.normal(1.2, 0.8, size=(150, 2))]
        )
        y_val = np.repeat([0, 1], 150)
        return X[order], y[order], X_val, y_val

    def test_validation_error_improves_with_data(
        self, classification_problem
    ):
        X, y, X_val, y_val = classification_problem
        curve = learning_curve(
            KNeighborsClassifier(n_neighbors=5),
            X, y, sizes=[10, 40, 160, 400],
            X_val=X_val, y_val=y_val, random_state=0,
        )
        assert curve.validation_errors[-1] <= curve.validation_errors[0]

    def test_knee_detects_saturation(self, classification_problem):
        X, y, X_val, y_val = classification_problem
        curve = learning_curve(
            KNeighborsClassifier(n_neighbors=5),
            X, y, sizes=[10, 40, 160, 400],
            X_val=X_val, y_val=y_val, random_state=0,
        )
        knee = curve.knee_size(tolerance=0.03)
        assert knee in curve.sizes
        assert knee < 400  # easy problem saturates before all the data

    def test_rows_align(self, classification_problem):
        X, y, X_val, y_val = classification_problem
        curve = learning_curve(
            KNeighborsClassifier(n_neighbors=3),
            X, y, sizes=[20, 50], X_val=X_val, y_val=y_val,
            random_state=0,
        )
        rows = curve.rows()
        assert len(rows) == 2
        assert rows[0][0] == 20

    def test_regressor_uses_mse(self, rng):
        X = rng.uniform(-1, 1, size=(120, 2))
        y = X[:, 0] + rng.normal(0, 0.05, 120)
        curve = learning_curve(
            RidgeRegressor(alpha=0.01),
            X, y, sizes=[10, 100],
            X_val=X, y_val=y, random_state=0,
        )
        assert curve.validation_errors[1] < 0.1

    def test_rejects_out_of_range_size(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.integers(0, 2, size=20)
        with pytest.raises(ValueError):
            learning_curve(
                KNeighborsClassifier(n_neighbors=1),
                X, y, sizes=[50], X_val=X, y_val=y,
            )

    def test_seeded_shuffle(self, classification_problem):
        X, y, X_val, y_val = classification_problem
        a = learning_curve(
            KNeighborsClassifier(n_neighbors=3), X, y, sizes=[30],
            X_val=X_val, y_val=y_val, random_state=7,
        )
        b = learning_curve(
            KNeighborsClassifier(n_neighbors=3), X, y, sizes=[30],
            X_val=X_val, y_val=y_val, random_state=7,
        )
        assert a.validation_errors == b.validation_errors


class TestSlackReport:
    @pytest.fixture
    def block(self):
        return PathGenerator(random_state=0).generate_block(50)

    def test_slack_definition(self):
        path = Path("p", "b", [Stage("INV", 1), Stage("DFF", 1)])
        timer = StaticTimer()
        delay = timer.path_delay(path)
        slack = timer.slack_report([path], clock_period=delay + 5.0)["p"]
        assert slack == pytest.approx(5.0)

    def test_wns_zero_when_timing_met(self, block):
        timer = StaticTimer()
        generous = max(timer.path_delay(p) for p in block) + 1.0
        assert timer.worst_negative_slack(block, generous) == 0.0
        assert timer.total_negative_slack(block, generous) == 0.0

    def test_wns_matches_slowest_path(self, block):
        timer = StaticTimer()
        slowest = max(timer.path_delay(p) for p in block)
        clock = slowest - 10.0
        assert timer.worst_negative_slack(block, clock) == pytest.approx(
            -10.0
        )

    def test_tns_sums_violations(self, block):
        timer = StaticTimer()
        clock = float(np.median([timer.path_delay(p) for p in block]))
        tns = timer.total_negative_slack(block, clock)
        slacks = timer.slack_report(block, clock)
        manual = sum(s for s in slacks.values() if s < 0)
        assert tns == pytest.approx(manual)
        assert tns < 0

    def test_rejects_bad_clock(self, block):
        with pytest.raises(ValueError):
            StaticTimer().slack_report(block, 0.0)
