"""Chaos-testing the resilience layer: injected failures against every
policy on every backend, including the SIGKILL checkpoint-resume
acceptance scenario.

Everything here is marked ``chaos`` so CI can run the lane on its own
(``pytest -m chaos``); the tests still ride in the default suite.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import (
    CheckpointStore,
    DeadlineExceededError,
    ErrorPolicy,
    EventLog,
    GridSearchCV,
    KFold,
    TaskTimeoutError,
    WorkerError,
    cross_validate,
    recording,
)
from repro.core.base import Estimator
from repro.core.parallel import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.flows import KnowledgeDiscoveryLoop
from repro.learn import LogisticRegression
from repro.testing.chaos import (
    ChaosError,
    CrashingTask,
    FlakyEstimator,
    FlakyTask,
    HangingTask,
    SlowEstimator,
    SlowTask,
    attempt_count,
)
from repro.testing.chaos import fingerprint as chaos_fingerprint

pytestmark = pytest.mark.chaos

BACKENDS = [SerialBackend, ThreadBackend, ProcessBackend]
SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def make_data(n=48, d=4, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    w = np.array([1.0, -2.0, 0.5, 1.5])[:d]
    y = (X @ w > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def data():
    return make_data()


class PoisonedEstimator(Estimator):
    """Fails ``fit`` deterministically for one learning-rate value —
    the "one pathological grid cell" scenario."""

    def __init__(self, learning_rate=0.1, poison=0.5, max_iter=40):
        self.learning_rate = learning_rate
        self.poison = poison
        self.max_iter = max_iter

    def fit(self, X, y=None):
        if self.learning_rate == self.poison:
            raise ChaosError(
                f"poisoned cell: learning_rate={self.learning_rate}"
            )
        self.model_ = LogisticRegression(
            learning_rate=self.learning_rate, max_iter=self.max_iter
        ).fit(X, y)
        return self

    def predict(self, X):
        return self.model_.predict(X)

    def score(self, X, y):
        return self.model_.score(X, y)


# ---------------------------------------------------------------------
# task-level injection: retries, crashes, hangs
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_flaky_task_retried_to_success(backend_cls, tmp_path):
    state = str(tmp_path / "state")
    task = FlakyTask(fail_times=1, state_dir=state)
    backend = backend_cls(n_workers=2, retries=1)
    assert backend.map(task, [0, 1, 2]) == [0, 1, 2]
    for payload in (0, 1, 2):
        key = chaos_fingerprint("flaky-task", payload)
        assert attempt_count(state, key) == 2


def test_worker_error_after_retry_budget(tmp_path):
    task = FlakyTask(fail_times=5, state_dir=str(tmp_path / "state"))
    backend = SerialBackend(retries=1)
    with pytest.raises(WorkerError) as info:
        backend.map(task, ["only"])
    assert info.value.task_index == 0
    assert info.value.attempts == 2
    assert "injected flaky failure" in info.value.traceback_str


def test_crash_recovery_on_process_backend(tmp_path):
    """A worker dying mid-task (os._exit) breaks the pool; the retry
    pass reruns the survivors on a fresh pool and the map completes."""
    task = CrashingTask(crash_times=1, state_dir=str(tmp_path / "state"))
    backend = ProcessBackend(n_workers=2, retries=3)
    assert backend.map(task, [0, 1, 2]) == [0, 1, 2]


def test_crash_downgrades_to_exception_in_driver(tmp_path):
    """On serial/thread the injector must not take the driver down."""
    task = CrashingTask(crash_times=5, state_dir=str(tmp_path / "state"))
    with pytest.raises(WorkerError) as info:
        SerialBackend(retries=0).map(task, ["x"])
    assert isinstance(info.value.__cause__, ChaosError)
    assert "downgraded" in str(info.value.__cause__)


def test_hanging_task_abandoned_on_thread_backend(tmp_path):
    """Acceptance: a hung task on the thread backend is abandoned within
    the configured timeout and surfaces TaskTimeoutError with its
    index."""
    stop = str(tmp_path / "stop")
    task = HangingTask(seconds=30.0, hang_on=1, stop_path=stop)
    backend = ThreadBackend(n_workers=2, retries=0, timeout=0.5)
    log = EventLog()
    start = time.perf_counter()
    try:
        with pytest.raises(TaskTimeoutError) as info, recording(log):
            backend.map(task, [0, 1, 2])
    finally:
        open(stop, "w").close()  # release the orphaned thread
    elapsed = time.perf_counter() - start
    assert info.value.task_index == 1
    assert info.value.timeout == 0.5
    assert not info.value.abandoned  # the genuine offender, not a sibling
    assert elapsed < 5.0, f"abandonment took {elapsed:.1f}s"
    timeouts = log.spans("timeout")
    assert len(timeouts) == 1 and timeouts[0].meta["task"] == 1


def test_hanging_task_abandoned_on_process_backend():
    """Acceptance: same contract on the process backend — the hung
    worker process is terminated, not waited for."""
    task = HangingTask(seconds=30.0, hang_on=1)
    backend = ProcessBackend(n_workers=2, retries=0, timeout=1.0)
    start = time.perf_counter()
    with pytest.raises(TaskTimeoutError) as info:
        backend.map(task, [0, 1, 2])
    elapsed = time.perf_counter() - start
    assert info.value.task_index == 1
    assert info.value.timeout == 1.0
    assert not info.value.abandoned
    assert elapsed < 10.0, f"abandonment took {elapsed:.1f}s"


def test_deadline_bounds_a_map_call():
    with pytest.raises(DeadlineExceededError) as info:
        SerialBackend(deadline=0.25).map(SlowTask(0.1), list(range(20)))
    assert len(info.value.pending) > 0
    with pytest.raises(DeadlineExceededError):
        ThreadBackend(n_workers=1, deadline=0.25).map(
            SlowTask(0.2), list(range(4))
        )


def test_deadline_bounds_a_grid_search(data):
    X, y = data
    search = GridSearchCV(
        SlowEstimator(LogisticRegression(max_iter=40), seconds=0.2),
        {"base__learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=2),
        deadline=0.3,
    )
    with pytest.raises(DeadlineExceededError):
        search.fit(X, y)


# ---------------------------------------------------------------------
# failure determinism: retries must not perturb results
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_retried_tasks_reuse_their_original_seed(backend_cls, tmp_path):
    """Seeds are assigned by task index, so a campaign with injected
    failures draws exactly what a clean campaign draws."""
    payloads = [10, 20, 30]
    clean = backend_cls(n_workers=2, retries=0).map(
        FlakyTask(fail_times=0, state_dir=str(tmp_path / "clean")),
        payloads, seed=42,
    )
    flaky = backend_cls(n_workers=2, retries=2).map(
        FlakyTask(fail_times=1, state_dir=str(tmp_path / "flaky")),
        payloads, seed=42,
    )
    assert clean == flaky


@pytest.fixture(scope="module")
def baseline_search(data):
    X, y = data
    return GridSearchCV(
        LogisticRegression(max_iter=40),
        {"learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=3),
    ).fit(X, y)


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_grid_search_bitwise_identical_under_injected_failures(
    backend_cls, tmp_path, data, baseline_search
):
    """Satellite pin: GridSearchCV over a flaky estimator converges to
    bitwise the clean result on every backend — including the refit."""
    X, y = data
    chaotic = GridSearchCV(
        FlakyEstimator(
            LogisticRegression(max_iter=40),
            fail_times=1,
            state_dir=str(tmp_path / "state"),
        ),
        {"base__learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=3),
        backend=backend_cls(n_workers=2, retries=2),
    ).fit(X, y)
    clean = baseline_search
    assert (
        chaotic.cv_results_["fold_test_scores"].tobytes()
        == clean.cv_results_["fold_test_scores"].tobytes()
    )
    assert chaotic.best_index_ == clean.best_index_
    assert chaotic.best_score_ == clean.best_score_
    assert (
        chaotic.best_params_["base__learning_rate"]
        == clean.best_params_["learning_rate"]
    )
    assert np.array_equal(chaotic.predict(X), clean.predict(X))


def test_retry_spans_from_flaky_grid_search(tmp_path, data):
    """Satellite pin: backend retries surface as ``retry`` spans in the
    search's EventLog."""
    X, y = data
    log = EventLog()
    GridSearchCV(
        FlakyEstimator(
            LogisticRegression(max_iter=40),
            fail_times=1,
            state_dir=str(tmp_path / "state"),
        ),
        {"base__learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=3),
        retries=2,
        event_log=log,
    ).fit(X, y)
    retries = log.spans("retry")
    # 6 search cells fail once each (batched into one retry pass on the
    # serial backend) plus the refit's own first-attempt failure
    assert len(retries) >= 2
    assert any(s.label == "refit" for s in retries)
    assert all("ChaosError" in s.meta["error"] for s in retries)


# ---------------------------------------------------------------------
# error policies: one bad cell must not kill the sweep
# ---------------------------------------------------------------------

def test_skip_policy_records_error_score_and_never_wins(data):
    X, y = data
    search = GridSearchCV(
        PoisonedEstimator(poison=0.5),
        {"learning_rate": [0.05, 0.5, 0.1]},
        cv=KFold(n_splits=3),
        error_policy=ErrorPolicy("skip"),
    ).fit(X, y)
    means = search.cv_results_["mean_test_score"]
    assert np.isnan(means[1])
    assert np.isfinite(means[[0, 2]]).all()
    assert search.best_index_ in (0, 2)
    assert search.cv_results_["rank_test_score"][1] == 3
    errors = search.cv_results_["fold_errors"]
    assert all(e is None for e in errors[0] + errors[2])
    assert all("ChaosError" in e for e in errors[1])


def test_skip_policy_retries_before_skipping(tmp_path, data):
    """Retries compose with the error policy: a transient failure is
    retried in-task and recovers, so only persistent failures skip."""
    X, y = data
    search = GridSearchCV(
        FlakyEstimator(
            LogisticRegression(max_iter=40),
            fail_times=1,  # transient: every cell recovers on attempt 2
            state_dir=str(tmp_path / "state"),
        ),
        {"base__learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=3),
        retries=2,
        error_policy=ErrorPolicy("skip"),
    ).fit(X, y)
    assert np.isfinite(search.cv_results_["mean_test_score"]).all()
    errors = search.cv_results_["fold_errors"]
    assert all(e is None for row in errors for e in row)


def test_fallback_policy_substitutes_the_baseline(data):
    X, y = data
    search = GridSearchCV(
        PoisonedEstimator(poison=0.5),
        {"learning_rate": [0.05, 0.5]},
        cv=KFold(n_splits=3),
        error_policy=ErrorPolicy(
            "fallback",
            fallback=PoisonedEstimator(learning_rate=0.05, poison=-1.0),
        ),
    ).fit(X, y)
    scores = search.cv_results_["fold_test_scores"]
    assert np.isfinite(scores).all()
    # the poisoned candidate's cells were fit by the lr=0.05 fallback,
    # so they reproduce candidate 0's scores exactly
    assert scores[1].tobytes() == scores[0].tobytes()
    assert all("ChaosError" in e
               for e in search.cv_results_["fold_errors"][1])


def test_every_candidate_failing_raises(data):
    X, y = data
    search = GridSearchCV(
        PoisonedEstimator(poison=0.5),
        {"learning_rate": [0.5]},
        cv=KFold(n_splits=3),
        error_policy=ErrorPolicy("skip"),
        refit=False,
    )
    with pytest.raises(ValueError, match="every candidate failed"):
        search.fit(X, y)


def test_cross_validate_skip_policy(data):
    X, y = data
    out = cross_validate(
        PoisonedEstimator(learning_rate=0.5, poison=0.5), X, y,
        cv=KFold(n_splits=3),
        error_policy=ErrorPolicy("skip", error_score=-1.0),
    )
    assert np.array_equal(out["test_score"], [-1.0, -1.0, -1.0])
    assert all("ChaosError" in e for e in out["errors"])


# ---------------------------------------------------------------------
# checkpoint/resume (in-process)
# ---------------------------------------------------------------------

def test_cross_validate_resumes_from_checkpoint(tmp_path, data):
    X, y = data
    store = CheckpointStore(tmp_path / "ckpt")
    model = LogisticRegression(max_iter=40)
    first = cross_validate(
        model, X, y, cv=KFold(n_splits=4), checkpoint=store
    )
    assert first["checkpoint_hits"] == 0
    assert len(store) == 4
    log = EventLog()
    second = cross_validate(
        model, X, y, cv=KFold(n_splits=4), checkpoint=store, event_log=log
    )
    assert second["checkpoint_hits"] == 4
    assert (
        second["test_score"].tobytes() == first["test_score"].tobytes()
    )
    assert len(log.spans("checkpoint")) == 4
    assert len(log.spans("fit")) == 0  # nothing was refit


def test_grid_search_resumes_only_missing_cells(tmp_path, data):
    X, y = data
    store = CheckpointStore(tmp_path / "ckpt")
    kwargs = dict(
        param_grid={"learning_rate": [0.05, 0.1]},
        cv=KFold(n_splits=3),
        checkpoint=store,
    )
    full = GridSearchCV(
        LogisticRegression(max_iter=40), **kwargs
    ).fit(X, y)
    assert full.checkpoint_hits_ == 0 and len(store) == 6
    # lose two cells (a partially-complete run), then resume
    for key in store.keys()[:2]:
        store.discard(key)
    resumed = GridSearchCV(
        LogisticRegression(max_iter=40), **kwargs
    ).fit(X, y)
    assert resumed.checkpoint_hits_ == 4
    assert (
        resumed.cv_results_["fold_test_scores"].tobytes()
        == full.cv_results_["fold_test_scores"].tobytes()
    )
    assert resumed.best_params_ == full.best_params_


def test_knowledge_discovery_loop_resumes(tmp_path):
    mine_calls = []

    def mine(context):
        mine_calls.append(context)
        return {"model": f"m{context}"}

    def judge(result):
        return False, f"rejected {result['model']}"

    def adjust(context, feedback):
        return context + 1

    store = CheckpointStore(tmp_path / "kdl", allow_pickle=True)
    first = KnowledgeDiscoveryLoop(
        mine, judge, adjust, max_iterations=3, checkpoint=store
    )
    assert first.run(0) is None
    assert len(mine_calls) == 3

    log = EventLog()
    second = KnowledgeDiscoveryLoop(
        mine, judge, adjust, max_iterations=3, checkpoint=store
    )
    with recording(log):
        assert second.run(0) is None
    assert len(mine_calls) == 3  # nothing re-mined
    assert second.resumed_iterations == 3
    assert [r.feedback for r in second.history] == [
        r.feedback for r in first.history
    ]
    assert len(log.spans("checkpoint")) == 3


# ---------------------------------------------------------------------
# the SIGKILL acceptance scenario
# ---------------------------------------------------------------------

_DRIVER = """\
import sys

sys.path.insert(0, {src!r})

import numpy as np

from repro.core import CheckpointStore, GridSearchCV, KFold
from repro.learn import LogisticRegression
from repro.testing.chaos import SlowEstimator

ckpt_dir, x_path, y_path = sys.argv[1:4]
X = np.load(x_path)
y = np.load(y_path)
GridSearchCV(
    SlowEstimator(LogisticRegression(max_iter=40), seconds=0.15),
    {{"base__learning_rate": [0.02, 0.05, 0.1, 0.2]}},
    cv=KFold(n_splits=3),
    checkpoint=CheckpointStore(ckpt_dir),
).fit(X, y)
print("COMPLETED")
"""


def test_sigkill_resume_is_bitwise_identical(tmp_path, data):
    """Acceptance: SIGKILL a checkpointed GridSearchCV mid-run, rerun
    with the same store, and get cv_results_ bitwise identical to an
    uninterrupted run — refitting only the incomplete cells."""
    X, y = data
    x_path, y_path = str(tmp_path / "X.npy"), str(tmp_path / "y.npy")
    np.save(x_path, X)
    np.save(y_path, y)
    ckpt_dir = str(tmp_path / "ckpt")
    script = tmp_path / "driver.py"
    script.write_text(_DRIVER.format(src=SRC))

    proc = subprocess.Popen(
        [sys.executable, str(script), ckpt_dir, x_path, y_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        # wait for the driver to land at least two checkpoints, then
        # kill it dead — no signal handler gets to run
        deadline = time.monotonic() + 60.0
        store = CheckpointStore(ckpt_dir)
        while len(store) < 2:
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate()
                pytest.fail(
                    f"driver finished before it could be killed: "
                    f"{out!r} {err!r}"
                )
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL

    pre_resume = len(store)
    total_cells = 4 * 3
    assert 0 < pre_resume < total_cells

    estimator = SlowEstimator(LogisticRegression(max_iter=40), seconds=0.15)
    grid = {"base__learning_rate": [0.02, 0.05, 0.1, 0.2]}
    log = EventLog()
    resumed = GridSearchCV(
        estimator, grid, cv=KFold(n_splits=3),
        checkpoint=store, event_log=log,
    ).fit(X, y)
    clean = GridSearchCV(
        estimator, grid, cv=KFold(n_splits=3),
    ).fit(X, y)

    # only the incomplete cells were refit
    assert resumed.n_tasks_ == total_cells
    assert resumed.checkpoint_hits_ == pre_resume
    assert len(log.spans("checkpoint")) == pre_resume
    cell_fits = [
        s for s in log.spans("fit") if "candidate" in s.meta
    ]
    assert len(cell_fits) == total_cells - pre_resume

    # and the merged results are bitwise the uninterrupted run's
    for field in ("fold_test_scores", "mean_test_score",
                  "std_test_score"):
        assert (
            resumed.cv_results_[field].tobytes()
            == clean.cv_results_[field].tobytes()
        ), field
    assert np.array_equal(
        resumed.cv_results_["rank_test_score"],
        clean.cv_results_["rank_test_score"],
    )
    assert resumed.cv_results_["params"] == clean.cv_results_["params"]
    assert resumed.best_params_ == clean.best_params_
    assert resumed.best_score_ == clean.best_score_
    assert resumed.best_index_ == clean.best_index_
