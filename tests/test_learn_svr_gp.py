"""Tests for SVR and Gaussian-process regression."""

import numpy as np
import pytest

from repro.kernels import LinearKernel, RBFKernel
from repro.learn import SVR, GaussianProcessRegressor


class TestSVR:
    def test_fits_sine(self, sine_regression):
        X, y = sine_regression
        model = SVR(kernel=RBFKernel(1.0), C=10.0, epsilon=0.05).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_linear_kernel_recovers_slope(self, rng):
        X = rng.uniform(-2, 2, size=(40, 1))
        y = 1.5 * X[:, 0] + 0.3
        model = SVR(kernel=LinearKernel(), C=50.0, epsilon=0.01).fit(X, y)
        predictions = model.predict(np.array([[0.0], [1.0]]))
        slope = predictions[1] - predictions[0]
        assert slope == pytest.approx(1.5, abs=0.1)

    def test_epsilon_tube_controls_sparsity(self, sine_regression):
        X, y = sine_regression
        narrow = SVR(kernel=RBFKernel(1.0), C=10.0, epsilon=0.01).fit(X, y)
        wide = SVR(kernel=RBFKernel(1.0), C=10.0, epsilon=0.5).fit(X, y)
        assert wide.n_support_ < narrow.n_support_

    def test_residuals_mostly_inside_tube(self, sine_regression):
        X, y = sine_regression
        eps = 0.1
        model = SVR(kernel=RBFKernel(1.0), C=100.0, epsilon=eps).fit(X, y)
        residuals = np.abs(model.predict(X) - y)
        assert np.mean(residuals <= eps + 0.05) > 0.85

    def test_rejects_bad_params(self, sine_regression):
        X, y = sine_regression
        with pytest.raises(ValueError):
            SVR(C=0.0).fit(X, y)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1).fit(X, y)

    def test_eq2_form(self, sine_regression):
        X, y = sine_regression
        model = SVR(kernel=RBFKernel(1.0), C=10.0, epsilon=0.1).fit(X, y)
        x_new = np.array([0.3])
        manual = model.intercept_ + sum(
            coefficient * model.kernel_(x_new, sv)
            for coefficient, sv in zip(
                model.dual_coef_, model.support_vectors_
            )
        )
        assert model.predict([x_new])[0] == pytest.approx(manual)


class TestGaussianProcess:
    def test_interpolates_noiseless_data(self, rng):
        X = np.linspace(-2, 2, 12).reshape(-1, 1)
        y = np.sin(X[:, 0])
        model = GaussianProcessRegressor(
            kernel=RBFKernel(1.0), noise=1e-8
        ).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = np.sin(2 * X[:, 0])
        model = GaussianProcessRegressor(
            kernel=RBFKernel(1.0), noise=1e-4
        ).fit(X, y)
        _, std_near = model.predict(np.array([[0.0]]), return_std=True)
        _, std_far = model.predict(np.array([[6.0]]), return_std=True)
        assert std_far[0] > std_near[0] * 3

    def test_predictive_std_nonnegative(self, sine_regression):
        X, y = sine_regression
        model = GaussianProcessRegressor(kernel=RBFKernel(1.0)).fit(X, y)
        _, std = model.predict(X, return_std=True)
        assert np.all(std >= 0.0)

    def test_noise_smooths_fit(self, rng):
        X = rng.uniform(-2, 2, size=(50, 1))
        y = np.sin(X[:, 0]) + rng.normal(0, 0.3, size=50)
        exact = GaussianProcessRegressor(
            kernel=RBFKernel(4.0), noise=1e-8
        ).fit(X, y)
        smoothed = GaussianProcessRegressor(
            kernel=RBFKernel(4.0), noise=0.1
        ).fit(X, y)
        # exact interpolation chases the noise; smoothed does not
        assert exact.score(X, y) > smoothed.score(X, y)
        grid = np.linspace(-2, 2, 100).reshape(-1, 1)
        truth = np.sin(grid[:, 0])
        smoothed_error = np.mean((smoothed.predict(grid) - truth) ** 2)
        exact_error = np.mean((exact.predict(grid) - truth) ** 2)
        assert smoothed_error < exact_error

    def test_log_marginal_likelihood_finite(self, sine_regression):
        X, y = sine_regression
        model = GaussianProcessRegressor(kernel=RBFKernel(1.0)).fit(X, y)
        assert np.isfinite(model.log_marginal_likelihood_)

    def test_rejects_negative_noise(self, sine_regression):
        X, y = sine_regression
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=-1.0).fit(X, y)


class TestFiveRegressionFamilies:
    """The paper cites [20]: five regression families compared for Fmax
    prediction.  All five must fit a common smooth target well."""

    def test_all_families_fit_smooth_target(self, rng):
        from repro.learn import (
            KNeighborsRegressor,
            LeastSquaresRegressor,
            RidgeRegressor,
        )

        X = rng.uniform(-1, 1, size=(120, 3))
        y = (
            1.0
            + 2.0 * X[:, 0]
            - 1.0 * X[:, 1]
            + 0.5 * X[:, 2]
            + rng.normal(0, 0.05, size=120)
        )
        models = [
            KNeighborsRegressor(n_neighbors=5),
            LeastSquaresRegressor(),
            RidgeRegressor(alpha=0.1),
            SVR(kernel=LinearKernel(), C=10.0, epsilon=0.05),
            GaussianProcessRegressor(kernel=RBFKernel(0.5), noise=1e-2),
        ]
        for model in models:
            model.fit(X, y)
            assert model.score(X, y) > 0.8, type(model).__name__
