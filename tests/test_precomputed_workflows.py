"""Precomputed-kernel workflows.

When a domain kernel is expensive (litho image similarity, long program
alignments), flows evaluate the Gram matrix once and hand learners
integer sample indices — the caching pattern
:class:`repro.kernels.PrecomputedKernel` exists for.  These tests pin
the pattern end to end for SVC and one-class SVM.
"""

import numpy as np
import pytest

from repro.kernels import PrecomputedKernel, RBFKernel
from repro.learn import SVC, OneClassSVM


@pytest.fixture
def gram_setup(rng):
    X = np.vstack(
        [rng.normal(-2, 0.5, size=(30, 2)), rng.normal(2, 0.5, size=(30, 2))]
    )
    y = np.repeat([0, 1], 30)
    base = RBFKernel(0.5)
    K = base.matrix(X)
    return X, y, K, base


class TestPrecomputedSVC:
    def test_matches_direct_kernel(self, gram_setup):
        X, y, K, base = gram_setup
        direct = SVC(kernel=base, C=1.0, random_state=0).fit(X, y)
        indices = np.arange(len(X))
        cached = SVC(
            kernel=PrecomputedKernel(K), C=1.0, random_state=0
        ).fit(indices, y)
        np.testing.assert_array_equal(
            direct.predict(X), cached.predict(indices)
        )

    def test_predicting_new_samples_via_extended_gram(self, gram_setup):
        X, y, K, base = gram_setup
        probes = np.array([[-2.0, 0.0], [2.0, 0.0]])
        # extend the Gram matrix with the probe rows/columns
        cross = base.cross_matrix(probes, X)
        K_extended = np.zeros((len(X) + 2, len(X) + 2))
        K_extended[: len(X), : len(X)] = K
        K_extended[len(X):, : len(X)] = cross
        K_extended[: len(X), len(X):] = cross.T
        K_extended[len(X):, len(X):] = base.matrix(probes)

        model = SVC(
            kernel=PrecomputedKernel(K_extended), C=1.0, random_state=0
        ).fit(np.arange(len(X)), y)
        predictions = model.predict(np.array([len(X), len(X) + 1]))
        assert predictions.tolist() == [0, 1]


class TestPrecomputedOneClass:
    def test_matches_direct_kernel(self, gram_setup):
        X, y, K, base = gram_setup
        familiar = X[:30]
        direct = OneClassSVM(kernel=base, nu=0.1).fit(familiar)
        cached = OneClassSVM(
            kernel=PrecomputedKernel(K[:30, :30]), nu=0.1
        ).fit(np.arange(30))
        np.testing.assert_allclose(
            direct.decision_function(familiar),
            cached.decision_function(np.arange(30)),
            atol=1e-6,
        )

    def test_gram_reuse_across_models(self, gram_setup):
        """One expensive Gram evaluation serves several nu settings —
        the whole point of the caching pattern."""
        X, y, K, base = gram_setup
        indices = np.arange(len(X))
        boundaries = []
        for nu in (0.05, 0.2, 0.5):
            model = OneClassSVM(
                kernel=PrecomputedKernel(K), nu=nu
            ).fit(indices)
            boundaries.append(
                float(np.mean(model.decision_function(indices) >= 0))
            )
        # larger nu admits fewer training inliers
        assert boundaries[0] >= boundaries[-1]
