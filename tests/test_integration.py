"""Cross-module integration tests: miniature versions of each paper
experiment wired end-to-end through the public API.

The full-size runs live in benchmarks/; these check that the pieces
compose and the qualitative shapes hold at small scale.
"""

import numpy as np
import pytest

from repro.core import StandardScaler, train_test_split
from repro.kernels import PolynomialKernel, RBFKernel
from repro.learn import SVC, OneClassSVM


class TestFig3Pipeline:
    """Kernel trick end-to-end: scaler -> SVC with degree-2 kernel."""

    def test_rings_pipeline(self, rings):
        X, y = rings
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=0.3, random_state=0
        )
        scaler = StandardScaler().fit(X_train)
        model = SVC(
            kernel=PolynomialKernel(degree=2, coef0=1.0), C=10.0,
            random_state=0,
        )
        model.fit(scaler.transform(X_train), y_train)
        assert model.score(scaler.transform(X_test), y_test) > 0.9


class TestFig7Miniature:
    def test_selection_beats_exhaustive_simulation(self):
        from repro.verification import (
            NoveltyTestSelector,
            Randomizer,
            TestTemplate,
            run_selection_experiment,
        )

        rand = Randomizer(random_state=17)
        programs = list(rand.stream(TestTemplate(), 300))
        selector = NoveltyTestSelector(nu=0.1, seed_count=8)
        result = run_selection_experiment(programs, selector=selector)
        assert result.n_selected < 0.55 * result.n_stream
        assert result.coverage_match_fraction > 0.9


class TestTable1Miniature:
    def test_two_learning_rounds_lift_rare_coverage(self):
        from repro.verification import (
            Randomizer,
            TemplateRefinementFlow,
            TestTemplate,
        )

        flow = TemplateRefinementFlow(Randomizer(random_state=29))
        stages = flow.run(TestTemplate(), stage_sizes=(200, 60, 30))
        original_covered = len(stages[0].covered_points())
        final_covered = len(stages[-1].covered_points())
        assert final_covered >= original_covered + 3


class TestFig9Miniature:
    def test_model_reproduces_simulator_map(self):
        from repro.litho import (
            LayoutGenerator,
            run_variability_experiment,
        )

        generator = LayoutGenerator(random_state=31)
        train = generator.generate(rows=160, cols=160)
        test = generator.generate(rows=160, cols=160)
        report, details = run_variability_experiment(
            train, test, stride=8, random_state=0
        )
        assert report.recall > 0.5
        assert report.auc > 0.75
        # the decision map has the same geometry as the truth map
        assert len(details["predictions"]) == len(details["truth"])


class TestFig10Miniature:
    def test_diagnosis_recovers_injected_mechanism(self):
        from repro.timing import run_dstc_experiment

        result = run_dstc_experiment(n_paths=250, random_state=41)
        assert result.cluster_separation > 0.05
        blamed = set(result.rule_features())
        assert blamed & {"n_via45", "n_via56", "wire_M5"}


class TestFig11Miniature:
    def test_outlier_model_transfers_forward_in_time(self):
        from repro.mfgtest import CustomerReturnStudy

        study = CustomerReturnStudy(random_state=43)
        report = study.run(
            n_train=4000, n_later=4000, n_sister=4000,
            train_defect_rate=0.0015, later_defect_rate=0.0015,
            sister_defect_rate=0.0015,
        )
        assert report.training.return_capture_rate == 1.0
        assert report.later_batch.return_capture_rate > 0.0
        assert report.sister_product.return_capture_rate > 0.0


class TestFig12Miniature:
    def test_data_supported_drop_still_escapes(self):
        from repro.mfgtest import run_drop_study

        result = run_drop_study(
            n_history=60_000, n_future=60_000,
            future_excursion_rate=2e-4, random_state=47,
        )
        # the mining analysis finds nothing wrong with dropping...
        assert all(d.recommended_drop for d in result.decisions)
        assert all(d.n_uncaught_fails == 0 for d in result.decisions)
        # ...and the future produces escapes anyway
        assert result.total_escapes() > 0


class TestKernelAlgorithmSeparation:
    """Fig. 4: the same algorithm runs on vectors, histograms, programs."""

    def test_one_class_svm_on_three_sample_types(self, rng):
        from repro.kernels import (
            HistogramIntersectionKernel,
            SpectrumKernel,
        )

        # vectors
        vector_model = OneClassSVM(kernel=RBFKernel(0.2), nu=0.1)
        vector_model.fit(rng.normal(size=(40, 3)))
        assert vector_model.predict(np.array([[9.0, 9.0, 9.0]]))[0] == -1

        # histograms
        histogram_model = OneClassSVM(
            kernel=HistogramIntersectionKernel(), nu=0.1
        )
        histogram_model.fit(rng.dirichlet(np.ones(5) * 8, size=40))
        spiked = np.array([[0.96, 0.01, 0.01, 0.01, 0.01]])
        assert histogram_model.novelty_score(spiked)[0] > float(
            np.mean(
                histogram_model.novelty_score(
                    rng.dirichlet(np.ones(5) * 8, size=20)
                )
            )
        )

        # programs
        program_model = OneClassSVM(kernel=SpectrumKernel(k=2), nu=0.1)
        program_model.fit([["LD", "ST", "ADD"] * 3 for _ in range(20)])
        assert program_model.is_novel([["MUL", "DIV"] * 4])[0]


class TestSemiSupervisedLitho:
    """Section 2's semi-supervised regime on the litho substrate:
    golden-simulation labels are expensive, unlabeled windows are free.
    A handful of simulated labels plus self-training approaches the
    fully-labeled model."""

    def test_few_labels_plus_self_training(self):
        import numpy as np

        from repro.core.metrics import roc_auc
        from repro.kernels import HistogramIntersectionKernel
        from repro.learn import (
            SVC,
            UNLABELED,
            PlattCalibratedClassifier,
            SelfTrainingClassifier,
        )
        from repro.litho import (
            LayoutGenerator,
            LithographySimulator,
            histogram_feature_matrix,
            window_grid,
        )

        generator = LayoutGenerator(random_state=31)
        train = generator.generate(rows=160, cols=160)
        test = generator.generate(rows=160, cols=160)
        simulator = LithographySimulator()
        train_anchors, train_clips = window_grid(train, 32, 8)
        _, train_labels = simulator.label_windows(
            train, train_anchors, 32
        )
        test_anchors, test_clips = window_grid(test, 32, 8)
        _, test_labels = simulator.label_windows(test, test_anchors, 32)
        H_train = histogram_feature_matrix(train_clips)
        H_test = histogram_feature_matrix(test_clips)

        rng = np.random.default_rng(0)
        n_labeled = 80  # 80 golden simulations instead of ~440
        labeled_idx = rng.choice(len(H_train), n_labeled, replace=False)
        y_semi = np.full(len(H_train), UNLABELED)
        y_semi[labeled_idx] = train_labels[labeled_idx]

        def make_base():
            return PlattCalibratedClassifier(
                SVC(kernel=HistogramIntersectionKernel(), C=20.0,
                    random_state=0),
                random_state=0,
            )

        few = make_base().fit(H_train[labeled_idx],
                              train_labels[labeled_idx])
        semi = SelfTrainingClassifier(
            make_base(), threshold=0.95
        ).fit(H_train, y_semi)
        few_auc = roc_auc(test_labels, few.predict_proba(H_test)[:, 1])
        semi_auc = roc_auc(test_labels, semi.predict_proba(H_test)[:, 1])
        assert semi.n_pseudo_labeled_ > 0
        assert semi_auc > 0.85
        assert semi_auc >= few_auc - 0.06  # never much worse, often better


class TestMethodologyOnFig12:
    """Section 5 + Section 4 together: the checklist flags the
    guaranteed-escape formulation as non-viable before any mining."""

    def test_checklist_gates_the_difficult_case(self):
        from repro.flows import MethodologyChecklist

        checklist = MethodologyChecklist("drop test A with <=1 escape/0.5M")
        checklist.assess(
            "no guaranteed result required", False,
            "zero-escape guarantee cannot follow from finite history",
        )
        checklist.assess("data availability", True, "1M chips logged")
        checklist.assess("added value over existing flow", True,
                         "test-time saving")
        checklist.assess("no extra engineering burden", True, "automated")
        assert not checklist.is_viable()
