"""Tests for cluster-count selection and stability assessment."""

import numpy as np
import pytest

from repro.cluster import (
    KMeans,
    StabilityReport,
    clustering_stability,
    select_n_clusters,
)


@pytest.fixture
def four_blobs(rng):
    return np.vstack(
        [
            rng.normal(c, 0.3, size=(30, 2))
            for c in ((-4, -4), (-4, 4), (4, -4), (4, 4))
        ]
    )


class TestSelectNClusters:
    def test_finds_true_count(self, four_blobs):
        best_k, scores = select_n_clusters(
            four_blobs, candidates=(2, 3, 4, 5, 6), random_state=0
        )
        assert best_k == 4

    def test_scores_reported_for_all_candidates(self, four_blobs):
        _, scores = select_n_clusters(
            four_blobs, candidates=(2, 3, 4), random_state=0
        )
        assert [k for k, _ in scores] == [2, 3, 4]

    def test_custom_factory(self, four_blobs):
        from repro.cluster import AgglomerativeClustering

        best_k, _ = select_n_clusters(
            four_blobs,
            candidates=(2, 4, 6),
            clusterer_factory=lambda k: AgglomerativeClustering(n_clusters=k),
        )
        assert best_k == 4

    def test_rejects_k_below_two(self, four_blobs):
        with pytest.raises(ValueError):
            select_n_clusters(four_blobs, candidates=(1, 2))

    def test_skips_infeasible_counts(self, rng):
        X = rng.normal(size=(5, 2))
        best_k, scores = select_n_clusters(
            X, candidates=(2, 10), random_state=0
        )
        assert best_k == 2
        assert len(scores) == 1


class TestClusteringStability:
    def test_real_structure_is_stable(self, four_blobs):
        report = clustering_stability(
            four_blobs,
            KMeans(n_clusters=4, random_state=0),
            n_resamples=8,
            random_state=1,
        )
        assert report.mean_ari > 0.9
        assert report.is_stable

    def test_structureless_data_is_unstable(self, rng):
        # an isotropic high-dimensional Gaussian has no clusters, so any
        # k-means partition is an artifact of the draw (the paper's
        # non-robust case); note that *low*-dimensional uniform data is
        # NOT a good null here — the optimal quantizer of a square is
        # nearly unique, so k-means looks deceptively stable on it
        X = rng.normal(size=(120, 10))
        report = clustering_stability(
            X,
            KMeans(n_clusters=5, random_state=0, n_init=1),
            n_resamples=8,
            random_state=1,
        )
        assert report.mean_ari < 0.6
        assert not report.is_stable

    def test_stable_beats_unstable(self, four_blobs, rng):
        structured = clustering_stability(
            four_blobs, KMeans(n_clusters=4, random_state=0),
            n_resamples=6, random_state=2,
        )
        noise = clustering_stability(
            rng.normal(size=(120, 10)),
            KMeans(n_clusters=4, random_state=0, n_init=1),
            n_resamples=6, random_state=2,
        )
        assert structured.mean_ari > noise.mean_ari

    def test_pairwise_sample_count(self, four_blobs):
        report = clustering_stability(
            four_blobs, KMeans(n_clusters=4, random_state=0),
            n_resamples=5, random_state=0,
        )
        assert len(report.ari_samples) == 10  # C(5, 2)

    def test_parameter_validation(self, four_blobs):
        model = KMeans(n_clusters=2, random_state=0)
        with pytest.raises(ValueError):
            clustering_stability(four_blobs, model, n_resamples=1)
        with pytest.raises(ValueError):
            clustering_stability(four_blobs, model, sample_fraction=0.01)

    def test_report_dataclass(self):
        report = StabilityReport(mean_ari=0.95, ari_samples=[0.95],
                                 n_resamples=2)
        assert report.is_stable
