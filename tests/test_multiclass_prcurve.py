"""Tests for one-vs-rest multiclass reduction and PR-curve metrics."""

import numpy as np
import pytest

from repro.core.metrics import average_precision, precision_recall_curve
from repro.kernels import RBFKernel
from repro.learn import SVC, LogisticRegression, OneVsRestClassifier


@pytest.fixture
def three_classes(rng):
    X = np.vstack(
        [rng.normal(c, 0.5, size=(40, 2)) for c in (-3.0, 0.0, 3.0)]
    )
    y = np.repeat(["slow", "typical", "fast"], 40)
    return X, y


class TestOneVsRest:
    def test_multiclass_svm(self, three_classes):
        X, y = three_classes
        model = OneVsRestClassifier(
            SVC(kernel=RBFKernel(0.5), C=5.0, random_state=0)
        ).fit(X, y)
        assert model.score(X, y) > 0.95
        assert set(model.predict(X)) <= {"slow", "typical", "fast"}

    def test_multiclass_logistic(self, three_classes):
        X, y = three_classes
        model = OneVsRestClassifier(
            LogisticRegression(max_iter=400)
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_one_estimator_per_class(self, three_classes):
        X, y = three_classes
        model = OneVsRestClassifier(
            LogisticRegression(max_iter=100)
        ).fit(X, y)
        assert len(model.estimators_) == 3

    def test_decision_matrix_shape(self, three_classes):
        X, y = three_classes
        model = OneVsRestClassifier(
            LogisticRegression(max_iter=100)
        ).fit(X, y)
        assert model.decision_matrix(X).shape == (len(X), 3)

    def test_predict_proba_rows_sum_to_one(self, three_classes):
        X, y = three_classes
        model = OneVsRestClassifier(
            LogisticRegression(max_iter=100)
        ).fit(X, y)
        np.testing.assert_allclose(
            model.predict_proba(X).sum(axis=1), 1.0, atol=1e-9
        )

    def test_rejects_single_class(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            OneVsRestClassifier(LogisticRegression()).fit(X, np.zeros(10))

    def test_base_prototype_untouched(self, three_classes):
        X, y = three_classes
        base = LogisticRegression(max_iter=100)
        OneVsRestClassifier(base).fit(X, y)
        assert not hasattr(base, "coef_")


class TestPrecisionRecallCurve:
    def test_perfect_ranking(self):
        labels = [1, 1, 0, 0]
        scores = [0.9, 0.8, 0.2, 0.1]
        precision, recall, _ = precision_recall_curve(labels, scores)
        assert recall[-1] == 1.0
        assert np.all(precision >= 0.99)
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_worst_ranking(self):
        labels = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1]
        scores = np.linspace(1.0, 0.1, 10)  # positives ranked last
        ap = average_precision(labels, scores)
        assert ap < 0.25

    def test_random_scores_ap_near_prevalence(self, rng):
        labels = (rng.uniform(size=4000) < 0.1).astype(int)
        scores = rng.uniform(size=4000)
        ap = average_precision(labels, scores)
        assert ap == pytest.approx(0.1, abs=0.04)

    def test_recall_monotone(self, rng):
        labels = rng.integers(0, 2, size=200)
        scores = rng.uniform(size=200)
        _, recall, _ = precision_recall_curve(labels, scores)
        assert np.all(np.diff(recall) >= 0)

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            precision_recall_curve([0, 0], [0.1, 0.2])

    def test_ap_flags_what_roc_hides(self, rng):
        """With 1% positives, a mediocre ranker can have high ROC-AUC
        but visibly poor average precision — the reason screening flows
        report AP."""
        from repro.core.metrics import roc_auc

        n = 5000
        labels = (rng.uniform(size=n) < 0.01).astype(int)
        # noisy scores: positives shifted by 1.5 sigma only
        scores = rng.normal(0, 1, size=n) + 1.5 * labels
        auc_value = roc_auc(labels, scores)
        ap_value = average_precision(labels, scores)
        assert auc_value > 0.8
        assert ap_value < 0.5
