"""Tests for the Pipeline utility."""

import numpy as np
import pytest

from repro.core import NotFittedError, Pipeline, StandardScaler
from repro.core.validation import cross_val_score
from repro.learn import SVC, LogisticRegression, SelectKBest
from repro.kernels import RBFKernel
from repro.transform import PCA


class TestPipelineBasics:
    def test_scale_then_classify(self, blobs):
        X, y = blobs
        X_scaled_away = X * np.array([1e-6, 1e6])  # pathological scales
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("svm", SVC(kernel=RBFKernel(0.5), random_state=0)),
            ]
        )
        pipeline.fit(X_scaled_away, y)
        assert pipeline.score(X_scaled_away, y) > 0.95

    def test_transformers_see_transformed_data(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("pca", PCA(n_components=1)),
                ("clf", LogisticRegression(max_iter=400)),
            ]
        )
        pipeline.fit(X, y)
        # the chain's transform is 1-D after PCA
        assert pipeline.fitted_steps_[1][1].components_.shape == (1, 2)

    def test_supervised_transformer_receives_y(self, rng):
        X = rng.normal(size=(150, 6))
        y = (X[:, 4] > 0).astype(int)
        pipeline = Pipeline(
            [
                ("select", SelectKBest(k=1)),
                ("clf", LogisticRegression(max_iter=400)),
            ]
        )
        pipeline.fit(X, y)
        assert pipeline.fitted_steps_[0][1].selected_indices_[0] == 4
        assert pipeline.score(X, y) > 0.9

    def test_predict_before_fit_raises(self, blobs):
        X, _ = blobs
        pipeline = Pipeline([("scale", StandardScaler())])
        with pytest.raises(NotFittedError):
            pipeline.transform(X)

    def test_unique_step_names_required(self):
        with pytest.raises(ValueError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_named_steps_access(self, blobs):
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression())]
        )
        assert isinstance(pipeline.named_steps["scale"], StandardScaler)


class TestPipelineParams:
    def _pipeline(self):
        return Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression(max_iter=100))]
        )

    def test_deep_params_reach_into_steps(self):
        params = self._pipeline().get_params(deep=True)
        assert params["clf__max_iter"] == 100
        assert isinstance(params["scale"], StandardScaler)

    def test_set_step_param_by_nested_name(self):
        pipeline = self._pipeline()
        pipeline.set_params(clf__max_iter=250)
        assert pipeline.named_steps.clf.max_iter == 250

    def test_set_doubly_nested_kernel_param(self):
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("svc", SVC(kernel=RBFKernel(0.5), random_state=0))]
        )
        pipeline.set_params(svc__kernel__gamma=4.0)
        assert pipeline.named_steps.svc.kernel.gamma == 4.0

    def test_replace_whole_step(self):
        pipeline = self._pipeline()
        replacement = LogisticRegression(max_iter=999)
        pipeline.set_params(clf=replacement)
        assert pipeline.named_steps.clf is replacement
        assert [name for name, _ in pipeline.steps] == ["scale", "clf"]

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            self._pipeline().set_params(missing=1)

    def test_named_steps_attribute_access(self):
        pipeline = self._pipeline()
        assert isinstance(pipeline.named_steps.scale, StandardScaler)
        with pytest.raises(AttributeError, match="no step named"):
            pipeline.named_steps.nope

    def test_clone_roundtrip(self):
        from repro.core import clone

        pipeline = self._pipeline()
        copy = clone(pipeline)
        assert copy == pipeline
        assert copy.named_steps.clf is not pipeline.named_steps.clf


class TestPipelinePassthrough:
    def test_predict_proba_and_decision_function(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression(max_iter=300))]
        ).fit(X, y)
        proba = pipeline.predict_proba(X)
        X_scaled = pipeline.fitted_steps_[0][1].transform(X)
        np.testing.assert_array_equal(
            proba, pipeline.final_estimator_.predict_proba(X_scaled)
        )
        assert np.all((proba >= 0) & (proba <= 1))
        assert pipeline.decision_function(X).shape == (len(X),)

    def test_fit_predict_with_clusterer_final_step(self, blobs):
        from repro.cluster import KMeans

        X, _ = blobs
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("km", KMeans(n_clusters=2, random_state=0))]
        )
        labels = pipeline.fit_predict(X)
        assert labels.shape == (len(X),)
        np.testing.assert_array_equal(
            labels, pipeline.final_estimator_.labels_
        )

    def test_fit_predict_with_classifier_final_step(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression(max_iter=300))]
        )
        labels = pipeline.fit_predict(X, y)
        np.testing.assert_array_equal(labels, pipeline.predict(X))

    def test_fit_transform(self, blobs):
        X, _ = blobs
        pipeline = Pipeline(
            [("scale", StandardScaler()), ("pca", PCA(n_components=1))]
        )
        out = pipeline.fit_transform(X)
        assert out.shape == (len(X), 1)
        np.testing.assert_allclose(out, pipeline.transform(X))

    def test_passthrough_before_fit_raises(self, blobs):
        X, _ = blobs
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression())]
        )
        for method in ("predict", "predict_proba", "decision_function",
                       "score"):
            with pytest.raises(NotFittedError):
                if method == "score":
                    pipeline.score(X, np.zeros(len(X)))
                else:
                    getattr(pipeline, method)(X)


class TestPipelineInModelSelection:
    def test_cross_validation_treats_pipeline_as_estimator(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("clf", LogisticRegression(max_iter=300)),
            ]
        )
        scores = cross_val_score(pipeline, X, y)
        assert scores.mean() > 0.9

    def test_prototype_steps_never_mutated(self, blobs):
        X, y = blobs
        scaler = StandardScaler()
        pipeline = Pipeline(
            [("scale", scaler), ("clf", LogisticRegression(max_iter=200))]
        )
        pipeline.fit(X, y)
        # the prototype passed in stays unfitted (clone semantics)
        assert not hasattr(scaler, "mean_")
