"""Tests for the Pipeline utility."""

import numpy as np
import pytest

from repro.core import NotFittedError, Pipeline, StandardScaler
from repro.core.validation import cross_val_score
from repro.learn import SVC, LogisticRegression, SelectKBest
from repro.kernels import RBFKernel
from repro.transform import PCA


class TestPipelineBasics:
    def test_scale_then_classify(self, blobs):
        X, y = blobs
        X_scaled_away = X * np.array([1e-6, 1e6])  # pathological scales
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("svm", SVC(kernel=RBFKernel(0.5), random_state=0)),
            ]
        )
        pipeline.fit(X_scaled_away, y)
        assert pipeline.score(X_scaled_away, y) > 0.95

    def test_transformers_see_transformed_data(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("pca", PCA(n_components=1)),
                ("clf", LogisticRegression(max_iter=400)),
            ]
        )
        pipeline.fit(X, y)
        # the chain's transform is 1-D after PCA
        assert pipeline.fitted_steps_[1][1].components_.shape == (1, 2)

    def test_supervised_transformer_receives_y(self, rng):
        X = rng.normal(size=(150, 6))
        y = (X[:, 4] > 0).astype(int)
        pipeline = Pipeline(
            [
                ("select", SelectKBest(k=1)),
                ("clf", LogisticRegression(max_iter=400)),
            ]
        )
        pipeline.fit(X, y)
        assert pipeline.fitted_steps_[0][1].selected_indices_[0] == 4
        assert pipeline.score(X, y) > 0.9

    def test_predict_before_fit_raises(self, blobs):
        X, _ = blobs
        pipeline = Pipeline([("scale", StandardScaler())])
        with pytest.raises(NotFittedError):
            pipeline.transform(X)

    def test_unique_step_names_required(self):
        with pytest.raises(ValueError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_named_steps_access(self, blobs):
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression())]
        )
        assert isinstance(pipeline.named_steps["scale"], StandardScaler)


class TestPipelineInModelSelection:
    def test_cross_validation_treats_pipeline_as_estimator(self, blobs):
        X, y = blobs
        pipeline = Pipeline(
            [
                ("scale", StandardScaler()),
                ("clf", LogisticRegression(max_iter=300)),
            ]
        )
        scores = cross_val_score(pipeline, X, y)
        assert scores.mean() > 0.9

    def test_prototype_steps_never_mutated(self, blobs):
        X, y = blobs
        scaler = StandardScaler()
        pipeline = Pipeline(
            [("scale", scaler), ("clf", LogisticRegression(max_iter=200))]
        )
        pipeline.fit(X, y)
        # the prototype passed in stays unfitted (clone semantics)
        assert not hasattr(scaler, "mean_")
