"""Targeted regressions for the bugs the conformance harness surfaced.

Each test pins one concrete fix so the matrix in
``test_conformance.py`` can evolve without losing the record of what
actually broke: silent NaN acceptance in the kernel consumers,
zero-feature X acceptance everywhere, layout-dependent results,
1-D probability output, single-class classifiers, imputer inf
acceptance, and a caller-matrix mutation in spectral clustering.
"""

import numpy as np
import pytest

from repro.cluster import SpectralClustering
from repro.core.base import DataShapeError, as_2d_array, as_kernel_samples
from repro.core.preprocessing import SimpleImputer, StandardScaler
from repro.kernels import RBFKernel, SpectrumKernel
from repro.learn import (
    SVC,
    SVR,
    DecisionTreeClassifier,
    GaussianProcessRegressor,
    KernelRidgeRegressor,
    KNeighborsClassifier,
    LogisticRegression,
    OneClassSVM,
    RandomForestClassifier,
)
from repro.transform import KernelPCA

pytestmark = pytest.mark.conformance


@pytest.fixture()
def xy():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(30, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


def _with_nan(X):
    bad = np.array(X, copy=True)
    bad[2, 1] = np.nan
    return bad


class TestValidationHelpers:
    def test_as_2d_array_rejects_zero_features(self):
        with pytest.raises(DataShapeError, match="no features"):
            as_2d_array(np.empty((5, 0)))

    def test_as_2d_array_normalizes_layout(self):
        X = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        out = as_2d_array(X)
        assert out.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(out, X)

    def test_as_kernel_samples_screens_numeric_input(self):
        with pytest.raises(DataShapeError, match="NaN"):
            as_kernel_samples(_with_nan(np.ones((4, 2))))
        with pytest.raises(DataShapeError, match="no samples"):
            as_kernel_samples(np.empty((0, 2)))

    def test_as_kernel_samples_keeps_indices_1d(self):
        indices = np.arange(6)
        out = as_kernel_samples(indices)
        assert out.ndim == 1 and out.dtype == indices.dtype

    def test_as_kernel_samples_passes_structured_samples_through(self):
        programs = [["LD", "ST"], ["ADD"], ["MUL", "SYNC", "LD"]]
        assert as_kernel_samples(programs) is programs
        with pytest.raises(DataShapeError, match="no samples"):
            as_kernel_samples([])


class TestKernelConsumersRejectNaN:
    """The original bug: kernel estimators skipped X validation entirely,
    so NaN flowed straight into the Gram matrix."""

    def test_svc(self, xy):
        X, y = xy
        with pytest.raises(ValueError, match="NaN"):
            SVC(kernel=RBFKernel(gamma=0.5)).fit(_with_nan(X), y)
        model = SVC(kernel=RBFKernel(gamma=0.5), random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="NaN"):
            model.predict(_with_nan(X))

    def test_svr(self, xy):
        X, y = xy
        with pytest.raises(ValueError, match="NaN"):
            SVR(kernel=RBFKernel(gamma=0.5)).fit(_with_nan(X), y.astype(float))
        model = SVR(kernel=RBFKernel(gamma=0.5), max_iter=20).fit(
            X, y.astype(float)
        )
        with pytest.raises(ValueError, match="NaN"):
            model.predict(_with_nan(X))

    def test_one_class_svm(self, xy):
        X, _ = xy
        with pytest.raises(ValueError, match="NaN"):
            OneClassSVM(kernel=RBFKernel(gamma=0.5)).fit(_with_nan(X))
        model = OneClassSVM(kernel=RBFKernel(gamma=0.5), nu=0.2).fit(X)
        with pytest.raises(ValueError, match="NaN"):
            model.decision_function(_with_nan(X))

    def test_gaussian_process(self, xy):
        X, y = xy
        with pytest.raises(ValueError, match="NaN"):
            GaussianProcessRegressor(kernel=RBFKernel(gamma=0.5)).fit(
                _with_nan(X), y.astype(float)
            )
        model = GaussianProcessRegressor(kernel=RBFKernel(gamma=0.5)).fit(
            X, y.astype(float)
        )
        with pytest.raises(ValueError, match="NaN"):
            model.predict(_with_nan(X))

    def test_kernel_ridge(self, xy):
        X, y = xy
        with pytest.raises(ValueError, match="NaN"):
            KernelRidgeRegressor(kernel=RBFKernel(gamma=0.5)).fit(
                _with_nan(X), y.astype(float)
            )
        model = KernelRidgeRegressor(kernel=RBFKernel(gamma=0.5)).fit(
            X, y.astype(float)
        )
        with pytest.raises(ValueError, match="NaN"):
            model.predict(_with_nan(X))

    def test_kernel_pca(self, xy):
        X, _ = xy
        with pytest.raises(ValueError, match="NaN"):
            KernelPCA(kernel=RBFKernel(gamma=0.5)).fit(_with_nan(X))
        model = KernelPCA(kernel=RBFKernel(gamma=0.5), n_components=2).fit(X)
        with pytest.raises(ValueError, match="NaN"):
            model.transform(_with_nan(X))

    def test_structured_samples_still_work(self):
        """Validation must not break non-vector samples (the reason the
        kernel consumers skipped as_2d_array in the first place)."""
        programs = [
            ["LD", "ST", "ADD"], ["LD", "MUL"], ["SYNC", "LD", "ST"],
            ["ADD", "ADD"], ["MUL", "SYNC"], ["ST", "LD", "LD"],
        ]
        y = np.array([0.0, 1.0, 0.0, 1.0, 1.0, 0.0])
        model = KernelRidgeRegressor(
            kernel=SpectrumKernel(k=2), alpha=0.1
        ).fit(programs, y)
        assert np.all(np.isfinite(model.predict(programs)))


class TestLogisticProbabilityContract:
    def test_predict_proba_is_two_column(self, xy):
        X, y = xy
        model = LogisticRegression(max_iter=100).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)

    def test_predict_matches_argmax_of_proba(self, xy):
        X, y = xy
        model = LogisticRegression(max_iter=100).fit(X, y)
        proba = model.predict_proba(X)
        expected = model.classes_[(proba[:, 1] >= 0.5).astype(int)]
        np.testing.assert_array_equal(model.predict(X), expected)


class TestSingleClassRejection:
    def test_knn_classifier(self, xy):
        X, _ = xy
        with pytest.raises(ValueError, match="two classes"):
            KNeighborsClassifier(n_neighbors=3).fit(X, np.zeros(len(X)))

    def test_random_forest_classifier(self, xy):
        X, _ = xy
        with pytest.raises(ValueError, match="two classes"):
            RandomForestClassifier(n_estimators=3, random_state=0).fit(
                X, np.ones(len(X))
            )

    def test_decision_tree_still_accepts_single_class(self, xy):
        """The waiver's rationale: forests hand their member trees
        bootstrap resamples that can collapse to one class."""
        X, _ = xy
        y = np.ones(len(X), dtype=int)
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)


class TestImputerValidation:
    def test_rejects_inf(self):
        X = np.ones((6, 2))
        X[1, 0] = np.inf
        with pytest.raises(ValueError, match="infinite"):
            SimpleImputer().fit(X)

    def test_still_accepts_nan(self):
        X = np.ones((6, 2))
        X[1, 0] = np.nan
        filled = SimpleImputer().fit(X).transform(X)
        assert np.all(np.isfinite(filled))
        assert filled[1, 0] == 1.0


class TestSpectralPrecomputedAffinity:
    def test_fit_does_not_mutate_callers_matrix(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(12, 2))
        distances = np.linalg.norm(X[:, None] - X[None, :], axis=-1)
        affinity = np.exp(-(distances ** 2))
        before = affinity.copy()
        SpectralClustering(
            n_clusters=2, affinity="precomputed", random_state=0
        ).fit(affinity)
        np.testing.assert_array_equal(affinity, before)

    def test_rejects_non_finite_affinity(self):
        affinity = np.eye(4)
        affinity[0, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            SpectralClustering(
                n_clusters=2, affinity="precomputed"
            ).fit(affinity)


class TestLayoutIndependence:
    def test_scaler_is_bitwise_identical_across_layouts(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(25, 4))
        c_order = StandardScaler().fit(X).transform(X)
        f_order = StandardScaler().fit(np.asfortranarray(X)).transform(X)
        np.testing.assert_array_equal(c_order, f_order)
