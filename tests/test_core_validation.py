"""Tests for model selection: splits, CV, grid search, Fig. 5 curves."""

import numpy as np
import pytest

from repro.core import (
    KFold,
    StratifiedKFold,
    complexity_curve,
    cross_val_score,
    grid_search,
    train_test_split,
)
from repro.learn import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    RidgeRegressor,
)


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        X_tr, X_te, y_tr, y_te = train_test_split(
            X, y, test_fraction=0.25, random_state=0
        )
        assert len(X_te) == 20
        assert len(X_tr) == 60
        assert len(X_tr) == len(y_tr)

    def test_unsupervised_form(self, blobs):
        X, _ = blobs
        X_tr, X_te = train_test_split(X, test_fraction=0.5, random_state=0)
        assert len(X_tr) + len(X_te) == len(X)

    def test_disjoint(self, blobs):
        X, y = blobs
        X_tr, X_te, *_ = train_test_split(X, y, random_state=3)
        train_rows = {tuple(row) for row in X_tr}
        test_rows = {tuple(row) for row in X_te}
        assert not train_rows & test_rows

    def test_rejects_bad_fraction(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=0.0)


class TestKFold:
    def test_covers_all_indices_once(self):
        folds = list(KFold(n_splits=4).split(np.zeros(10)))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(10))

    def test_train_test_disjoint_per_fold(self):
        for train, test in KFold(n_splits=3).split(np.zeros(9)):
            assert not set(train) & set(test)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros(3)))

    def test_shuffle_is_seeded(self):
        a = [t.tolist() for _, t in
             KFold(3, shuffle=True, random_state=1).split(np.zeros(9))]
        b = [t.tolist() for _, t in
             KFold(3, shuffle=True, random_state=1).split(np.zeros(9))]
        assert a == b


class TestStratifiedKFold:
    def test_preserves_class_ratio(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test in StratifiedKFold(n_splits=5).split(np.zeros(50), y):
            labels = y[test]
            assert np.sum(labels == 1) == 2

    def test_rejects_n_splits_one(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)


class TestCrossValScore:
    def test_scores_high_on_separable_data(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            KNeighborsClassifier(n_neighbors=3), X, y, cv=KFold(4, shuffle=True, random_state=0)
        )
        assert len(scores) == 4
        assert scores.mean() > 0.9

    def test_custom_scorer(self, linear_regression_data):
        X, y = linear_regression_data
        scores = cross_val_score(
            RidgeRegressor(alpha=1e-6),
            X,
            y,
            scorer=lambda t, p: -float(np.mean(np.abs(t - p))),
        )
        assert np.all(scores <= 0)
        assert scores.mean() > -0.1


class TestComplexityCurve:
    def test_depth_sweep_shows_fig5_shape(self, rng):
        # noisy labels: deep trees memorize noise -> validation error rises
        X = rng.uniform(-1, 1, size=(300, 2))
        y = (X[:, 0] > 0).astype(int)
        flip = rng.uniform(size=300) < 0.25
        y_noisy = np.where(flip, 1 - y, y)
        X_val = rng.uniform(-1, 1, size=(200, 2))
        y_val = (X_val[:, 0] > 0).astype(int)
        curve = complexity_curve(
            lambda: DecisionTreeClassifier(random_state=0),
            "max_depth",
            [1, 3, 6, 10, 14],
            X,
            y_noisy,
            X_val,
            y_val,
        )
        # training error decreases monotonically with capacity
        assert curve.train_errors[-1] <= curve.train_errors[0]
        # validation error is minimized at low complexity
        assert curve.best_value() <= 6
        assert curve.overfitting_detected()

    def test_rows_align(self, blobs):
        X, y = blobs
        curve = complexity_curve(
            lambda: KNeighborsClassifier(),
            "n_neighbors",
            [1, 5],
            X, y, X, y,
        )
        rows = curve.rows()
        assert len(rows) == 2
        assert rows[0][0] == 1


class TestGridSearch:
    def test_finds_reasonable_k(self, blobs):
        X, y = blobs
        best_params, best_score, results = grid_search(
            KNeighborsClassifier(),
            {"n_neighbors": [1, 3, 5], "weights": ["uniform", "distance"]},
            X,
            y,
            cv=KFold(4, shuffle=True, random_state=0),
        )
        assert best_score > 0.9
        assert len(results) == 6
        assert best_params["n_neighbors"] in (1, 3, 5)
