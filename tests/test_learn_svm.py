"""Tests for the SMO kernel SVM (Section 2.3, Eq. 2)."""

import numpy as np
import pytest

from repro.kernels import GramEngine, LinearKernel, PolynomialKernel, RBFKernel
from repro.learn import SVC


class TestSVCBasics:
    def test_separates_blobs(self, blobs):
        X, y = blobs
        model = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_linear_kernel_fails_on_rings(self, rings):
        X, y = rings
        model = SVC(kernel=LinearKernel(), C=1.0, random_state=0).fit(X, y)
        assert model.score(X, y) < 0.75  # not linearly separable (Fig. 3)

    def test_degree2_kernel_separates_rings(self, rings):
        # the paper's kernel-trick demonstration
        X, y = rings
        model = SVC(
            kernel=PolynomialKernel(degree=2, coef0=1.0), C=10.0,
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_sparsity_most_alphas_zero(self, blobs):
        X, y = blobs
        model = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0).fit(X, y)
        assert model.n_support_ < len(X) // 2

    def test_model_is_eq2_form(self, blobs):
        # prediction = sum_i alpha_i y_i k(x, x_i) + b over support vectors
        X, y = blobs
        model = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0).fit(X, y)
        x_new = X[0]
        manual = model.intercept_ + sum(
            coefficient * model.kernel_(x_new, sv)
            for coefficient, sv in zip(
                model.dual_coef_, model.support_vectors_
            )
        )
        assert model.decision_function([x_new])[0] == pytest.approx(manual)

    def test_decision_sign_matches_predict(self, blobs):
        X, y = blobs
        model = SVC(kernel=RBFKernel(0.5), random_state=0).fit(X, y)
        scores = model.decision_function(X)
        predicted = model.predict(X)
        assert np.all((scores >= 0) == (predicted == model.classes_[1]))

    def test_arbitrary_labels(self, blobs):
        X, y = blobs
        labels = np.where(y == 0, "good", "bad")
        model = SVC(kernel=RBFKernel(0.5), random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"good", "bad"}

    def test_rejects_multiclass(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.integers(0, 3, size=30)
        with pytest.raises(ValueError, match="binary"):
            SVC().fit(X, y)

    def test_rejects_nonpositive_C(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            SVC(C=0.0).fit(X, y)


class TestRegularization:
    def test_complexity_grows_with_C(self, rng):
        # overlapping classes: small C = simpler model (Section 2.3)
        X = np.vstack(
            [rng.normal(-0.5, 1.0, size=(60, 2)),
             rng.normal(0.5, 1.0, size=(60, 2))]
        )
        y = np.repeat([0, 1], 60)
        loose = SVC(kernel=RBFKernel(0.5), C=0.01, random_state=0).fit(X, y)
        tight = SVC(kernel=RBFKernel(0.5), C=100.0, random_state=0).fit(X, y)
        assert tight.model_complexity() >= loose.model_complexity() * 0.9

    def test_small_C_generalizes_on_noisy_labels(self, rng):
        X = np.vstack(
            [rng.normal(-2, 0.8, size=(80, 2)),
             rng.normal(2, 0.8, size=(80, 2))]
        )
        y = np.repeat([0, 1], 80)
        flip = rng.uniform(size=160) < 0.15
        y_noisy = np.where(flip, 1 - y, y)
        X_val = np.vstack(
            [rng.normal(-2, 0.8, size=(100, 2)),
             rng.normal(2, 0.8, size=(100, 2))]
        )
        y_val = np.repeat([0, 1], 100)
        gentle = SVC(kernel=RBFKernel(2.0), C=0.5, random_state=0)
        harsh = SVC(kernel=RBFKernel(2.0), C=500.0, random_state=0)
        gentle.fit(X, y_noisy)
        harsh.fit(X, y_noisy)
        assert gentle.score(X_val, y_val) >= harsh.score(X_val, y_val) - 0.02


class TestKernelPluggability:
    def test_accepts_histogram_kernel(self, rng):
        from repro.kernels import HistogramIntersectionKernel

        H = np.vstack(
            [
                rng.dirichlet(np.ones(6) * 5.0, size=30),
                rng.dirichlet(np.array([10, 1, 1, 1, 1, 10.0]), size=30),
            ]
        )
        y = np.repeat([0, 1], 30)
        model = SVC(
            kernel=HistogramIntersectionKernel(), C=5.0, random_state=0
        ).fit(H, y)
        assert model.score(H, y) > 0.8

    def test_accepts_sequence_kernel(self):
        from repro.kernels import SpectrumKernel

        programs = [["LD", "ST"] * 6 for _ in range(10)] + [
            ["MUL", "DIV"] * 6 for _ in range(10)
        ]
        y = np.repeat([0, 1], 10)
        model = SVC(
            kernel=SpectrumKernel(k=2), C=1.0, random_state=0
        ).fit(programs, y)
        assert model.score(programs, y) == 1.0


class TestGramEngineRegression:
    """Engine-backed fits must reproduce the seed implementation, which
    computed ``K = kernel.matrix(X)`` directly."""

    def test_engine_gram_bitwise_matches_seed_path(self, blobs):
        X, _ = blobs
        kernel = RBFKernel(0.5)
        # the seed's K was kernel.matrix(X); a single-block engine call
        # must reproduce it bitwise
        assert np.array_equal(GramEngine().gram(kernel, X), kernel.matrix(X))

    def test_fixed_seed_fit_predict_golden(self, blobs):
        X, y = blobs
        # seed-path reference: no cache, whole-matrix block → fit sees
        # exactly the K the seed implementation saw
        seed_path = SVC(
            kernel=RBFKernel(0.5), C=1.0, random_state=0,
            engine=GramEngine(block_size=4096, cache_bytes=0),
        ).fit(X, y)
        engine_backed = SVC(
            kernel=RBFKernel(0.5), C=1.0, random_state=0,
            engine=GramEngine(),
        ).fit(X, y)
        np.testing.assert_array_equal(
            seed_path.support_indices_, engine_backed.support_indices_
        )
        np.testing.assert_array_equal(
            seed_path.dual_coef_, engine_backed.dual_coef_
        )
        assert seed_path.intercept_ == engine_backed.intercept_
        np.testing.assert_array_equal(
            seed_path.decision_function(X), engine_backed.decision_function(X)
        )
        np.testing.assert_array_equal(
            seed_path.predict(X), engine_backed.predict(X)
        )

    def test_cached_refit_is_bitwise_deterministic(self, blobs):
        X, y = blobs
        engine = GramEngine()
        first = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0,
                    engine=engine).fit(X, y)
        hits_before = engine.counters.cache_hits
        second = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0,
                     engine=engine).fit(X, y)
        assert engine.counters.cache_hits > hits_before
        np.testing.assert_array_equal(first.alpha_, second.alpha_)
        np.testing.assert_array_equal(
            first.decision_function(X), second.decision_function(X)
        )

    def test_blocked_fit_matches_whole_matrix_fit(self, blobs):
        X, y = blobs
        whole = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0,
                    engine=GramEngine(block_size=4096)).fit(X, y)
        blocked = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0,
                      engine=GramEngine(block_size=16)).fit(X, y)
        np.testing.assert_array_equal(whole.predict(X), blocked.predict(X))
        np.testing.assert_allclose(
            whole.decision_function(X), blocked.decision_function(X),
            atol=1e-8,
        )

    def test_grid_search_over_C_shares_gram_blocks(self, blobs):
        X, y = blobs
        engine = GramEngine()
        for C in (0.1, 1.0, 10.0):
            SVC(kernel=RBFKernel(0.5), C=C, random_state=0,
                engine=engine).fit(X, y)
        # one symmetric block computed, reused by the other two fits
        assert engine.counters.cache_misses == 1
        assert engine.counters.cache_hits == 2
