"""Tests for distributed sharded execution (repro.core.shard).

Three layers, matching the protocol's guarantees:

- *partitioning properties* (hypothesis): every task lands in exactly
  one shard for any (n_tasks, n_shards), and the assignment is stable
  under task-list permutation because it keys on content fingerprints;
- *lease protocol*: atomic acquisition, heartbeat renewal, staleness,
  and single-winner takeover;
- *bitwise equivalence acceptance*: raw ``map``, ``GridSearchCV``,
  ``run_conformance``, and the closure campaign produce identical
  results on serial, 1-worker-sharded, and 4-worker-sharded runs — and
  after the driver is SIGKILLed mid-run and the run resumed.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GridSearchCV,
    KFold,
    LeaseFile,
    SerialBackend,
    ShardError,
    ShardedBackend,
    fingerprint,
    get_backend,
)
from repro.core.shard import (
    ShardRun,
    create_run,
    partition_tasks,
    run_worker,
    shard_of_key,
    task_keys,
)
from repro.learn import LogisticRegression
from repro.testing import run_conformance
from repro.verification import run_campaign

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


# module-level task functions so worker processes can pickle them
def square(x):
    return x * x


def tupled_draw(x, seed):
    """Returns a tuple with a seeded draw: exercises both exact
    container round-tripping and per-task seed assignment."""
    return (x, int(np.random.default_rng(seed).integers(0, 10**9)))


def array_task(x):
    return np.arange(5, dtype=np.float64) * x


def fail_on(payload):
    if payload == "bad":
        raise ValueError("injected failure")
    return payload


def slow_square(x):
    time.sleep(0.2)
    return x * x


# ---------------------------------------------------------------------
# partitioning properties
# ---------------------------------------------------------------------

class TestPartitioningProperties:
    @given(
        n_tasks=st.integers(min_value=0, max_value=80),
        n_shards=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_task_assigned_exactly_once(self, n_tasks, n_shards):
        keys = [fingerprint("shard-task", square, i, None)
                for i in range(n_tasks)]
        shards = partition_tasks(keys, n_shards)
        assigned = sorted(i for ids in shards.values() for i in ids)
        assert assigned == list(range(n_tasks))
        assert all(0 <= s < n_shards for s in shards)
        # no empty shards are materialized
        assert all(ids for ids in shards.values())

    @given(
        payloads=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1, max_size=40, unique=True,
        ),
        n_shards=st.integers(min_value=1, max_value=16),
        seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_stable_under_permutation(self, payloads, n_shards,
                                                 seed):
        keys = task_keys(square, payloads, [None] * len(payloads))
        by_payload = {
            payload: shard_of_key(key, n_shards)
            for payload, key in zip(payloads, keys)
        }
        shuffled = list(payloads)
        seed.shuffle(shuffled)
        keys2 = task_keys(square, shuffled, [None] * len(shuffled))
        for payload, key in zip(shuffled, keys2):
            assert shard_of_key(key, n_shards) == by_payload[payload]

    @given(n_shards=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_shard_of_key_in_range(self, n_shards):
        key = fingerprint("shard-task", square, 42, None)
        assert 0 <= shard_of_key(key, n_shards) < n_shards

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of_key("ab", 0)

    def test_keys_depend_on_fn_payload_and_seed(self):
        base = task_keys(square, [1], [None])[0]
        assert task_keys(square, [2], [None])[0] != base
        assert task_keys(array_task, [1], [None])[0] != base
        assert task_keys(square, [1], [7])[0] != base
        # and are reproducible
        assert task_keys(square, [1], [None])[0] == base


# ---------------------------------------------------------------------
# the lease protocol
# ---------------------------------------------------------------------

class TestLeaseProtocol:
    def test_acquire_is_exclusive(self, tmp_path):
        path = str(tmp_path / "s.lease")
        a = LeaseFile(path, owner="a", ttl=30.0)
        b = LeaseFile(path, owner="b", ttl=30.0)
        assert a.acquire()
        assert not b.acquire()
        assert a.held() and not b.held()

    def test_renew_keeps_ownership_and_detects_loss(self, tmp_path):
        path = str(tmp_path / "s.lease")
        a = LeaseFile(path, owner="a", ttl=0.05)
        assert a.acquire()
        assert a.renew()
        time.sleep(0.1)  # heartbeat goes stale
        thief = LeaseFile(path, owner="thief", ttl=0.05)
        assert thief.steal()
        assert not a.renew()  # the original owner must notice
        assert thief.held()

    def test_steal_refuses_fresh_lease(self, tmp_path):
        path = str(tmp_path / "s.lease")
        a = LeaseFile(path, owner="a", ttl=30.0)
        assert a.acquire()
        assert not LeaseFile(path, owner="b", ttl=30.0).steal()

    def test_release_then_reacquire(self, tmp_path):
        path = str(tmp_path / "s.lease")
        a = LeaseFile(path, owner="a", ttl=30.0)
        assert a.acquire()
        assert a.release()
        assert LeaseFile(path, owner="b", ttl=30.0).acquire()

    def test_missing_lease_is_unclaimed_not_stale(self, tmp_path):
        lease = LeaseFile(str(tmp_path / "no.lease"), owner="x", ttl=1.0)
        assert lease.read() is None
        assert not lease.is_stale()  # absent = unclaimed, not stale
        assert not lease.steal()  # nothing to steal ...
        assert not lease.held()
        assert lease.acquire()  # ... acquire is the claim path


# ---------------------------------------------------------------------
# bitwise equivalence: serial vs sharded(1) vs sharded(4)
# ---------------------------------------------------------------------

def _sharded(tmp_path, n_workers, **kwargs):
    kwargs.setdefault("lease_ttl", 5.0)
    kwargs.setdefault("root", str(tmp_path / f"shard-root-{n_workers}"))
    return ShardedBackend(n_workers=n_workers, **kwargs)


class TestMapEquivalence:
    def test_plain_map_matches_serial(self, tmp_path):
        payloads = list(range(17))
        expected = SerialBackend().map(square, payloads)
        assert _sharded(tmp_path, 1).map(square, payloads) == expected
        assert _sharded(tmp_path, 4).map(square, payloads) == expected

    def test_seeded_tuples_match_serial_exactly(self, tmp_path):
        payloads = list(range(11))
        expected = SerialBackend().map(tupled_draw, payloads, seed=123)
        got = _sharded(tmp_path, 4).map(tupled_draw, payloads, seed=123)
        assert got == expected
        assert all(isinstance(item, tuple) for item in got)

    def test_ndarray_results_bitwise(self, tmp_path):
        payloads = [0.5, 1.5, -2.0, 3.25]
        expected = SerialBackend().map(array_task, payloads)
        got = _sharded(tmp_path, 2).map(array_task, payloads)
        for a, b in zip(expected, got):
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()

    def test_empty_map(self, tmp_path):
        assert _sharded(tmp_path, 2).map(square, []) == []

    def test_spec_resolution_and_alias(self):
        assert isinstance(get_backend("sharded"), ShardedBackend)
        assert isinstance(get_backend("shards"), ShardedBackend)

    def test_drain_completes_without_workers(self, tmp_path):
        backend = _sharded(tmp_path, 2, spawn=False, drain=True)
        assert backend.map(square, list(range(9))) == \
            [i * i for i in range(9)]

    def test_failure_surfaces_worker_error(self, tmp_path):
        from repro.core import WorkerError

        backend = _sharded(tmp_path, 2, retries=1)
        with pytest.raises(WorkerError) as info:
            backend.map(fail_on, ["ok", "bad", "fine"])
        assert info.value.task_index == 1
        assert info.value.attempts == 2
        assert "injected failure" in info.value.traceback_str

    def test_merge_of_incomplete_run_raises(self, tmp_path):
        run = create_run(
            str(tmp_path / "root"), square, [1, 2, 3], n_shards=2
        )
        with pytest.raises(ShardError):
            run.merge()


class TestCampaignEquivalence:
    def test_grid_search_bitwise_identical(self, tmp_path, blobs):
        X, y = blobs
        grid = {"learning_rate": [0.02, 0.1, 0.3]}

        def fit(backend):
            return GridSearchCV(
                LogisticRegression(max_iter=30), grid,
                cv=KFold(n_splits=3), backend=backend, refit=False,
            ).fit(X, y)

        serial = fit(None)
        for n_workers in (1, 4):
            sharded = fit(_sharded(tmp_path, n_workers))
            assert sharded.best_params_ == serial.best_params_
            assert sharded.best_score_ == serial.best_score_
            for field in ("fold_test_scores", "mean_test_score",
                          "rank_test_score"):
                a = np.asarray(serial.cv_results_[field])
                b = np.asarray(sharded.cv_results_[field])
                assert a.dtype == b.dtype
                assert a.tobytes() == b.tobytes()

    def test_conformance_matrix_identical(self, tmp_path):
        from repro.testing.checks import ALL_CHECKS

        estimators = ["RidgeRegressor", "GaussianNaiveBayes"]
        checks = list(ALL_CHECKS)[:5]
        serial = run_conformance(estimators, checks)
        sharded = run_conformance(
            estimators, checks, backend=_sharded(tmp_path, 4)
        )
        assert sharded == serial

    def test_closure_campaign_identical(self, tmp_path):
        states = [3, 11]
        serial = run_campaign(
            states, breadth_budget=60, refinement_stages=(10,)
        )
        sharded = run_campaign(
            states, breadth_budget=60, refinement_stages=(10,),
            backend=_sharded(tmp_path, 2),
        )
        assert sharded == serial
        assert [r["random_state"] for r in sharded] == states


# ---------------------------------------------------------------------
# SIGKILL the driver mid-run; resume against the same root
# ---------------------------------------------------------------------

_DRIVER = """\
import sys

sys.path.insert(0, {src!r})

from repro.core import ShardedBackend
from tests.test_shard import slow_square

results = ShardedBackend(
    n_workers=2, root=sys.argv[1], lease_ttl=2.0, poll=0.02,
).map(slow_square, list(range(8)), seed=None)
print("COMPLETED", results)
"""


def test_driver_sigkill_then_resume_bitwise(tmp_path):
    """Acceptance: SIGKILL the *driver* mid-run; a rerun against the
    same root reuses the committed prefix (same run_id via fingerprint
    planning) and merges results identical to a serial run."""
    root = str(tmp_path / "root")
    script = tmp_path / "driver.py"
    script.write_text(_DRIVER.format(src=SRC))
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, repo_root, env.get("PYTHONPATH")) if p
    )

    proc = subprocess.Popen(
        [sys.executable, str(script), root],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
    )
    try:
        # wait until at least one result is committed, then kill the
        # driver dead — its workers are orphaned mid-run
        deadline = time.monotonic() + 60.0
        while len(glob.glob(os.path.join(root, "*", "results", "*"))) < 1:
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate()
                pytest.fail(
                    f"driver finished before it could be killed: "
                    f"{out!r} {err!r}"
                )
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    pre_resume = len(glob.glob(os.path.join(root, "*", "results", "*")))
    assert pre_resume >= 1

    # resume in-process against the same root: identical run_id, so the
    # committed prefix is reused and the merge is exactly-once
    resumed = ShardedBackend(
        n_workers=2, root=root, lease_ttl=2.0, poll=0.02
    ).map(slow_square, list(range(8)), seed=None)
    assert resumed == [i * i for i in range(8)]

    run_dirs = glob.glob(os.path.join(root, "*", "run.json"))
    assert len(run_dirs) == 1  # same task list -> same run directory
    manifest = json.loads(open(run_dirs[0]).read())
    assert manifest["n_tasks"] == 8


def test_worker_stats_account_for_resume(tmp_path):
    """A second worker pass over a finished run commits nothing new —
    exactly-once is visible in the accounting."""
    root = str(tmp_path / "root")
    run = create_run(root, square, list(range(6)), n_shards=3)
    stats = run_worker(run.run_dir, worker_id="first", wait=True)
    assert stats["committed"] == 6
    assert run.all_done()
    again = create_run(root, square, list(range(6)), n_shards=3)
    assert again.run_id == run.run_id
    assert again.all_done()
    merged = again.merge()
    assert merged.results == [i * i for i in range(6)]
    assert merged.stats["committed"] == 6
    assert merged.stats["duplicate_commits"] == 0
