"""Second property-based suite: invariants of the learning machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.validation import KFold, StratifiedKFold
from repro.learn import DecisionTreeClassifier, OneClassSVM
from repro.kernels import RBFKernel
from repro.transform import PCA

bounded_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestSplitProperties:
    @given(n=st.integers(6, 60), k=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_kfold_is_a_partition(self, n, k):
        if n < k:
            return
        folds = list(KFold(n_splits=k).split(np.zeros(n)))
        all_test = sorted(
            int(i) for _, test in folds for i in test
        )
        assert all_test == list(range(n))
        for train, test in folds:
            assert not set(train.tolist()) & set(test.tolist())
            assert len(train) + len(test) == n

    @given(
        n_a=st.integers(6, 40),
        n_b=st.integers(6, 40),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_stratified_kfold_balance(self, n_a, n_b, seed):
        y = np.array([0] * n_a + [1] * n_b)
        rng = np.random.default_rng(seed)
        rng.shuffle(y)
        k = 3
        for _, test in StratifiedKFold(n_splits=k).split(np.zeros(len(y)), y):
            labels = y[test]
            # each fold's class counts are within 1 of the fair share
            assert abs(int(np.sum(labels == 0)) - n_a // k) <= 1
            assert abs(int(np.sum(labels == 1)) - n_b // k) <= 1


class TestTreeProperties:
    @given(
        X=st.integers(20, 60).flatmap(
            lambda n: arrays(np.float64, (n, 3), elements=bounded_floats)
        ),
        max_depth=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_depth_bound_always_respected(self, X, max_depth, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=len(X))
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        tree = DecisionTreeClassifier(
            max_depth=max_depth, random_state=seed
        ).fit(X, y)
        assert tree.depth() <= max_depth

    @given(
        X=st.integers(10, 40).flatmap(
            lambda n: arrays(np.float64, (n, 2), elements=bounded_floats)
        ),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_are_training_labels(self, X, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, size=len(X))
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        assert set(np.unique(tree.predict(X))) <= set(np.unique(y))


class TestOneClassProperties:
    @given(
        n=st.integers(15, 60),
        nu=st.floats(0.05, 0.9),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_dual_feasibility_always_holds(self, n, nu, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        model = OneClassSVM(kernel=RBFKernel(0.5), nu=nu).fit(X)
        assert model.alpha_.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(model.alpha_ >= -1e-12)
        assert np.all(model.alpha_ <= 1.0 / (nu * n) + 1e-9)

    @given(
        n=st.integers(20, 60),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_training_outlier_fraction_bounded(self, n, seed):
        nu = 0.2
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        model = OneClassSVM(kernel=RBFKernel(0.5), nu=nu).fit(X)
        outlier_fraction = float(np.mean(model.predict(X) == -1))
        # nu bounds the training outlier fraction asymptotically; allow
        # finite-sample slack of a handful of boundary support vectors
        assert outlier_fraction <= nu + 5.0 / n + 0.05


class TestPCAProperties:
    @given(
        X=st.integers(8, 40).flatmap(
            lambda n: arrays(np.float64, (n, 4), elements=bounded_floats)
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_components_orthonormal(self, X):
        X = X + np.arange(len(X), dtype=float)[:, None]  # ensure spread
        pca = PCA(n_components=2).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(2), atol=1e-8)

    @given(
        X=st.integers(10, 30).flatmap(
            lambda n: arrays(np.float64, (n, 5), elements=bounded_floats)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_error_monotone_in_components(self, X):
        X = X + np.arange(len(X), dtype=float)[:, None]
        errors = [
            PCA(n_components=k).fit(X).reconstruction_error(X)
            for k in (1, 2, 3)
        ]
        assert errors[0] + 1e-9 >= errors[1] >= errors[2] - 1e-9

    @given(
        X=st.integers(8, 30).flatmap(
            lambda n: arrays(np.float64, (n, 3), elements=bounded_floats)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_explained_variance_ratio_valid(self, X):
        pca = PCA().fit(X)
        ratios = pca.explained_variance_ratio_
        assert np.all(ratios >= -1e-12)
        assert ratios.sum() <= 1.0 + 1e-9
        # descending
        assert np.all(np.diff(ratios) <= 1e-12)


class TestTemplateProperties:
    @given(
        low=st.floats(0.0, 0.4),
        width=st.floats(0.01, 0.4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_biased_template_samples_within_bounds(self, low, width, seed):
        from repro.verification import HARD_KNOB_LIMITS, TestTemplate

        template = TestTemplate().biased(
            {"misaligned_fraction": (low, low + width)}
        )
        rng = np.random.default_rng(seed)
        knobs = template.sample_knobs(rng)
        hard_low, hard_high = HARD_KNOB_LIMITS["misaligned_fraction"]
        assert hard_low - 1e-12 <= knobs["misaligned_fraction"]
        assert knobs["misaligned_fraction"] <= hard_high + 1e-12
