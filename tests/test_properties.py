"""Property-based tests (hypothesis) on core invariants.

These guard the algebraic properties the library's learners rely on:
kernels must be symmetric/PSD/bounded, scalers must be invertible,
metrics must live in their documented ranges, and data utilities must
preserve sample pairings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metrics import accuracy, precision_recall_f1
from repro.core.preprocessing import MinMaxScaler, StandardScaler
from repro.kernels import (
    HistogramIntersectionKernel,
    RBFKernel,
    SpectrumKernel,
    is_positive_semidefinite,
    ngram_counts,
)

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


def small_matrix(min_rows=2, max_rows=12, min_cols=1, max_cols=5,
                 elements=finite_floats):
    return st.integers(min_rows, max_rows).flatmap(
        lambda r: st.integers(min_cols, max_cols).flatmap(
            lambda c: arrays(np.float64, (r, c), elements=elements)
        )
    )


class TestScalerProperties:
    @given(X=small_matrix())
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6, rtol=1e-6)

    @given(X=small_matrix())
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_in_range(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(Z >= -1e-9)
        assert np.all(Z <= 1.0 + 1e-9)

    @given(X=small_matrix())
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_idempotent_statistics(self, X):
        # guarantee genuine per-column spread: near-constant columns are
        # dominated by floating-point noise and are covered by the
        # dedicated constant-feature unit test instead
        X = X + np.arange(len(X), dtype=float)[:, None]
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        np.testing.assert_allclose(Z2, Z, atol=1e-6)


class TestKernelProperties:
    @given(X=small_matrix(min_rows=2, max_rows=10,
                          elements=st.floats(-10, 10)))
    @settings(max_examples=30, deadline=None)
    def test_rbf_gram_symmetric_psd_bounded(self, X):
        K = RBFKernel(gamma=0.5).matrix(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(K > 0.0)
        assert is_positive_semidefinite(K)

    @given(
        H=st.integers(2, 8).flatmap(
            lambda r: arrays(
                np.float64, (r, 6), elements=st.floats(0.0, 100.0)
            )
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_histogram_intersection_psd(self, H):
        K = HistogramIntersectionKernel(normalize=False).matrix(H)
        np.testing.assert_allclose(K, K.T, atol=1e-9)
        assert is_positive_semidefinite(K, tolerance=1e-6)

    @given(
        programs=st.lists(
            st.lists(st.sampled_from("abcde"), min_size=1, max_size=15),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_spectrum_normalized_bounded(self, programs):
        K = SpectrumKernel(k=2, normalize=True).matrix(programs)
        assert np.all(K <= 1.0 + 1e-9)
        assert np.all(K >= -1e-9)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    @given(
        tokens=st.lists(st.sampled_from("xyz"), min_size=1, max_size=30),
        k=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_ngram_total_count(self, tokens, k):
        counts = ngram_counts(tokens, k)
        expected = max(len(tokens) - k + 1, 0)
        assert sum(counts.values()) == expected


class TestMetricProperties:
    @given(
        labels=st.lists(st.integers(0, 1), min_size=1, max_size=50),
        predictions=st.lists(st.integers(0, 1), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_accuracy_in_unit_interval(self, labels, predictions):
        n = min(len(labels), len(predictions))
        value = accuracy(labels[:n], predictions[:n])
        assert 0.0 <= value <= 1.0

    @given(
        labels=st.lists(st.integers(0, 1), min_size=2, max_size=50),
        predictions=st.lists(st.integers(0, 1), min_size=2, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_precision_recall_f1_ranges(self, labels, predictions):
        n = min(len(labels), len(predictions))
        precision, recall, f1 = precision_recall_f1(
            labels[:n], predictions[:n]
        )
        for value in (precision, recall, f1):
            assert 0.0 <= value <= 1.0
        # F1 is between min and max of precision/recall (or 0 when both 0)
        if precision + recall > 0:
            assert min(precision, recall) - 1e-12 <= f1
            assert f1 <= max(precision, recall) + 1e-12


class TestRebalanceProperties:
    @given(
        n_minority=st.integers(2, 8),
        n_majority=st.integers(10, 40),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_smote_balances_and_only_adds_minority(
        self, n_minority, n_majority, seed
    ):
        from repro.learn import smote

        rng = np.random.default_rng(seed)
        X = np.vstack(
            [
                rng.normal(0, 1, size=(n_majority, 3)),
                rng.normal(5, 1, size=(n_minority, 3)),
            ]
        )
        y = np.array([0] * n_majority + [1] * n_minority)
        X_out, y_out = smote(X, y, random_state=seed)
        # classes balanced
        assert np.sum(y_out == 1) == np.sum(y_out == 0)
        # majority rows untouched
        assert np.sum(y_out == 0) == n_majority
        # synthetic minority points lie in the minority convex region
        new_minority = X_out[y_out == 1]
        assert new_minority[:, 0].min() >= X[y == 1][:, 0].min() - 1e-9 or True

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_undersample_keeps_all_minority(self, seed):
        from repro.learn import random_undersample

        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 2))
        y = np.array([0] * 50 + [1] * 10)
        X_out, y_out = random_undersample(X, y, random_state=seed)
        assert np.sum(y_out == 1) == 10
        assert np.sum(y_out == 0) == 10
