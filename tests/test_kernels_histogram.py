"""Tests for histogram kernels (Fig. 9's HI kernel)."""

import numpy as np
import pytest

from repro.kernels import (
    ChiSquaredKernel,
    HistogramIntersectionKernel,
    is_positive_semidefinite,
)


class TestHistogramIntersection:
    def test_identical_normalized_histograms_score_one(self):
        k = HistogramIntersectionKernel(normalize=True)
        h = np.array([1.0, 2.0, 3.0])
        assert k(h, h) == pytest.approx(1.0)

    def test_disjoint_histograms_score_zero(self):
        k = HistogramIntersectionKernel()
        assert k([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_intersection_value_unnormalized(self):
        k = HistogramIntersectionKernel(normalize=False)
        assert k([3.0, 1.0], [2.0, 5.0]) == pytest.approx(3.0)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            HistogramIntersectionKernel()([-1.0, 2.0], [1.0, 1.0])

    def test_normalization_makes_scale_invariant(self):
        k = HistogramIntersectionKernel(normalize=True)
        h = np.array([1.0, 3.0, 2.0])
        g = np.array([2.0, 1.0, 1.0])
        assert k(h, g) == pytest.approx(k(10 * h, 5 * g))

    def test_psd_on_random_histograms(self, rng):
        H = rng.uniform(size=(25, 10))
        K = HistogramIntersectionKernel().matrix(H)
        assert is_positive_semidefinite(K)

    def test_matrix_matches_pairwise(self, rng):
        H = rng.uniform(size=(7, 5))
        k = HistogramIntersectionKernel()
        K = k.matrix(H)
        for i in range(7):
            for j in range(7):
                assert K[i, j] == pytest.approx(k(H[i], H[j]))

    def test_cross_matrix(self, rng):
        A = rng.uniform(size=(3, 5))
        B = rng.uniform(size=(4, 5))
        k = HistogramIntersectionKernel()
        K = k.cross_matrix(A, B)
        assert K.shape == (3, 4)
        assert K[1, 2] == pytest.approx(k(A[1], B[2]))

    def test_empty_histogram_scores_safely(self):
        k = HistogramIntersectionKernel(normalize=True)
        value = k([0.0, 0.0], [1.0, 1.0])
        assert np.isfinite(value)


class TestChiSquaredKernel:
    def test_identical_scores_one(self, rng):
        k = ChiSquaredKernel(gamma=1.0)
        h = rng.uniform(size=8)
        assert k(h, h) == pytest.approx(1.0)

    def test_bounded_in_unit_interval(self, rng):
        k = ChiSquaredKernel(gamma=0.5)
        H = rng.uniform(size=(10, 6))
        K = k.matrix(H)
        assert np.all(K > 0.0)
        assert np.all(K <= 1.0 + 1e-12)

    def test_zero_over_zero_bins_ignored(self):
        k = ChiSquaredKernel(gamma=1.0, normalize=False)
        value = k([0.0, 1.0], [0.0, 1.0])
        assert value == pytest.approx(1.0)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            ChiSquaredKernel(gamma=0.0)

    def test_psd_on_random_histograms(self, rng):
        H = rng.uniform(size=(20, 8))
        assert is_positive_semidefinite(ChiSquaredKernel(1.0).matrix(H))

    def test_more_different_means_lower(self):
        k = ChiSquaredKernel(gamma=1.0)
        base = np.array([1.0, 1.0, 1.0, 1.0])
        close = np.array([1.1, 0.9, 1.0, 1.0])
        far = np.array([4.0, 0.1, 0.1, 0.1])
        assert k(base, close) > k(base, far)
