"""Tests for the combined coverage-closure campaign (both Fig. 6 hooks)."""

import pytest

from repro.verification import (
    CoverageClosureFlow,
    NoveltyTestSelector,
    Randomizer,
    SPECIAL_POINT_NAMES,
    TestTemplate,
)


@pytest.fixture(scope="module")
def report():
    flow = CoverageClosureFlow(
        Randomizer(random_state=5),
        breadth_budget=400,
        refinement_stages=(80, 40),
    )
    return flow.run(TestTemplate())


class TestClosureCampaign:
    def test_three_phases_recorded(self, report):
        assert len(report.phases) == 3
        assert report.phases[0].phase.startswith("breadth")

    def test_breadth_phase_filters_simulations(self, report):
        breadth = report.phases[0]
        assert breadth.n_simulated < breadth.n_generated * 0.6

    def test_depth_phases_simulate_everything(self, report):
        for phase in report.phases[1:]:
            assert phase.n_simulated == phase.n_generated

    def test_special_coverage_monotone_and_closing(self, report):
        special = [phase.special_covered for phase in report.phases]
        assert special == sorted(special)
        assert special[-1] >= len(SPECIAL_POINT_NAMES) - 1

    def test_cross_coverage_monotone(self, report):
        cross = [phase.cross_covered for phase in report.phases]
        assert cross == sorted(cross)

    def test_closure_metric(self, report):
        assert report.special_closure >= 7 / 8

    def test_totals(self, report):
        assert report.total_generated == 400 + 80 + 40
        assert report.total_simulated < report.total_generated

    def test_mining_beats_brute_force_budget(self, report):
        """The campaign's point: closure with fewer simulations than a
        simulate-everything campaign of the same generation budget, and
        far better special coverage than the generic template alone."""
        from repro.verification import LoadStoreUnitSimulator

        brute = LoadStoreUnitSimulator()
        randomizer = Randomizer(random_state=99)
        for program in randomizer.stream(
            TestTemplate(), report.total_simulated
        ):
            brute.simulate(program)
        brute_special = len(brute.coverage.covered_special_points())
        closed_special = len(report.coverage.covered_special_points())
        assert closed_special > brute_special

    def test_custom_selector_accepted(self):
        flow = CoverageClosureFlow(
            Randomizer(random_state=1),
            selector=NoveltyTestSelector(nu=0.2, seed_count=5),
            breadth_budget=60,
            refinement_stages=(20,),
        )
        result = flow.run(TestTemplate())
        assert result.total_simulated > 0
