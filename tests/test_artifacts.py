"""Tests for the artifact/diff/gate pipeline (``repro.artifacts``).

Covers the satellite contracts of the ``repro`` CLI redesign:

- manifest determinism — two same-seed runs of a deterministic bench
  diff clean (no changed metrics, identical table fingerprints);
- ``diff.json`` structure on a synthetic baseline/candidate pair;
- the gate pass/fail/exit-code matrix for every rule kind;
- CLI smoke via ``python -m repro.artifacts.cli``;
- the ``record_result`` deprecation shim;
- the fallback TOML parser used when :mod:`tomllib` is absent.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.artifacts import (
    BenchSpec,
    MetricSink,
    Rule,
    RulesError,
    diff_runs,
    evaluate,
    exit_code,
    latest_runs,
    load_rules,
    register_bench,
    resolve_bench_name,
    run_bench,
    write_diff,
    write_run,
)
from repro.artifacts import rules_toml
from repro.artifacts.gate import EXIT_FAIL, EXIT_PASS


def _deterministic_runner(sink, scale=1.0):
    sink.text("table_a", "row one\nrow two")
    sink.record("block", {"score": 0.75 * scale, "n": 10,
                          "nested": {"ok": True}})
    sink.metric("headline", 2.0 * scale)


def _spec(name="det_bench", scale=1.0):
    return BenchSpec(
        name=name,
        runner=lambda sink: _deterministic_runner(sink, scale),
        title="deterministic test bench",
        tags=("test",),
        metrics={"headline": "a headline metric"},
    )


# ---------------------------------------------------------------- sink
class TestMetricSink:
    def test_flattens_payload_numeric_leaves(self):
        sink = MetricSink(bench="t", echo=False)
        sink.record("a", {"x": 1, "sub": {"y": 2.5, "flag": True},
                          "name": "not-numeric", "list": [3, 4]})
        metrics = sink.metrics()
        assert metrics == {
            "a.x": 1.0, "a.sub.y": 2.5, "a.sub.flag": 1.0,
            "a.list.0": 3.0, "a.list.1": 4.0,
        }

    def test_record_deep_merges(self):
        sink = MetricSink(bench="t", echo=False)
        sink.record("a", {"x": 1, "keep": {"p": 1}})
        sink.record("a", {"y": 2, "keep": {"q": 2}})
        assert sink.payload["a"] == {"x": 1, "y": 2,
                                     "keep": {"p": 1, "q": 2}}

    def test_explicit_metric_wins_and_units_kept(self):
        sink = MetricSink(bench="t", echo=False)
        sink.record("a", {"x": 1})
        sink.metric("a.x", 9, unit="ms")
        assert sink.metrics()["a.x"] == 9.0
        assert sink.summary()["units"] == {"a.x": "ms"}

    def test_non_numeric_metric_rejected(self):
        sink = MetricSink(bench="t", echo=False)
        with pytest.raises(TypeError):
            sink.metric("bad", "fast")

    def test_injection_env_multiplies_metrics(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_ARTIFACTS_INJECT", '{"a.x": 0.5, "missing": 2.0}'
        )
        sink = MetricSink(bench="t", echo=False)
        sink.record("a", {"x": 4.0})
        assert sink.metrics()["a.x"] == 2.0
        assert sink.summary()["injected"] == {"a.x": 0.5, "missing": 2.0}

    def test_malformed_injection_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS_INJECT", "not json")
        with pytest.raises(ValueError):
            MetricSink(bench="t", echo=False)

    def test_aux_path_requires_bare_name(self):
        sink = MetricSink(bench="t", echo=False)
        with pytest.raises(ValueError):
            sink.path("sub/dir.json")
        target = sink.path("trace.json")
        assert sink.aux_files() == {}  # not written yet
        target.write_text("{}")
        assert list(sink.aux_files()) == ["trace.json"]
        sink.close()


# ------------------------------------------------------------ registry
class TestRegistry:
    def test_resolves_prefix_and_module_name(self):
        register_bench(_spec("resolver_demo_bench"))
        assert resolve_bench_name("resolver_demo_bench") \
            == "resolver_demo_bench"
        assert resolve_bench_name("bench_resolver_demo_bench") \
            == "resolver_demo_bench"
        assert resolve_bench_name("resolver_demo") == "resolver_demo_bench"

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="no match"):
            resolve_bench_name("definitely_not_a_bench")

    def test_conflicting_source_files_rejected(self):
        register_bench(BenchSpec(
            name="conflict_bench", runner=lambda sink: None,
            source="/tmp/one.py",
        ))
        with pytest.raises(ValueError, match="claimed by both"):
            register_bench(BenchSpec(
                name="conflict_bench", runner=lambda sink: None,
                source="/tmp/two.py",
            ))
        # same file re-registering (pytest + CLI discovery) is fine
        register_bench(BenchSpec(
            name="conflict_bench", runner=lambda sink: None,
            source="/elsewhere/one.py",
        ))


# ------------------------------------------------- run dirs + manifest
class TestRunArtifacts:
    def test_run_dir_layout(self, tmp_path):
        result = run_bench(_spec(), out_root=tmp_path, echo=False)
        assert (result.path / "manifest.json").is_file()
        assert (result.path / "summary.json").is_file()
        assert (result.path / "report.md").is_file()
        assert (result.path / "tables" / "table_a.txt").read_text() \
            == "row one\nrow two\n"
        manifest = result.manifest
        assert manifest["bench"] == "det_bench"
        assert "tables/table_a.txt" in manifest["artifacts"]
        assert manifest["platform"]["python"]
        assert result.summary["metrics"]["headline"] == 2.0

    def test_crashing_runner_wrapped_in_bench_run_error(self, tmp_path):
        from repro.artifacts import BenchRunError

        spec = BenchSpec(name="boom", runner=lambda sink: 1 / 0)
        with pytest.raises(BenchRunError, match="ZeroDivisionError"):
            run_bench(spec, out_root=tmp_path, echo=False)
        # no half-written run directory is left behind
        assert not (tmp_path / "boom").exists()

    def test_two_runs_never_clobber(self, tmp_path):
        first = run_bench(_spec(), out_root=tmp_path, echo=False)
        second = run_bench(_spec(), out_root=tmp_path, echo=False)
        assert first.path != second.path
        assert first.path.is_dir() and second.path.is_dir()

    def test_mirror_files_are_stamped_with_run_id(self, tmp_path):
        mirror = tmp_path / "results"
        result = run_bench(
            _spec(), out_root=tmp_path / "artifacts", mirror_dir=mirror,
            echo=False,
        )
        stamped = (mirror / "table_a.txt").read_text()
        assert f"[run {result.manifest['run_id']}]" in stamped
        record = json.loads((mirror / "BENCH_det_bench.json").read_text())
        assert record["bench"] == "det_bench"
        assert record["run_id"] == result.manifest["run_id"]
        assert record["metrics"]["headline"] == 2.0

    def test_same_seed_runs_diff_clean(self, tmp_path):
        spec = _spec()
        a = run_bench(spec, out_root=tmp_path, seed=0, echo=False)
        b = run_bench(spec, out_root=tmp_path, seed=0, echo=False)
        diff = diff_runs(a.path, b.path)
        assert diff["changed"] == []
        assert diff["added_metrics"] == []
        assert diff["removed_metrics"] == []
        assert diff["artifacts"]["differing"] == []
        assert "tables/table_a.txt" in diff["artifacts"]["identical"]
        assert diff["context"]["same_seed"] is True
        assert diff["context"]["same_bench"] is True


# ------------------------------------------------------------ diffing
class TestDiff:
    def _pair(self, tmp_path):
        a = run_bench(_spec(scale=1.0), out_root=tmp_path, echo=False)
        b = run_bench(_spec(scale=0.9), out_root=tmp_path, echo=False)
        return a, b

    def test_diff_reports_abs_and_rel_deltas(self, tmp_path):
        a, b = self._pair(tmp_path)
        diff = diff_runs(a.path, b.path)
        entry = diff["metrics"]["headline"]
        assert entry["baseline"] == 2.0
        assert entry["candidate"] == pytest.approx(1.8)
        assert entry["abs_delta"] == pytest.approx(-0.2)
        assert entry["rel_delta"] == pytest.approx(-0.1)
        assert "headline" in diff["changed"]
        assert "block.n" not in diff["changed"]

    def test_latest_runs_orders_and_disambiguates(self, tmp_path):
        a, b = self._pair(tmp_path)
        runs = latest_runs(tmp_path)
        assert runs == [a.path, b.path]
        run_bench(_spec("other_bench"), out_root=tmp_path, echo=False)
        with pytest.raises(ValueError, match="disambiguate"):
            latest_runs(tmp_path)
        assert latest_runs(tmp_path, bench="det_bench") == [a.path, b.path]

    def test_write_diff_round_trips(self, tmp_path):
        a, b = self._pair(tmp_path)
        diff = diff_runs(a.path, b.path)
        path = write_diff(diff, tmp_path / "out" / "diff.json")
        assert json.loads(path.read_text())["bench"] == "det_bench"


# -------------------------------------------------------------- gating
def _diff_for(baseline, candidate, bench="det_bench"):
    metrics = {}
    for name in set(baseline) | set(candidate):
        entry = {"baseline": baseline.get(name),
                 "candidate": candidate.get(name)}
        if entry["baseline"] is not None and entry["candidate"] is not None:
            entry["abs_delta"] = entry["candidate"] - entry["baseline"]
        metrics[name] = entry
    return {"bench": bench, "metrics": metrics}


class TestGate:
    @pytest.mark.parametrize("kind,limit,baseline,candidate,passes", [
        ("min", 0.9, None, 0.95, True),
        ("min", 0.9, None, 0.85, False),
        ("max", 20.0, None, 19.0, True),
        ("max", 20.0, None, 21.0, False),
        ("max_abs_delta", 0.1, 1.0, 1.05, True),
        ("max_abs_delta", 0.1, 1.0, 1.2, False),
        ("max_rel_delta", 0.05, 2.0, 2.09, True),
        ("max_rel_delta", 0.05, 2.0, 2.2, False),
        ("max_drop", 0.1, 1.0, 0.95, True),
        ("max_drop", 0.1, 1.0, 0.8, False),
        ("max_rel_drop", 0.05, 1.0, 0.96, True),
        ("max_rel_drop", 0.05, 1.0, 0.9, False),
        ("max_increase", 0.1, 1.0, 1.05, True),
        ("max_increase", 0.1, 1.0, 1.2, False),
        ("max_rel_increase", 0.5, 2.0, 2.9, True),
        ("max_rel_increase", 0.5, 2.0, 3.1, False),
        ("equal", True, 1.0, 1.0, True),
        ("equal", True, 1.0, 0.99, False),
    ])
    def test_rule_kind_matrix(self, kind, limit, baseline, candidate,
                              passes):
        rule = Rule(metric="m", constraints={kind: limit})
        diff = _diff_for({"m": baseline} if baseline is not None else {},
                         {"m": candidate})
        report = evaluate(diff, [rule])
        assert report["passed"] is passes
        assert exit_code(report) == (EXIT_PASS if passes else EXIT_FAIL)

    def test_relative_rule_skipped_without_baseline(self):
        rule = Rule(metric="m", constraints={"max_rel_drop": 0.05})
        report = evaluate(_diff_for({}, {"m": 1.0}), [rule])
        assert report["passed"] is True
        (result,) = report["results"]
        assert result["checks"][0]["skipped"] == "no baseline value"

    def test_missing_metric_fails_unless_optional(self):
        required = Rule(metric="absent", constraints={"min": 1.0})
        report = evaluate(_diff_for({}, {}), [required])
        assert report["passed"] is False
        assert report["failed_rules"] == [required.name]

        optional = Rule(metric="absent", constraints={"min": 1.0},
                        optional=True)
        report = evaluate(_diff_for({}, {}), [optional])
        assert report["passed"] is True
        assert report["skipped_rules"] == [optional.name]

    def test_bench_scope_skips_other_benches(self):
        rule = Rule(metric="m", bench="other", constraints={"min": 1.0})
        report = evaluate(_diff_for({}, {"m": 0.0}), [rule])
        assert report["passed"] is True
        assert report["skipped_rules"] == [rule.name]

    def test_warn_severity_never_fails_gate(self):
        rule = Rule(metric="m", severity="warn",
                    constraints={"min": 10.0})
        report = evaluate(_diff_for({}, {"m": 1.0}), [rule])
        assert report["passed"] is True
        assert report["warned_rules"] == [rule.name]

    def test_load_rules_validates(self, tmp_path):
        good = tmp_path / "rules.toml"
        good.write_text(
            '[[rule]]\nmetric = "m"\nmin = 0.5\n'
            '[[rule]]\nname = "two"\nmetric = "m"\nmax = 2.0\n'
        )
        rules = load_rules(good)
        assert [r.name for r in rules] == ["m:min", "two"]

        for body, message in [
            ("x = 1\n", "no \\[\\[rule\\]\\]"),
            ('[[rule]]\nmin = 0.5\n', "has no metric"),
            ('[[rule]]\nmetric = "m"\nbogus = 1\n', "unknown keys"),
            ('[[rule]]\nmetric = "m"\n', "no constraint"),
            ('[[rule]]\nmetric = "m"\nmin = 0.1\nseverity = "loud"\n',
             "severity"),
        ]:
            bad = tmp_path / "bad.toml"
            bad.write_text(body)
            with pytest.raises(RulesError, match=message):
                load_rules(bad)

    def test_committed_rules_file_loads(self):
        import pathlib

        rules = load_rules(
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "rules.toml"
        )
        assert any(r.name == "warm-hit-rate-floor" for r in rules)
        metrics = {r.metric for r in rules}
        assert "gram_engine_sequence_500.warm_hit_rate" in metrics


# ---------------------------------------------------- fallback parser
class TestTomlFallback:
    def test_parses_rules_grammar(self):
        document = rules_toml.parse_fallback(
            '# comment\n'
            'title = "top"  # trailing\n'
            '[table]\n'
            'flag = true\n'
            'count = 3\n'
            'ratio = 0.5\n'
            '[[rule]]\n'
            'metric = "a.b"\n'
            'min = 0.9\n'
            '[[rule]]\n'
            'metric = "c"\n'
            'tags = ["x", "y"]\n'
        )
        assert document["title"] == "top"
        assert document["table"] == {"flag": True, "count": 3,
                                     "ratio": 0.5}
        assert document["rule"][0] == {"metric": "a.b", "min": 0.9}
        assert document["rule"][1]["tags"] == ["x", "y"]

    def test_hash_inside_string_is_not_a_comment(self):
        document = rules_toml.parse_fallback('name = "a#b"\n')
        assert document["name"] == "a#b"

    def test_malformed_lines_raise(self):
        for body in ("just words\n", 'x = \n', '[unclosed\n',
                     'x = "unterminated\n'):
            with pytest.raises(rules_toml.TomlError):
                rules_toml.parse_fallback(body)

    def test_fallback_agrees_with_tomllib_on_rules_file(self):
        import pathlib

        text = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "rules.toml"
        ).read_text()
        fallback = rules_toml.parse_fallback(text)
        tomllib = pytest.importorskip("tomllib")
        assert fallback == tomllib.loads(text)


# ------------------------------------------------------------ the CLI
class TestCLI:
    def _cli(self, *args, cwd):
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.artifacts.cli", *args],
            capture_output=True, text=True, cwd=cwd, timeout=120, env=env,
        )

    @pytest.fixture()
    def bench_dir(self, tmp_path):
        (tmp_path / "bench_cli_smoke.py").write_text(
            "from repro.artifacts import BenchSpec, register_bench\n"
            "\n"
            "def _run(sink):\n"
            "    sink.text('tbl', 'hello')\n"
            "    sink.record('block', {'score': 0.75})\n"
            "\n"
            "register_bench(BenchSpec(\n"
            "    name='cli_smoke', runner=_run, source=__file__,\n"
            "))\n"
        )
        return tmp_path

    def test_help_per_subcommand(self, tmp_path):
        for sub in ("list", "run", "diff", "gate"):
            proc = self._cli(sub, "--help", cwd=tmp_path)
            assert proc.returncode == 0
            assert "usage: repro" in proc.stdout

    def test_run_diff_gate_round_trip(self, bench_dir, tmp_path):
        args = ["--bench-dir", str(bench_dir),
                "--artifacts-root", str(tmp_path / "arts")]
        for _ in range(2):
            proc = self._cli(*args, "run", "cli_smoke", "--quiet",
                             cwd=tmp_path)
            assert proc.returncode == 0, proc.stderr
        proc = self._cli(*args, "--format", "json", "diff", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        diff = json.loads(proc.stdout)["diff"]
        assert diff["bench"] == "cli_smoke"
        assert diff["changed"] == []  # deterministic bench

        rules = tmp_path / "rules.toml"
        rules.write_text('[[rule]]\nmetric = "block.score"\nmin = 0.5\n')
        proc = self._cli(*args, "--format", "json", "gate",
                         "--rules", str(rules), cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)["gate"]
        assert report["passed"] is True
        # the verdict lands back in diff.json
        on_disk = json.loads(
            (tmp_path / "arts" / "cli_smoke" / "diff.json").read_text()
        )
        assert on_disk["gate"]["passed"] is True

        failing = tmp_path / "failing.toml"
        failing.write_text('[[rule]]\nmetric = "block.score"\nmin = 0.9\n')
        proc = self._cli(*args, "gate", "--rules", str(failing),
                         cwd=tmp_path)
        assert proc.returncode == 1

    def test_unknown_bench_exits_2(self, bench_dir, tmp_path):
        proc = self._cli("--bench-dir", str(bench_dir), "run", "nope",
                         cwd=tmp_path)
        assert proc.returncode == 2
        assert "unknown bench" in proc.stderr


# --------------------------------------------------- conftest fixtures
class TestBenchConftest:
    def test_record_result_shim_warns_and_routes_to_sink(self, tmp_path):
        import importlib.util
        import pathlib

        conftest_path = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "conftest.py"
        )
        spec = importlib.util.spec_from_file_location(
            "_bench_conftest_under_test", conftest_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        sink = MetricSink(bench="shim", echo=False)
        record = module.record_result.__wrapped__(sink)
        with pytest.warns(DeprecationWarning, match="sink"):
            record("legacy_table", "legacy body")
        assert sink.texts["legacy_table"] == "legacy body"
