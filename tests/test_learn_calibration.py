"""Tests for Platt-scaled probability calibration."""

import numpy as np
import pytest

from repro.kernels import RBFKernel
from repro.learn import (
    SVC,
    PlattCalibratedClassifier,
    SelfTrainingClassifier,
    UNLABELED,
)


@pytest.fixture
def overlapping(rng):
    X = np.vstack(
        [rng.normal(-1.0, 1.0, size=(150, 2)),
         rng.normal(1.0, 1.0, size=(150, 2))]
    )
    y = np.repeat([0, 1], 150)
    order = rng.permutation(300)
    return X[order], y[order]


class TestPlattCalibration:
    def test_probabilities_valid(self, overlapping):
        X, y = overlapping
        model = PlattCalibratedClassifier(
            SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0),
            random_state=0,
        ).fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0.0)
        assert np.all(proba <= 1.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_probability_monotone_in_score(self, overlapping):
        X, y = overlapping
        model = PlattCalibratedClassifier(
            SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0),
            random_state=0,
        ).fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_calibration_quality(self, overlapping):
        """Among samples predicted ~p, about p should be positive."""
        X, y = overlapping
        model = PlattCalibratedClassifier(
            SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0),
            random_state=0,
        ).fit(X, y)
        proba = model.predict_proba(X)[:, 1]
        confident = proba > 0.8
        if confident.sum() >= 20:
            observed = float(np.mean(y[confident] == 1))
            assert observed > 0.7

    def test_accuracy_preserved(self, overlapping):
        X, y = overlapping
        raw = SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0).fit(X, y)
        calibrated = PlattCalibratedClassifier(
            SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0),
            random_state=0,
        ).fit(X, y)
        assert calibrated.score(X, y) > raw.score(X, y) - 0.08

    def test_enables_svm_self_training(self, rng):
        """The composition the module exists for: SVC gains
        predict_proba, so it can drive the self-training loop."""
        X = np.vstack(
            [rng.normal(-2, 0.6, size=(60, 2)),
             rng.normal(2, 0.6, size=(60, 2))]
        )
        y_true = np.repeat([0, 1], 60)
        y = np.full(120, UNLABELED)
        y[[0, 1, 60, 61]] = y_true[[0, 1, 60, 61]]
        semi = SelfTrainingClassifier(
            PlattCalibratedClassifier(
                SVC(kernel=RBFKernel(0.5), C=1.0, random_state=0),
                random_state=0,
            ),
            threshold=0.9,
        ).fit(X, y)
        assert semi.n_pseudo_labeled_ > 0
        assert float(np.mean(semi.predict(X) == y_true)) > 0.9

    def test_rejects_multiclass(self, rng):
        X = rng.normal(size=(30, 2))
        y = np.repeat([0, 1, 2], 10)
        with pytest.raises(ValueError):
            PlattCalibratedClassifier(
                SVC(random_state=0)
            ).fit(X, y)

    def test_rejects_bad_holdout(self, overlapping):
        X, y = overlapping
        with pytest.raises(ValueError):
            PlattCalibratedClassifier(
                SVC(random_state=0), holdout_fraction=0.9
            ).fit(X, y)
