"""Tests for the cited-work extensions: Fmax prediction ([20]), IDDQ/ICA
screening ([25]), and inter-wafer abnormality analysis ([32])."""

import numpy as np
import pytest

from repro.mfgtest import (
    FmaxStudy,
    ICAIddqScreen,
    InterWaferAnalysis,
    fit_signature,
    fmax_from_factors,
    generate_iddq_data,
    generate_wafer_lot,
    make_wafer_map,
    spatial_basis,
    total_current_screen,
)
from repro.mfgtest.wafer import WaferSignature


class TestFmaxModel:
    def test_fmax_rises_with_speed_factor(self, rng):
        slow = fmax_from_factors(np.array([[-2.0, 0.0, 0.0]]),
                                 noise_sigma=0.0)
        fast = fmax_from_factors(np.array([[2.0, 0.0, 0.0]]),
                                 noise_sigma=0.0)
        assert fast[0] > slow[0]

    def test_fmax_saturates(self):
        f2 = fmax_from_factors(np.array([[2.0, 0.0]]), noise_sigma=0.0)[0]
        f4 = fmax_from_factors(np.array([[4.0, 0.0]]), noise_sigma=0.0)[0]
        f0 = fmax_from_factors(np.array([[0.0, 0.0]]), noise_sigma=0.0)[0]
        assert (f4 - f2) < (f2 - f0)  # diminishing returns

    def test_leakage_throttles(self):
        cool = fmax_from_factors(np.array([[0.0, 0.0]]), noise_sigma=0.0)[0]
        hot = fmax_from_factors(np.array([[0.0, 2.5]]), noise_sigma=0.0)[0]
        assert hot < cool


class TestFmaxStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return FmaxStudy(random_state=0).run(n_chips=900)

    def test_all_five_families_reported(self, result):
        names = [row[0] for row in result.rows]
        assert names == [
            "nearest neighbor", "LSF", "regularized LSF", "SVR",
            "Gaussian process",
        ]

    def test_all_families_predictive(self, result):
        assert all(r2 > 0.7 for _, r2, _ in result.rows)

    def test_kernel_methods_beat_linear_on_nonlinear_fmax(self, result):
        scores = result.as_dict()
        assert scores["Gaussian process"] > scores["LSF"]
        assert scores["SVR"] > scores["LSF"]

    def test_best_family_is_nonlinear(self, result):
        assert result.best_family() in ("Gaussian process", "SVR",
                                        "nearest neighbor")

    def test_rmse_consistent_with_r2(self, result):
        ordered_by_r2 = sorted(result.rows, key=lambda r: -r[1])
        ordered_by_rmse = sorted(result.rows, key=lambda r: r[2])
        assert ordered_by_r2[0][0] == ordered_by_rmse[0][0]


class TestIddq:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_iddq_data(
            n_chips=2000, defect_rate=0.01, random_state=1
        )

    def test_shapes_and_ground_truth(self, data):
        assert data.measurements.shape == (2000, 8)
        assert data.defect_mask.sum() > 0
        assert np.all(data.defect_current[~data.defect_mask] == 0.0)

    def test_background_dominates_totals(self, data):
        totals = data.measurements.sum(axis=1)
        correlation = np.corrcoef(totals, data.background)[0, 1]
        assert correlation > 0.95

    def test_ica_screen_catches_defects(self, data):
        screen = ICAIddqScreen(
            n_components=3, threshold=6.0, random_state=0
        ).fit(data.measurements)
        flags = screen.flag(data.measurements)
        caught = np.sum(flags & data.defect_mask)
        assert caught / data.defect_mask.sum() > 0.8

    def test_ica_screen_overkill_is_small(self, data):
        screen = ICAIddqScreen(
            n_components=3, threshold=6.0, random_state=0
        ).fit(data.measurements)
        flags = screen.flag(data.measurements)
        overkill = np.sum(flags & ~data.defect_mask)
        assert overkill / (~data.defect_mask).sum() < 0.02

    def test_total_current_screen_misses_masked_defects(self, data):
        # the [25] motivation: background variation hides the defect
        flags, limit = total_current_screen(data.measurements)
        caught = np.sum(flags & data.defect_mask)
        assert caught / data.defect_mask.sum() < 0.3
        assert limit > 0

    def test_unfitted_screen_raises(self, data):
        with pytest.raises(RuntimeError):
            ICAIddqScreen().score(data.measurements)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generate_iddq_data(n_chips=5)
        with pytest.raises(ValueError):
            generate_iddq_data(defect_rate=1.5)


class TestWaferAnalysis:
    def test_basis_columns_match_signature_field(self):
        wafer_map = make_wafer_map()
        signature = WaferSignature(radial=0.7, tilt=(0.2, -0.3), offset=1.1)
        field = signature.field(wafer_map)
        fitted = fit_signature(wafer_map, field)
        np.testing.assert_allclose(
            fitted, [1.1, 0.7, 0.2, -0.3], atol=1e-9
        )

    def test_fit_signature_rejects_wrong_length(self):
        wafer_map = make_wafer_map()
        with pytest.raises(ValueError):
            fit_signature(wafer_map, np.zeros(3))

    def test_basis_shape(self):
        wafer_map = make_wafer_map()
        assert spatial_basis(wafer_map).shape == (wafer_map.n_dies, 4)

    def test_lot_analysis_flags_abnormal_wafers(self):
        wafer_map, values, abnormal = generate_wafer_lot(
            n_wafers=80, abnormal_rate=0.1, random_state=2
        )
        result = InterWaferAnalysis(random_state=0).run(wafer_map, values)
        caught = np.sum(result.abnormal_flags & abnormal)
        missed = np.sum(~result.abnormal_flags & abnormal)
        false = np.sum(result.abnormal_flags & ~abnormal)
        assert caught >= abnormal.sum() - 1
        assert missed <= 1
        assert false <= 2

    def test_modes_cluster_radial_vs_tilt(self):
        wafer_map, values, abnormal = generate_wafer_lot(
            n_wafers=120, abnormal_rate=0.15, random_state=5
        )
        result = InterWaferAnalysis(
            n_modes=2, random_state=0
        ).run(wafer_map, values)
        if result.abnormal_clusters is None:
            pytest.skip("too few abnormal wafers flagged in this draw")
        flagged_signatures = result.signatures[result.abnormal_flags]
        # one cluster should be radial-heavy, the other tilt-heavy
        radial_by_cluster = [
            np.abs(flagged_signatures[result.abnormal_clusters == k, 1]).mean()
            for k in range(2)
        ]
        tilt_by_cluster = [
            np.abs(
                flagged_signatures[result.abnormal_clusters == k, 2:]
            ).mean()
            for k in range(2)
        ]
        radial_mode = int(np.argmax(radial_by_cluster))
        assert tilt_by_cluster[1 - radial_mode] > tilt_by_cluster[radial_mode]

    def test_lot_generator_validation(self):
        with pytest.raises(ValueError):
            generate_wafer_lot(n_wafers=2)
