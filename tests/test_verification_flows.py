"""Tests for the Fig. 7 selection flow and Table 1 refinement flow.

These run scaled-down versions of the benchmark experiments so the suite
stays fast; the full-size runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.verification import (
    NoveltyTestSelector,
    Randomizer,
    SPECIAL_POINT_NAMES,
    TemplateRefinementFlow,
    TestTemplate,
    rule_to_knob_constraints,
    run_selection_experiment,
)
from repro.learn.rules import Condition, Rule


@pytest.fixture(scope="module")
def selection_result():
    rand = Randomizer(random_state=3)
    programs = list(rand.stream(TestTemplate(), 250))
    selector = NoveltyTestSelector(nu=0.1, seed_count=8, retrain_every=15)
    return run_selection_experiment(programs, selector=selector), selector


class TestNoveltySelection:
    def test_selection_simulates_fewer_tests(self, selection_result):
        result, _ = selection_result
        assert result.n_selected < result.n_stream * 0.6

    def test_selection_matches_most_coverage(self, selection_result):
        result, _ = selection_result
        assert result.coverage_match_fraction > 0.9

    def test_positive_saving_at_matched_coverage(self, selection_result):
        result, _ = selection_result
        if result.selection_tests_to_match is not None:
            assert result.saving > 0.2

    def test_traces_monotone(self, selection_result):
        result, _ = selection_result
        assert list(result.baseline_trace.coverage) == sorted(
            result.baseline_trace.coverage
        )
        assert list(result.selection_trace.coverage) == sorted(
            result.selection_trace.coverage
        )

    def test_selector_accepts_seeds_unconditionally(self):
        rand = Randomizer(random_state=0)
        selector = NoveltyTestSelector(seed_count=5)
        accepted = [
            selector.consider(p) for p in rand.stream(TestTemplate(), 5)
        ]
        assert all(accepted)

    def test_selector_rejects_some_later_tests(self):
        rand = Randomizer(random_state=0)
        selector = NoveltyTestSelector(
            nu=0.05, seed_count=10, retrain_every=10
        )
        decisions = [
            selector.consider(p) for p in rand.stream(TestTemplate(), 120)
        ]
        assert not all(decisions)

    def test_lexical_backstop_counts_accepts(self, selection_result):
        _, selector = selection_result
        assert selector.n_lexical_accepts > 0

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            run_selection_experiment([])


class TestRuleToConstraints:
    def test_greater_than_opens_upward(self):
        rule = Rule(
            conditions=(Condition(3, ">", 0.2),), target_class=1
        )
        constraints = rule_to_knob_constraints(rule)
        knob = list(constraints)[0]
        low, high = constraints[knob]
        assert low == pytest.approx(0.2)
        assert high == np.inf

    def test_less_equal_caps_downward(self):
        rule = Rule(conditions=(Condition(0, "<=", 0.3),), target_class=1)
        constraints = rule_to_knob_constraints(rule)
        low, high = list(constraints.values())[0]
        assert low == -np.inf
        assert high == pytest.approx(0.3)

    def test_two_conditions_same_knob_merge(self):
        rule = Rule(
            conditions=(
                Condition(1, ">", 0.1),
                Condition(1, "<=", 0.5),
            ),
            target_class=1,
        )
        constraints = rule_to_knob_constraints(rule)
        low, high = list(constraints.values())[0]
        assert (low, high) == (pytest.approx(0.1), pytest.approx(0.5))


class TestRefinementFlow:
    @pytest.fixture(scope="class")
    def flow(self):
        rand = Randomizer(random_state=42)
        flow = TemplateRefinementFlow(rand)
        flow.run(TestTemplate(), stage_sizes=(250, 80, 40))
        return flow

    def test_three_stages_recorded(self, flow):
        assert [s.n_tests for s in flow.stages] == [250, 80, 40]

    def test_original_covers_only_easy_points(self, flow):
        original = flow.stages[0]
        covered = set(original.covered_points())
        assert "A0" in covered
        assert "A1" in covered
        rare = {"A2", "A5", "A6"}
        missed_rare = rare - covered
        assert len(missed_rare) >= 2

    def test_refined_stages_lift_coverage(self, flow):
        original_covered = set(flow.stages[0].covered_points())
        final_covered = set(flow.stages[-1].covered_points())
        assert len(final_covered) > len(original_covered)

    def test_final_stage_covers_nearly_all_points(self, flow):
        final_covered = set(flow.stages[-1].covered_points())
        assert len(final_covered) >= len(SPECIAL_POINT_NAMES) - 1

    def test_hit_rate_per_test_increases(self, flow):
        original = flow.stages[0]
        final = flow.stages[-1]
        original_rate = sum(original.row()) / original.n_tests
        final_rate = sum(final.row()) / final.n_tests
        assert final_rate > original_rate * 2

    def test_learning_rounds_produce_rules(self, flow):
        assert len(flow.rounds) == 2
        assert flow.rounds[0].rules
        # round-1 learning can only target points the original hit
        assert set(flow.rounds[0].target_points) <= set(SPECIAL_POINT_NAMES)

    def test_constraints_push_behavior_knobs(self, flow):
        pushed = set()
        for round_record in flow.rounds:
            pushed |= set(round_record.constraints)
        behaviour_knobs = {
            "misaligned_fraction",
            "address_reuse",
            "store_fraction",
            "load_fraction",
            "atomic_fraction",
            "length",
            "line_cross_fraction",
            "barrier_fraction",
            "mmio_fraction",
            "scratchpad_fraction",
        }
        assert pushed
        assert pushed <= behaviour_knobs

    def test_table_rows_match_stages(self, flow):
        table = flow.table()
        assert len(table) == 3
        names = [row[0] for row in table]
        assert names == ["original", "learning_1", "learning_2"]
