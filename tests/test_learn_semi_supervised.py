"""Tests for semi-supervised learning (Section 2's third regime)."""

import numpy as np
import pytest

from repro.learn import (
    UNLABELED,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    LabelPropagation,
    SelfTrainingClassifier,
)


@pytest.fixture
def two_moons_like(rng):
    """Two dense blobs, only one labeled sample per class."""
    X = np.vstack(
        [rng.normal(-2.0, 0.5, size=(60, 2)), rng.normal(2.0, 0.5, size=(60, 2))]
    )
    y_true = np.repeat([0, 1], 60)
    y = np.full(120, UNLABELED)
    y[0] = 0
    y[60] = 1
    return X, y, y_true


class TestLabelPropagation:
    def test_two_labels_color_both_clusters(self, two_moons_like):
        X, y, y_true = two_moons_like
        model = LabelPropagation(gamma=0.5).fit(X, y)
        accuracy = float(np.mean(model.transduction_ == y_true))
        assert accuracy > 0.95

    def test_labeled_samples_stay_clamped(self, two_moons_like):
        X, y, _ = two_moons_like
        model = LabelPropagation(gamma=0.5).fit(X, y)
        assert model.transduction_[0] == 0
        assert model.transduction_[60] == 1

    def test_predict_on_new_points(self, two_moons_like):
        X, y, _ = two_moons_like
        model = LabelPropagation(gamma=0.5).fit(X, y)
        predictions = model.predict(np.array([[-2.0, 0.0], [2.0, 0.0]]))
        assert predictions.tolist() == [0, 1]

    def test_label_distributions_are_distributions(self, two_moons_like):
        X, y, _ = two_moons_like
        model = LabelPropagation(gamma=0.5).fit(X, y)
        np.testing.assert_allclose(
            model.label_distributions_.sum(axis=1), 1.0, atol=1e-9
        )

    def test_requires_labeled_samples(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LabelPropagation().fit(X, np.full(10, UNLABELED))

    def test_requires_two_classes(self, rng):
        X = rng.normal(size=(10, 2))
        y = np.full(10, UNLABELED)
        y[0] = 0
        with pytest.raises(ValueError):
            LabelPropagation().fit(X, y)

    def test_rejects_bad_gamma(self, two_moons_like):
        X, y, _ = two_moons_like
        with pytest.raises(ValueError):
            LabelPropagation(gamma=0.0).fit(X, y)


class TestSelfTraining:
    def test_improves_over_labeled_only_baseline(self, rng):
        X = np.vstack(
            [rng.normal(-1.5, 0.8, size=(100, 2)),
             rng.normal(1.5, 0.8, size=(100, 2))]
        )
        y_true = np.repeat([0, 1], 100)
        y = np.full(200, UNLABELED)
        labeled_indices = [0, 1, 2, 100, 101, 102]
        y[labeled_indices] = y_true[labeled_indices]

        X_test = np.vstack(
            [rng.normal(-1.5, 0.8, size=(100, 2)),
             rng.normal(1.5, 0.8, size=(100, 2))]
        )
        y_test = np.repeat([0, 1], 100)

        baseline = GaussianNaiveBayes().fit(
            X[labeled_indices], y[labeled_indices]
        )
        semi = SelfTrainingClassifier(
            GaussianNaiveBayes(), threshold=0.95
        ).fit(X, y)
        assert semi.score(X_test, y_test) >= baseline.score(X_test, y_test)
        assert semi.n_pseudo_labeled_ > 0

    def test_threshold_one_promotes_only_certainties(self, rng):
        X = rng.normal(size=(50, 2))
        y = np.full(50, UNLABELED)
        y[:4] = [0, 0, 1, 1]
        X[:2] -= 4.0
        X[2:4] += 4.0
        model = SelfTrainingClassifier(
            KNeighborsClassifier(n_neighbors=3), threshold=1.0
        ).fit(X, y)
        # kNN proba of 3 agreeing neighbors is exactly 1 -> some promoted
        assert model.rounds_ >= 1

    def test_transduction_covers_labeled(self, two_moons_like):
        X, y, y_true = two_moons_like
        model = SelfTrainingClassifier(
            GaussianNaiveBayes(), threshold=0.9
        ).fit(X, y)
        assert model.transduction_[0] == 0
        assert model.transduction_[60] == 1

    def test_rejects_bad_threshold(self, two_moons_like):
        X, y, _ = two_moons_like
        with pytest.raises(ValueError):
            SelfTrainingClassifier(GaussianNaiveBayes(),
                                   threshold=0.4).fit(X, y)

    def test_requires_some_labels(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            SelfTrainingClassifier(GaussianNaiveBayes()).fit(
                X, np.full(10, UNLABELED)
            )
