"""Batch-vs-stream equivalence suite for the ``partial_fit`` substrate.

The strong contract (exact-moment estimators): any micro-batching of a
dataset — including any permutation of the batches — produces a model
bitwise identical to one-shot ``fit`` on the concatenation.  The weak
contract (SGD): the stream is order-dependent but fully deterministic
for a fixed seed and batch sequence.
"""

import pickle

import numpy as np
import pytest

from repro.core import ExactMoments, supports_partial_fit
from repro.cluster import NearestCentroid
from repro.learn import (
    BernoulliNaiveBayes,
    GaussianNaiveBayes,
    SGDLogisticRegression,
)
from repro.mfgtest import StreamingMahalanobisDetector


def _micro_batches(n, seed):
    """Random uneven cut points over ``range(n)`` — at least two blocks."""
    gen = np.random.default_rng(seed)
    cuts = sorted(set(gen.integers(1, n, size=4).tolist()))
    edges = [0] + cuts + [n]
    return [(start, stop) for start, stop in zip(edges[:-1], edges[1:])
            if stop > start]


def _stream(estimator, X, y, blocks, classes):
    for start, stop in blocks:
        estimator.partial_fit(X[start:stop], y[start:stop], classes=classes)
    return estimator


@pytest.fixture
def wide_blobs(rng):
    """Three overlapping classes, five features, ~200 rows."""
    centers = np.array([
        [0.0, 0.0, 1.0, -1.0, 0.5],
        [2.5, -1.0, 0.0, 1.0, -0.5],
        [-2.0, 1.5, -1.0, 0.0, 1.0],
    ])
    sizes = (70, 65, 68)
    X = np.vstack([
        rng.normal(center, 1.1, size=(size, 5))
        for center, size in zip(centers, sizes)
    ])
    y = np.concatenate([
        np.full(size, label) for label, size in enumerate(sizes)
    ])
    return X, y


# ---------------------------------------------------------------------
# ExactMoments
# ---------------------------------------------------------------------


class TestExactMoments:
    def test_mean_variance_match_numpy(self, rng):
        X = rng.normal(3.0, 2.0, size=(50, 4))
        moments = ExactMoments(4, track_squares=True).update(X)
        np.testing.assert_allclose(moments.mean(), X.mean(axis=0),
                                   rtol=1e-12)
        np.testing.assert_allclose(moments.variance(ddof=0),
                                   X.var(axis=0), rtol=1e-9)
        np.testing.assert_allclose(moments.variance(ddof=1),
                                   X.var(axis=0, ddof=1), rtol=1e-9)

    def test_covariance_matches_numpy(self, rng):
        X = rng.normal(0.0, 1.0, size=(60, 3))
        moments = ExactMoments(3, track_cross=True).update(X)
        np.testing.assert_allclose(moments.covariance(ddof=1),
                                   np.cov(X, rowvar=False), rtol=1e-9)

    def test_split_updates_are_bitwise_identical(self, rng):
        """Core exactness property: batching never changes a single bit."""
        X = rng.normal(0.0, 1.0, size=(40, 3))
        one = ExactMoments(3, track_squares=True, track_cross=True).update(X)
        many = ExactMoments(3, track_squares=True, track_cross=True)
        for start, stop in _micro_batches(40, seed=7):
            many.update(X[start:stop])
        assert np.array_equal(one.mean(), many.mean())
        assert np.array_equal(one.variance(ddof=1), many.variance(ddof=1))
        assert np.array_equal(one.covariance(), many.covariance())

    def test_row_permutation_is_bitwise_identical(self, rng):
        X = rng.normal(0.0, 1.0, size=(30, 2))
        forward = ExactMoments(2, track_squares=True).update(X)
        backward = ExactMoments(2, track_squares=True).update(X[::-1])
        assert np.array_equal(forward.mean(), backward.mean())
        assert np.array_equal(forward.variance(), backward.variance())

    def test_merge_equals_combined_update(self, rng):
        X = rng.normal(0.0, 1.0, size=(25, 2))
        combined = ExactMoments(2, track_squares=True).update(X)
        left = ExactMoments(2, track_squares=True).update(X[:11])
        right = ExactMoments(2, track_squares=True).update(X[11:])
        left.merge(right)
        assert left.count == combined.count
        assert np.array_equal(left.mean(), combined.mean())
        assert np.array_equal(left.variance(), combined.variance())

    def test_degenerate_and_error_cases(self):
        moments = ExactMoments(2, track_squares=True)
        with pytest.raises(ValueError):
            moments.mean()
        moments.update(np.ones((1, 2)))
        assert np.array_equal(moments.variance(ddof=1), np.zeros(2))
        with pytest.raises(ValueError):
            moments.update(np.ones((3, 5)))
        with pytest.raises(ValueError):
            ExactMoments(0)
        with pytest.raises(ValueError):
            ExactMoments(1).covariance()


# ---------------------------------------------------------------------
# naive Bayes: the strong (bitwise) contract
# ---------------------------------------------------------------------


class TestGaussianNBStreamEquivalence:
    def _assert_same_model(self, a, b):
        assert np.array_equal(a.classes_, b.classes_)
        assert np.array_equal(a.theta_, b.theta_)
        assert np.array_equal(a.var_, b.var_)
        assert np.array_equal(a.class_prior_, b.class_prior_)

    def test_single_partial_fit_equals_fit(self, wide_blobs):
        X, y = wide_blobs
        batch = GaussianNaiveBayes().fit(X, y)
        stream = GaussianNaiveBayes().partial_fit(
            X, y, classes=np.unique(y)
        )
        self._assert_same_model(batch, stream)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_any_micro_batching_equals_fit(self, wide_blobs, seed):
        X, y = wide_blobs
        batch = GaussianNaiveBayes().fit(X, y)
        stream = _stream(GaussianNaiveBayes(), X, y,
                         _micro_batches(len(X), seed), np.unique(y))
        self._assert_same_model(batch, stream)
        assert np.array_equal(batch.predict(X), stream.predict(X))
        assert np.array_equal(batch.predict_proba(X),
                              stream.predict_proba(X))

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_batch_permutation_equals_fit(self, wide_blobs, seed):
        X, y = wide_blobs
        batch = GaussianNaiveBayes().fit(X, y)
        blocks = _micro_batches(len(X), seed)
        gen = np.random.default_rng(seed)
        permuted = [blocks[i] for i in gen.permutation(len(blocks))]
        stream = _stream(GaussianNaiveBayes(), X, y, permuted, np.unique(y))
        self._assert_same_model(batch, stream)

    def test_pickle_midstream_continues_bitwise(self, wide_blobs):
        X, y = wide_blobs
        classes = np.unique(y)
        half = len(X) // 2
        straight = GaussianNaiveBayes().partial_fit(
            X[:half], y[:half], classes=classes
        )
        revived = pickle.loads(pickle.dumps(straight))
        straight.partial_fit(X[half:], y[half:])
        revived.partial_fit(X[half:], y[half:])
        self._assert_same_model(straight, revived)

    def test_class_absent_from_stream_so_far(self, wide_blobs):
        """Declared-but-unseen classes get zero prior, never win predict."""
        X, y = wide_blobs
        model = GaussianNaiveBayes().partial_fit(
            X[y != 2], y[y != 2], classes=np.array([0, 1, 2])
        )
        assert model.class_prior_[2] == 0.0
        assert not np.any(model.predict(X) == 2)
        model.partial_fit(X[y == 2], y[y == 2])
        assert model.class_prior_[2] > 0.0
        assert np.any(model.predict(X) == 2)


class TestBernoulliNBStreamEquivalence:
    def _binary(self, rng):
        X = (rng.uniform(size=(150, 8)) < 0.4).astype(float)
        y = (X[:, :4].sum(axis=1) > X[:, 4:].sum(axis=1)).astype(int)
        return X, y

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_any_micro_batching_equals_fit(self, rng, seed):
        X, y = self._binary(rng)
        batch = BernoulliNaiveBayes().fit(X, y)
        stream = _stream(BernoulliNaiveBayes(), X, y,
                         _micro_batches(len(X), seed), np.unique(y))
        assert np.array_equal(batch.classes_, stream.classes_)
        assert np.array_equal(batch.feature_log_prob_,
                              stream.feature_log_prob_)
        assert np.array_equal(batch.class_log_prior_,
                              stream.class_log_prior_)
        assert np.array_equal(batch.predict(X), stream.predict(X))

    def test_batch_permutation_equals_fit(self, rng):
        X, y = self._binary(rng)
        batch = BernoulliNaiveBayes().fit(X, y)
        blocks = _micro_batches(len(X), seed=3)
        stream = _stream(BernoulliNaiveBayes(), X, y, blocks[::-1],
                         np.unique(y))
        assert np.array_equal(batch.feature_log_prob_,
                              stream.feature_log_prob_)
        assert np.array_equal(batch.class_log_prior_,
                              stream.class_log_prior_)


# ---------------------------------------------------------------------
# the classes= contract
# ---------------------------------------------------------------------


@pytest.mark.parametrize("estimator_cls",
                         [GaussianNaiveBayes, BernoulliNaiveBayes,
                          NearestCentroid])
class TestClassesContract:
    def test_first_call_requires_classes(self, estimator_cls, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="classes"):
            estimator_cls().partial_fit(X, y)

    def test_unseen_label_is_rejected(self, estimator_cls, blobs):
        X, y = blobs
        model = estimator_cls().partial_fit(X, y, classes=np.array([0, 1]))
        alien = np.full(len(y), 7)
        with pytest.raises(ValueError):
            model.partial_fit(X, alien)

    def test_changing_classes_is_rejected(self, estimator_cls, blobs):
        X, y = blobs
        model = estimator_cls().partial_fit(X, y, classes=np.array([0, 1]))
        with pytest.raises(ValueError):
            model.partial_fit(X, y, classes=np.array([0, 1, 2]))


# ---------------------------------------------------------------------
# NearestCentroid
# ---------------------------------------------------------------------


class TestNearestCentroidStreaming:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stream_equals_fit_bitwise(self, wide_blobs, seed):
        X, y = wide_blobs
        batch = NearestCentroid().fit(X, y)
        stream = _stream(NearestCentroid(), X, y,
                         _micro_batches(len(X), seed), np.unique(y))
        assert np.array_equal(batch.centroids_, stream.centroids_)
        assert np.array_equal(batch.predict(X), stream.predict(X))

    def test_classifies_separated_blobs(self, blobs):
        X, y = blobs
        model = NearestCentroid().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_unseen_class_never_predicted(self, blobs):
        X, y = blobs
        model = NearestCentroid().partial_fit(
            X, y, classes=np.array([0, 1, 2])
        )
        assert not np.any(model.predict(X) == 2)


# ---------------------------------------------------------------------
# SGD: the seeded (weak) contract
# ---------------------------------------------------------------------


class TestSGDSeededContract:
    def test_fit_is_deterministic_for_fixed_seed(self, blobs):
        X, y = blobs
        a = SGDLogisticRegression(random_state=0).fit(X, y)
        b = SGDLogisticRegression(random_state=0).fit(X, y)
        assert np.array_equal(a.coef_, b.coef_)
        assert a.intercept_ == b.intercept_

    def test_same_stream_is_deterministic(self, blobs):
        X, y = blobs
        classes = np.unique(y)
        a, b = SGDLogisticRegression(), SGDLogisticRegression()
        for start, stop in _micro_batches(len(X), seed=5):
            a.partial_fit(X[start:stop], y[start:stop], classes=classes)
            b.partial_fit(X[start:stop], y[start:stop], classes=classes)
        assert np.array_equal(a.coef_, b.coef_)
        assert a.intercept_ == b.intercept_

    def test_learns_separable_problem(self, blobs):
        X, y = blobs
        model = SGDLogisticRegression(max_epochs=20, random_state=0)
        model.fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_streamed_model_learns(self, blobs):
        X, y = blobs
        classes = np.unique(y)
        model = SGDLogisticRegression()
        for _ in range(15):
            for start, stop in _micro_batches(len(X), seed=2):
                model.partial_fit(X[start:stop], y[start:stop],
                                  classes=classes)
        assert (model.predict(X) == y).mean() > 0.95

    def test_binary_only(self, wide_blobs):
        X, y = wide_blobs
        with pytest.raises(ValueError):
            SGDLogisticRegression().fit(X, y)
        with pytest.raises(ValueError):
            SGDLogisticRegression().partial_fit(X, y, classes=np.unique(y))


# ---------------------------------------------------------------------
# StreamingMahalanobisDetector
# ---------------------------------------------------------------------


class TestStreamingMahalanobis:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stream_equals_fit_bitwise(self, rng, seed):
        X = rng.normal(0.0, 1.0, size=(200, 4))
        batch = StreamingMahalanobisDetector().fit(X)
        stream = StreamingMahalanobisDetector()
        for start, stop in _micro_batches(len(X), seed):
            stream.partial_fit(X[start:stop])
        assert np.array_equal(batch.location_, stream.location_)
        assert np.array_equal(batch.precision_, stream.precision_)
        assert np.array_equal(batch.score_samples(X),
                              stream.score_samples(X))

    def test_flags_planted_outliers(self, rng):
        X = rng.normal(0.0, 1.0, size=(400, 3))
        model = StreamingMahalanobisDetector(
            threshold_quantile=0.99
        ).fit(X)
        spikes = np.full((5, 3), 12.0)
        assert model.is_outlier(spikes).all()
        assert model.is_outlier(X).mean() < 0.05


# ---------------------------------------------------------------------
# capability probe
# ---------------------------------------------------------------------


def test_supports_partial_fit_probe():
    assert supports_partial_fit(GaussianNaiveBayes())
    assert supports_partial_fit(StreamingMahalanobisDetector())

    class Plain:
        def fit(self, X, y):
            return self

    assert not supports_partial_fit(Plain())
