"""Chaos suite for the online scoring front end (repro.serve).

The four injected faults from the serving acceptance contract:

- a **slow model** (deadline overruns -> typed ``overloaded`` -> breaker
  opens -> twin degradation),
- a **poisoned request** (typed ``invalid``; the breaker never notices),
- a **crashed scorer process** (broken pool -> degraded answer -> pool
  rebuild -> exact recovery),
- a **breaker flap** (fail, open, degraded traffic, half-open probes,
  re-open, eventual recovery to the exact path).

Throughout: every request gets a typed :class:`ScoreResponse` — no
request may hang, and no fault may leak an unhandled exception.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import instrument
from repro.mfgtest.outlier import RobustMahalanobisDetector
from repro.serve import ModelRegistry, ScoringService, ServePolicy
from repro.testing.chaos import (
    ChaosError,
    CrashingScorer,
    FailingScorer,
    SlowScorer,
)

pytestmark = pytest.mark.chaos

RESPONSE_BOUND_SECONDS = 5.0  # generous CI bound: "typed, not hung"


@pytest.fixture()
def isolated_metrics():
    registry = instrument.MetricsRegistry()
    previous = instrument.set_metrics_registry(registry)
    try:
        yield registry
    finally:
        instrument.set_metrics_registry(previous)


def _fit_pair(seed=0, n=160, p=5):
    """An exact detector and a (differently fitted) stand-in twin."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    exact = RobustMahalanobisDetector().fit(X)
    twin = RobustMahalanobisDetector(trim_fraction=0.2).fit(X)
    return X, exact, twin


def _score(service, endpoint, payload, deadline=None):
    started = time.perf_counter()
    response = service.score_sync(endpoint, payload, deadline)
    elapsed = time.perf_counter() - started
    assert elapsed < RESPONSE_BOUND_SECONDS, (
        f"request took {elapsed:.1f}s — the typed-response contract "
        f"forbids hangs"
    )
    return response


class TestSlowModel:
    def test_deadline_overrun_is_typed_then_breaker_degrades(
            self, tmp_path, isolated_metrics):
        X, exact, twin = _fit_pair()
        slow = SlowScorer(
            exact, seconds=0.4, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("slow", slow, twin=twin)
        policy = ServePolicy(
            deadline_seconds=0.05, failure_threshold=3,
            recovery_seconds=60.0, max_wait_seconds=0.0,
        )
        with ScoringService(registry, policy) as service:
            service.add_endpoint("slow")
            for _ in range(3):
                response = _score(service, "slow", X[:4])
                assert response.status == "overloaded"
                assert response.reason == "deadline"
            # three timeouts tripped the breaker: traffic now lands on
            # the twin, fast and tagged
            response = _score(service, "slow", X[:4])
            assert response.status == "ok"
            assert response.degraded is True
            assert response.served_by == "twin"
            assert "circuit open" in response.reason
            expected = twin.score_samples(X[:4])
            np.testing.assert_array_equal(
                np.asarray(response.scores), expected
            )
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.deadline_timeouts"] == 3
        assert counters["serve.degraded"] >= 1

    def test_slow_model_without_twin_stays_typed(
            self, tmp_path, isolated_metrics):
        X, exact, _ = _fit_pair()
        slow = SlowScorer(
            exact, seconds=0.4, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("slow", slow)
        policy = ServePolicy(
            deadline_seconds=0.05, failure_threshold=2,
            recovery_seconds=60.0, max_wait_seconds=0.0,
        )
        with ScoringService(registry, policy) as service:
            service.add_endpoint("slow")
            for _ in range(2):
                assert _score(service, "slow", X[:2]).status == "overloaded"
            # breaker open, nothing to degrade to: typed refusal
            response = _score(service, "slow", X[:2])
            assert response.status == "unavailable"
            assert response.scores is None


class TestPoisonedRequest:
    def test_poison_is_invalid_and_breaker_ignores_it(
            self, tmp_path, isolated_metrics):
        X, exact, _ = _fit_pair()
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("det", exact)
        with ScoringService(registry, ServePolicy()) as service:
            endpoint = service.add_endpoint("det")
            poisoned = X[:3].copy()
            poisoned[1, 2] = np.nan
            for bad, why in [
                (poisoned, "non-finite"),
                (np.array([]), "empty"),
                ([[["nested"]]], "malformed"),
                (np.ones((2, 2, 2)), "1-D or 2-D"),
            ]:
                response = _score(service, "det", bad)
                assert response.status == "invalid"
                assert why in response.reason
                assert response.scores is None
            # the scorer never saw the poison and the breaker is
            # untouched: the next healthy request runs exact
            assert endpoint.breaker.snapshot()["failures"] == 0
            good = _score(service, "det", X[:3])
            assert good.status == "ok" and good.served_by == "exact"
            np.testing.assert_array_equal(
                np.asarray(good.scores), exact.score_samples(X[:3])
            )
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.poisoned"] == 4
        assert counters["serve.invalid"] == 4

    def test_unknown_endpoint_is_invalid_not_error(
            self, tmp_path, isolated_metrics):
        registry = ModelRegistry(tmp_path / "models")
        with ScoringService(registry, ServePolicy()) as service:
            response = _score(service, "ghost", [[1.0, 2.0]])
            assert response.status == "invalid"
            assert "unknown endpoint" in response.reason


class TestCrashedScorerProcess:
    def test_crash_degrades_then_pool_rebuild_recovers(
            self, tmp_path, isolated_metrics):
        X, exact, twin = _fit_pair()
        crasher = CrashingScorer(
            exact, crash_times=1, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("crashy", crasher, twin=twin)
        policy = ServePolicy(
            executor="process", max_workers=1, failure_threshold=5,
            recovery_seconds=60.0, max_wait_seconds=0.0,
            deadline_seconds=30.0,
        )
        with ScoringService(registry, policy) as service:
            service.add_endpoint("crashy")
            # call 1: the worker process dies mid-score; the pool breaks
            # and the twin answers, tagged
            first = _score(service, "crashy", X[:3])
            assert first.status == "ok"
            assert first.degraded is True
            assert first.served_by == "twin"
            assert "crash" in first.reason
            # call 2: breaker still closed (1 < threshold), the pool is
            # rebuilt, the crash budget is spent -> exact path recovers
            second = _score(service, "crashy", X[:3])
            assert second.status == "ok"
            assert second.degraded is False
            assert second.served_by == "exact"
            np.testing.assert_array_equal(
                np.asarray(second.scores), exact.score_samples(X[:3])
            )
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.pool_breaks"] == 1
        assert counters["serve.endpoint.crashy.pool_rebuilds"] == 2


class TestBreakerFlap:
    def test_flap_open_probe_reopen_then_recover(
            self, tmp_path, isolated_metrics):
        X, exact, twin = _fit_pair()
        failer = FailingScorer(
            exact, fail_times=3, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("flappy", failer, twin=twin)
        recovery = 0.05
        policy = ServePolicy(
            failure_threshold=2, recovery_seconds=recovery,
            probe_successes=1, breaker_jitter=0.25,
            max_wait_seconds=0.0, deadline_seconds=30.0,
        )
        with ScoringService(registry, policy) as service:
            endpoint = service.add_endpoint("flappy")
            breaker = endpoint.breaker
            # failures 1-2: exact raises ChaosError, the twin covers,
            # and the second failure opens the breaker
            for index in range(2):
                response = _score(service, "flappy", X[:2])
                assert response.status == "ok"
                assert response.degraded is True
                assert "scorer failed" in response.reason
            assert breaker.state == "open"
            assert failer.calls() == 2
            # while open: traffic degrades without touching the scorer
            response = _score(service, "flappy", X[:2])
            assert response.degraded is True
            assert failer.calls() == 2
            # after the recovery window a probe goes through, the
            # scorer fails its 3rd (final) injected failure, and the
            # breaker re-opens — that's the flap
            time.sleep(recovery * 1.5)
            response = _score(service, "flappy", X[:2])
            assert response.degraded is True
            assert failer.calls() == 3
            assert breaker.state == "open"
            assert breaker.snapshot()["open_count"] == 2
            # next probe succeeds (injection exhausted): breaker closes
            # and the exact path is back, bitwise
            time.sleep(recovery * 1.5)
            response = _score(service, "flappy", X[:2])
            assert response.status == "ok"
            assert response.degraded is False
            assert response.served_by == "exact"
            assert breaker.state == "closed"
            np.testing.assert_array_equal(
                np.asarray(response.scores), exact.score_samples(X[:2])
            )
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.breaker.flappy.opened"] == 2
        assert counters["serve.breaker.flappy.closed"] == 1


class TestOverloadShedding:
    def test_queue_depth_and_rate_shedding_are_typed(
            self, tmp_path, isolated_metrics):
        X, exact, _ = _fit_pair()
        slow = SlowScorer(
            exact, seconds=0.3, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("det", slow)
        policy = ServePolicy(
            max_queue_depth=2, failure_threshold=100,
            max_wait_seconds=0.0, max_workers=1,
        )
        with ScoringService(registry, policy) as service:
            service.add_endpoint("det")

            async def flood():
                return await asyncio.gather(*[
                    service.score("det", X[:2]) for _ in range(8)
                ])

            responses = asyncio.run(flood())
        statuses = [response.status for response in responses]
        shed = [r for r in responses if r.status == "overloaded"]
        assert len(shed) >= 4, statuses
        assert all(r.reason == "queue" for r in shed)
        # shed responses came back instantly, not after the slow scorer
        assert all(r.latency_seconds < 0.05 for r in shed)
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.admission.shed_queue"] == len(shed)

    def test_rate_limit_shed(self, tmp_path, isolated_metrics):
        X, exact, _ = _fit_pair()
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("det", exact)
        policy = ServePolicy(rate=1e-3, burst=2, max_wait_seconds=0.0)
        with ScoringService(registry, policy) as service:
            service.add_endpoint("det")
            statuses = [
                _score(service, "det", X[:2]).status for _ in range(4)
            ]
        assert statuses[:2] == ["ok", "ok"]
        assert statuses[2:] == ["overloaded", "overloaded"]
        counters = isolated_metrics.snapshot().counters
        assert counters["serve.admission.shed_rate"] == 2


class TestScorerErrorsWithoutTwin:
    def test_error_is_typed_and_chaoserror_text_survives(
            self, tmp_path, isolated_metrics):
        X, exact, _ = _fit_pair()
        failer = FailingScorer(
            exact, fail_times=1, state_dir=str(tmp_path / "state"),
        )
        registry = ModelRegistry(tmp_path / "models")
        registry.publish("det", failer)
        with ScoringService(registry, ServePolicy()) as service:
            service.add_endpoint("det")
            response = _score(service, "det", X[:2])
            assert response.status == "error"
            assert "injected scorer failure" in response.reason
            with pytest.raises(Exception) as excinfo:
                response.raise_for_status()
            assert "error" in str(excinfo.value)
            # recovery needs no breaker transition (1 < threshold)
            assert _score(service, "det", X[:2]).status == "ok"
