"""Telemetry layer tests: cross-backend span propagation, the
monotonic timebase, the metrics registry, and trace export.

The headline regression here is the dropped-worker-span bug: spans
emitted inside ``ProcessBackend`` (or ``ThreadBackend``) workers used
to vanish because the ``recording()`` hook is thread- and
process-local.  The runtime now ships worker spans back with task
results and merges them deterministically, so span accounting must be
identical on every backend.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import (
    CheckpointStore,
    EventLog,
    GridSearchCV,
    KFold,
    MetricsRegistry,
    Pipeline,
    RetryPolicy,
    SerialBackend,
    StandardScaler,
    WorkerError,
    cross_validate,
    get_backend,
    metrics_snapshot,
    recording,
)
from repro.core import instrument
from repro.core.instrument import Histogram, P2Quantile
from repro.flows import format_event_log, format_metrics, run_report
from repro.kernels import GramEngine, RBFKernel
from repro.learn import LogisticRegression
from repro.testing.chaos import SlowEstimator

BACKENDS = ["serial", "thread", "process"]


@pytest.fixture
def registry():
    """Isolate the process-wide metrics registry for one test."""
    fresh = MetricsRegistry()
    previous = instrument.set_metrics_registry(fresh)
    try:
        yield fresh
    finally:
        instrument.set_metrics_registry(previous)


# module-level task functions so the process backend can pickle them
def _emit_tick(payload):
    instrument.emit("tick", 0.001, payload=int(payload))
    return os.getpid()


def _emit_then_fail(payload):
    with instrument.span("doomed", payload=int(payload)):
        pass
    raise RuntimeError("persistent failure")


def _pipeline():
    return Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", LogisticRegression(max_iter=60)),
        ]
    )


def _data(n=72, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


# ---------------------------------------------------------------------
# Cross-process/thread span propagation
# ---------------------------------------------------------------------

class TestWorkerSpanPropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_emits_reach_ambient_log(self, backend):
        log = EventLog()
        runner = get_backend(backend, n_workers=2)
        with recording(log):
            pids = runner.map(_emit_tick, list(range(4)))
        ticks = log.spans("tick")
        assert len(ticks) == 4
        # deterministic merge order: ascending task index
        assert [s.meta["task_index"] for s in ticks] == [0, 1, 2, 3]
        assert all(s.meta["backend"] == runner.name for s in ticks)
        assert [s.meta["pid"] for s in ticks] == pids
        assert all(s.meta["payload"] == s.meta["task_index"] for s in ticks)

    def test_process_worker_pids_differ_from_driver(self):
        log = EventLog()
        runner = get_backend("process", n_workers=2)
        with recording(log):
            runner.map(_emit_tick, list(range(3)))
        pids = {s.meta["pid"] for s in log.spans("tick")}
        assert pids and os.getpid() not in pids

    def test_span_counts_backend_invariant(self):
        """Regression: the same workload must record the same spans on
        serial, thread, and process backends (worker spans used to be
        silently dropped off-serial)."""
        X, y = _data()
        counts = {}
        for backend in BACKENDS:
            log = EventLog()
            cross_validate(
                _pipeline(), X, y, cv=KFold(3), backend=backend,
                n_workers=2, event_log=log,
            )
            counts[backend] = {
                name: entry["count"] for name, entry in log.summary().items()
            }
        assert counts["serial"] == counts["thread"] == counts["process"]
        # 3 driver fit spans + 2 pipeline-step spans per fold
        assert counts["serial"]["fit"] == 3 + 3 * 2

    def test_failed_attempts_still_account_their_spans(self):
        log = EventLog()
        backend = SerialBackend(retry=RetryPolicy(
            max_attempts=2, base_delay=0.0, jitter=0.0,
        ))
        with recording(log):
            with pytest.raises(WorkerError):
                backend.map(_emit_then_fail, [0])
        doomed = log.spans("doomed")
        assert [s.meta["attempt"] for s in doomed] == [1, 2]

    def test_no_collection_without_ambient_log(self):
        runner = get_backend("serial")
        assert runner.map(_emit_tick, [0]) == [os.getpid()]

    def test_process_grid_search_accounts_fit_time(self):
        """Acceptance: a process-backend GridSearchCV records per-fit
        spans whose summed fit time matches the serial run within
        measurement noise, with bitwise-identical results."""
        X, y = _data(n=96, seed=7)
        grid = {"base__learning_rate": [0.05, 0.1]}

        def run(backend):
            log = EventLog()
            search = GridSearchCV(
                SlowEstimator(LogisticRegression(max_iter=40),
                              seconds=0.02),
                grid, cv=KFold(3), backend=backend, n_workers=2,
                refit=False, event_log=log,
            )
            search.fit(X, y)
            return search, log

        serial, serial_log = run("serial")
        process, process_log = run("process")

        assert (
            serial.cv_results_["fold_test_scores"].tobytes()
            == process.cv_results_["fold_test_scores"].tobytes()
        )
        assert serial.best_params_ == process.best_params_

        def fit_sum(log):
            spans = [s for s in log.spans("fit") if "candidate" in s.meta]
            assert len(spans) == 6  # 2 candidates x 3 folds
            return sum(s.seconds for s in spans)

        serial_sum, process_sum = fit_sum(serial_log), fit_sum(process_log)
        # each fit sleeps 20ms, so both sums are dominated by the same
        # injected latency; allow generous scheduler noise
        assert serial_sum >= 6 * 0.02
        assert process_sum >= 6 * 0.02
        assert process_sum == pytest.approx(serial_sum, rel=0.5)


# ---------------------------------------------------------------------
# Monotonic timebase
# ---------------------------------------------------------------------

class TestTimebase:
    def test_wall_clock_step_cannot_skew_timestamps(self, monkeypatch):
        log = EventLog()
        anchor = log.origin_wall
        # an NTP step yanks the wall clock backwards mid-run
        monkeypatch.setattr(
            "repro.core.instrument.time.time",
            lambda: anchor - 3600.0,
        )
        with log.span("work"):
            pass
        log.emit("tock", 0.001)
        for span in log.spans():
            assert span.started_at >= anchor - 1.0

    def test_spans_share_one_coherent_timebase(self):
        log = EventLog()
        with log.span("first"):
            time.sleep(0.002)
        with log.span("second"):
            pass
        first, second = log.spans()
        assert second.started_at >= first.started_at + first.seconds - 1e-4

    def test_emit_anchors_to_monotonic_now(self):
        log = EventLog()
        span = log.emit("fit", 0.5)
        assert span.started_at == pytest.approx(log.now() - 0.5, abs=0.05)

    def test_explicit_started_at_respected(self):
        log = EventLog()
        span = log.emit("fit", 0.5, started_at=123.0)
        assert span.started_at == 123.0


# ---------------------------------------------------------------------
# Aggregation and thread safety
# ---------------------------------------------------------------------

class TestAggregation:
    def test_summary_distinguishes_zero_from_unknown_samples(self):
        log = EventLog()
        log.emit("fit", 0.1, n_samples=0)
        log.emit("fit", 0.1)
        log.emit("score", 0.1)
        summary = log.summary()
        # a reported zero stays a zero...
        assert summary["fit"]["n_samples"] == 0
        # ...and never-reported stays unknown
        assert summary["score"]["n_samples"] is None

    def test_summary_accumulates_past_zero(self):
        log = EventLog()
        log.emit("fit", 0.1, n_samples=0)
        log.emit("fit", 0.1, n_samples=5)
        assert log.summary()["fit"]["n_samples"] == 5

    def test_concurrent_emit_span_summary_exact_counts(self):
        """Barrier-synchronized hammer: concurrent emit/span/summary
        must neither lose nor duplicate spans."""
        log = EventLog()
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)
        errors = []

        def hammer(thread_index):
            try:
                barrier.wait(timeout=10)
                for tick in range(per_thread):
                    log.emit("emit", 0.0, thread=thread_index, tick=tick)
                    with log.span("span", thread=thread_index):
                        pass
                    if tick % 50 == 0:
                        log.summary()
                        log.spans("emit")
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(log) == n_threads * per_thread * 2
        summary = log.summary()
        assert summary["emit"]["count"] == n_threads * per_thread
        assert summary["span"]["count"] == n_threads * per_thread
        # no duplicates: every (thread, tick) pair appears exactly once
        seen = {(s.meta["thread"], s.meta["tick"])
                for s in log.spans("emit")}
        assert len(seen) == n_threads * per_thread


# ---------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram_basics(self, registry):
        registry.increment("jobs", 3)
        registry.increment("jobs")
        registry.set_gauge("depth", 7)
        for value in [1.0, 2.0, 3.0, 4.0]:
            registry.observe("latency", value)
        snap = registry.snapshot()
        assert snap.counters["jobs"] == 4
        assert snap.gauges["depth"] == 7
        hist = snap.histograms["latency"]
        assert hist["count"] == 4
        assert hist["total"] == 10.0
        assert hist["min"] == 1.0 and hist["max"] == 4.0

    def test_snapshot_delta_mirrors_gram_counters(self, registry):
        registry.increment("jobs", 5)
        registry.observe("latency", 1.0)
        before = registry.snapshot()
        registry.increment("jobs", 2)
        registry.observe("latency", 3.0)
        delta = registry.snapshot().delta(before)
        assert delta.counters["jobs"] == 2
        assert delta.histograms["latency"]["count"] == 1
        assert delta.histograms["latency"]["total"] == 3.0
        assert delta.histograms["latency"]["mean"] == 3.0

    def test_p2_quantile_tracks_known_distribution(self):
        rng = np.random.default_rng(42)
        estimator = P2Quantile(0.5)
        for value in rng.uniform(0.0, 1.0, size=5000):
            estimator.observe(value)
        assert estimator.value == pytest.approx(0.5, abs=0.05)

        p90 = P2Quantile(0.9)
        for value in rng.uniform(0.0, 10.0, size=5000):
            p90.observe(value)
        assert p90.value == pytest.approx(9.0, abs=0.5)

    def test_p2_quantile_exact_below_five_samples(self):
        estimator = P2Quantile(0.5)
        for value in [3.0, 1.0, 2.0]:
            estimator.observe(value)
        assert estimator.value == 2.0

    def test_histogram_empty_snapshot(self):
        assert Histogram().snapshot()["count"] == 0

    def test_gram_engine_reports_metrics(self, registry):
        engine = GramEngine()
        X = np.random.default_rng(0).normal(size=(20, 3))
        engine.gram(RBFKernel(0.5), X)
        engine.gram(RBFKernel(0.5), X)  # second call hits the cache
        snap = registry.snapshot()
        assert snap.counters["gram.gram_calls"] == 2
        assert snap.counters["gram.blocks_computed"] >= 1
        assert snap.counters["gram.cache_hits"] >= 1
        assert snap.histograms["gram.block_seconds"]["count"] >= 1

    def test_checkpoint_store_reports_metrics(self, registry, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.put("cell", {"score": 1.0})
        assert store.get("cell") == {"score": 1.0}
        assert store.get("absent") is None
        snap = registry.snapshot()
        assert snap.counters["checkpoint.puts"] == 1
        assert snap.counters["checkpoint.hits"] == 1
        assert snap.counters["checkpoint.misses"] == 1
        assert snap.histograms["checkpoint.put_bytes"]["count"] == 1

    def test_retry_policy_reports_delays(self, registry):
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.5)
        policy.delay(0, 1)
        policy.delay(0, 2)
        snap = registry.snapshot()
        assert snap.counters["retry.delays"] == 2
        assert snap.histograms["retry.delay_seconds"]["count"] == 2

    def test_model_selection_reports_metrics(self, registry):
        X, y = _data()
        cross_validate(
            LogisticRegression(max_iter=60), X, y, cv=KFold(3),
        )
        snap = registry.snapshot()
        assert snap.counters["model_selection.cv_runs"] == 1
        assert snap.counters["model_selection.fits"] == 3
        assert snap.counters["parallel.tasks"] == 3
        assert snap.histograms["model_selection.fit_seconds"]["count"] == 3

    def test_discovery_loop_reports_metrics(self, registry):
        from repro.flows import KnowledgeDiscoveryLoop

        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (result >= 2, "more"),
            adjust=lambda context, feedback: context + 1,
            max_iterations=5,
        )
        assert loop.run(0) == 2
        snap = registry.snapshot()
        assert snap.counters["kdl.iterations"] == 3
        assert snap.counters["kdl.accepted"] == 1

    def test_module_level_snapshot_helper(self, registry):
        registry.increment("x")
        assert metrics_snapshot().counters["x"] == 1


# ---------------------------------------------------------------------
# Exporters and reports
# ---------------------------------------------------------------------

class TestExporters:
    def _populated_log(self):
        log = EventLog()
        with recording(log):
            runner = get_backend("thread", n_workers=2)
            runner.map(_emit_tick, list(range(3)))
        log.emit("fit", 0.01, label="candidate[0]", n_samples=40,
                 gram={"cache_hits": 2}, params={"C": np.float64(1.0)})
        return log

    def test_chrome_trace_round_trips_with_required_fields(self, tmp_path):
        log = self._populated_log()
        path = log.export_chrome_trace(tmp_path / "trace.json")
        document = json.loads(open(path).read())
        events = document["traceEvents"]
        assert len(events) == 4
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0
            assert isinstance(event["pid"], int)
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

    def test_jsonl_export_one_record_per_span(self, tmp_path):
        log = self._populated_log()
        path = log.export_jsonl(tmp_path / "spans.jsonl")
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines() if line
        ]
        assert len(lines) == len(log)
        assert all("name" in record and "seconds" in record
                   for record in lines)

    def test_format_event_log_renders_summary(self):
        log = self._populated_log()
        text = format_event_log(log, title="trace")
        assert text.startswith("trace")
        assert "tick" in text and "fit" in text
        # never-reported sample counts print as unknown
        assert " -" in text.splitlines()[-1] or "-" in text

    def test_run_report_includes_metrics(self, registry):
        registry.increment("jobs", 2)
        registry.observe("latency", 0.5)
        log = EventLog()
        log.emit("fit", 0.1, n_samples=10)
        text = run_report(log, registry.snapshot())
        assert "fit" in text
        assert "jobs" in text and "latency" in text

    def test_format_metrics_empty(self):
        assert "no metrics" in format_metrics(MetricsRegistry().snapshot())


# ---------------------------------------------------------------------
# concurrent emission (the serving layer's usage pattern)
# ---------------------------------------------------------------------

class TestConcurrentEmission:
    """The serve front end emits from the asyncio event loop *and* from
    thread-pool scorer workers into the same registry.  Counts must be
    exact under that mix — a lost update in a latency histogram is a
    silent SLO lie."""

    N_THREADS = 8
    PER_THREAD = 400

    def test_barrier_hammer_counts_are_exact(self, registry):
        """N threads released by a barrier, all hammering the same
        counter and histogram: totals must be exactly N * M."""
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(index):
            rng = np.random.default_rng(index)
            values = rng.uniform(0.0, 1.0, size=self.PER_THREAD)
            barrier.wait()
            for value in values:
                registry.increment("hammer.requests")
                registry.observe("hammer.latency", float(value))

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        expected = self.N_THREADS * self.PER_THREAD
        snap = registry.snapshot()
        assert snap.counters["hammer.requests"] == expected
        histogram = snap.histograms["hammer.latency"]
        assert histogram["count"] == expected
        # every observation is in [0, 1]: the running total and extrema
        # must agree with that exactly
        assert 0.0 <= histogram["min"] <= histogram["max"] <= 1.0
        assert abs(histogram["total"]
                   - histogram["mean"] * expected) < 1e-6

    def test_p2_quantiles_sane_under_concurrency(self, registry):
        """P-squared estimates from interleaved uniform streams stay
        near the true quantiles and keep their ordering invariant."""
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(index):
            rng = np.random.default_rng(1000 + index)
            values = rng.uniform(0.0, 1.0, size=self.PER_THREAD)
            barrier.wait()
            for value in values:
                registry.observe("p2.stream", float(value))

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        histogram = registry.snapshot().histograms["p2.stream"]
        assert histogram["count"] == self.N_THREADS * self.PER_THREAD
        assert 0.35 < histogram["p50"] < 0.65
        assert 0.75 < histogram["p90"] < 1.0
        assert histogram["p50"] <= histogram["p90"] <= histogram["p99"]
        assert histogram["p99"] <= histogram["max"] <= 1.0

    def test_asyncio_plus_thread_pool_emitters(self, registry):
        """The serve-shaped mix: event-loop coroutines and thread-pool
        workers emitting concurrently into one registry, exact counts
        on both sides."""
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        n_coros, n_workers, per_emitter = 16, 4, 200

        def worker_emit(index):
            for _ in range(per_emitter):
                registry.increment("mix.worker")
                with registry.timer("mix.latency"):
                    pass
            return index

        async def coro_emit(index):
            for _ in range(per_emitter):
                registry.increment("mix.loop")
                registry.observe("mix.latency", 0.001 * index)
                if index % 7 == 0:
                    await asyncio.sleep(0)

        async def main():
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    loop.run_in_executor(pool, worker_emit, i)
                    for i in range(n_workers)
                ]
                await asyncio.gather(
                    *[coro_emit(i) for i in range(n_coros)], *futures,
                )

        asyncio.run(main())
        snap = registry.snapshot()
        assert snap.counters["mix.loop"] == n_coros * per_emitter
        assert snap.counters["mix.worker"] == n_workers * per_emitter
        total = (n_coros + n_workers) * per_emitter
        assert snap.histograms["mix.latency"]["count"] == total

    def test_timer_context_manager_observes_once_per_use(self, registry):
        with registry.timer("timed.block"):
            time.sleep(0.01)
        record = registry.snapshot().histograms["timed.block"]
        assert record["count"] == 1
        assert record["total"] >= 0.01
        # the timer observes even when the block raises
        with pytest.raises(RuntimeError):
            with registry.timer("timed.block"):
                raise RuntimeError("boom")
        assert registry.snapshot().histograms["timed.block"]["count"] == 2
