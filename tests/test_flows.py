"""Tests for methodology tooling and reporting."""

import pytest

from repro.flows import (
    KnowledgeDiscoveryLoop,
    MethodologyChecklist,
    format_series,
    format_table,
    sparkline,
)


class TestMethodologyChecklist:
    def test_complete_and_viable(self):
        checklist = MethodologyChecklist("novel test selection")
        for principle in MethodologyChecklist.PRINCIPLES:
            checklist.assess(principle, True, "ok")
        assert checklist.is_complete()
        assert checklist.is_viable()

    def test_incomplete_not_viable(self):
        checklist = MethodologyChecklist("x")
        checklist.assess("data availability", True, "logs exist")
        assert not checklist.is_complete()
        assert not checklist.is_viable()

    def test_failed_principle_not_viable(self):
        # the Fig. 12 case: a guaranteed-result demand fails principle 1
        checklist = MethodologyChecklist("test drop with escape guarantee")
        checklist.assess(
            "no guaranteed result required",
            False,
            "formulation demands a bounded escape rate",
        )
        for principle in MethodologyChecklist.PRINCIPLES[1:]:
            checklist.assess(principle, True, "ok")
        assert checklist.is_complete()
        assert not checklist.is_viable()

    def test_unknown_principle_rejected(self):
        with pytest.raises(ValueError):
            MethodologyChecklist("x").assess("vibes", True, "")

    def test_describe_lists_marks(self):
        checklist = MethodologyChecklist("demo")
        checklist.assess("data availability", False, "no data")
        text = checklist.describe()
        assert "FAIL" in text
        assert "unassessed" in text


class TestKnowledgeDiscoveryLoop:
    def test_accepts_on_first_good_result(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context * 2,
            judge=lambda result: (result >= 4, "need >= 4"),
            adjust=lambda context, feedback: context + 1,
        )
        assert loop.run(2) == 4
        assert loop.n_iterations == 1

    def test_iterates_with_feedback(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (result >= 3, "too small"),
            adjust=lambda context, feedback: context + 1,
        )
        assert loop.run(0) == 3
        assert loop.n_iterations == 4
        assert not loop.history[0].accepted
        assert loop.history[-1].accepted

    def test_returns_none_when_never_accepted(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (False, "never good enough"),
            adjust=lambda context, feedback: context,
            max_iterations=3,
        )
        assert loop.run(0) is None
        assert loop.n_iterations == 3

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            KnowledgeDiscoveryLoop(
                mine=lambda c: c, judge=lambda r: (True, ""),
                adjust=lambda c, f: c, max_iterations=0,
            )


class TestReporting:
    def test_table_alignment(self):
        text = format_table(
            ["stage", "tests"], [["original", 400], ["refined", 100]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "stage" in lines[1]
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_series_subsampling(self):
        xs = list(range(100))
        ys = [x * x for x in xs]
        text = format_series(xs, ys, max_points=10)
        assert text.count("\n") < 20
        assert "99" in text  # last point always included

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1])

    def test_sparkline_length_and_charset(self):
        line = sparkline([0, 1, 2, 3, 2, 1, 0], width=7)
        assert len(line) == 7
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
