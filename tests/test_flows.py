"""Tests for methodology tooling and reporting."""

import pytest

from repro.core.exceptions import CheckpointError
from repro.flows import (
    KnowledgeDiscoveryLoop,
    MethodologyChecklist,
    format_series,
    format_table,
    sparkline,
)


class TestMethodologyChecklist:
    def test_complete_and_viable(self):
        checklist = MethodologyChecklist("novel test selection")
        for principle in MethodologyChecklist.PRINCIPLES:
            checklist.assess(principle, True, "ok")
        assert checklist.is_complete()
        assert checklist.is_viable()

    def test_incomplete_not_viable(self):
        checklist = MethodologyChecklist("x")
        checklist.assess("data availability", True, "logs exist")
        assert not checklist.is_complete()
        assert not checklist.is_viable()

    def test_failed_principle_not_viable(self):
        # the Fig. 12 case: a guaranteed-result demand fails principle 1
        checklist = MethodologyChecklist("test drop with escape guarantee")
        checklist.assess(
            "no guaranteed result required",
            False,
            "formulation demands a bounded escape rate",
        )
        for principle in MethodologyChecklist.PRINCIPLES[1:]:
            checklist.assess(principle, True, "ok")
        assert checklist.is_complete()
        assert not checklist.is_viable()

    def test_unknown_principle_rejected(self):
        with pytest.raises(ValueError):
            MethodologyChecklist("x").assess("vibes", True, "")

    def test_describe_lists_marks(self):
        checklist = MethodologyChecklist("demo")
        checklist.assess("data availability", False, "no data")
        text = checklist.describe()
        assert "FAIL" in text
        assert "unassessed" in text


class TestKnowledgeDiscoveryLoop:
    def test_accepts_on_first_good_result(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context * 2,
            judge=lambda result: (result >= 4, "need >= 4"),
            adjust=lambda context, feedback: context + 1,
        )
        assert loop.run(2) == 4
        assert loop.n_iterations == 1

    def test_iterates_with_feedback(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (result >= 3, "too small"),
            adjust=lambda context, feedback: context + 1,
        )
        assert loop.run(0) == 3
        assert loop.n_iterations == 4
        assert not loop.history[0].accepted
        assert loop.history[-1].accepted

    def test_returns_none_when_never_accepted(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (False, "never good enough"),
            adjust=lambda context, feedback: context,
            max_iterations=3,
        )
        assert loop.run(0) is None
        assert loop.n_iterations == 3

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            KnowledgeDiscoveryLoop(
                mine=lambda c: c, judge=lambda r: (True, ""),
                adjust=lambda c, f: c, max_iterations=0,
            )


def _mine_double(context):
    return context * 2


def _mine_triple(context):
    return context * 3


def _judge_accept(result):
    return True, "accepted"


def _adjust_identity(context, feedback):
    return context


class TestCampaignIdentity:
    """Regression: checkpoint keys must carry the campaign's callback
    identity.  Before the ``run_fingerprint`` guard, resuming a
    ``run_key`` whose mine/judge/adjust had changed silently replayed
    the *prior* campaign's stored results and never ran the new
    callbacks at all.
    """

    def test_changed_callbacks_raise_loudly(self, tmp_path):
        store = str(tmp_path / "kdl")
        first = KnowledgeDiscoveryLoop(
            _mine_double, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
        )
        assert first.run(2) == 4
        second = KnowledgeDiscoveryLoop(
            _mine_triple, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
        )
        with pytest.raises(CheckpointError, match="run_fingerprint"):
            second.run(2)

    def test_same_callbacks_resume_quietly(self, tmp_path):
        store = str(tmp_path / "kdl")
        first = KnowledgeDiscoveryLoop(
            _mine_double, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
        )
        assert first.run(2) == 4
        second = KnowledgeDiscoveryLoop(
            _mine_double, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
        )
        assert second.run(2) == 4
        assert second.resumed_iterations == 1

    def test_fresh_run_key_is_isolated(self, tmp_path):
        store = str(tmp_path / "kdl")
        first = KnowledgeDiscoveryLoop(
            _mine_double, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign-a",
        )
        assert first.run(2) == 4
        second = KnowledgeDiscoveryLoop(
            _mine_triple, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign-b",
        )
        assert second.run(2) == 6
        assert second.resumed_iterations == 0

    def test_explicit_run_fingerprint_opts_in(self, tmp_path):
        """Passing the stored fingerprint explicitly says "I know these
        are the same campaign" (e.g. a renamed-but-equivalent callback)
        and resumes the stored trajectory."""
        store = str(tmp_path / "kdl")
        first = KnowledgeDiscoveryLoop(
            _mine_double, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
        )
        assert first.run(2) == 4
        second = KnowledgeDiscoveryLoop(
            _mine_triple, _judge_accept, _adjust_identity,
            checkpoint=store, run_key="campaign",
            run_fingerprint=first.run_fingerprint,
        )
        assert second.run(2) == 4  # replays the stored result
        assert second.resumed_iterations == 1


class TestReporting:
    def test_table_alignment(self):
        text = format_table(
            ["stage", "tests"], [["original", 400], ["refined", 100]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "stage" in lines[1]
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_series_subsampling(self):
        xs = list(range(100))
        ys = [x * x for x in xs]
        text = format_series(xs, ys, max_points=10)
        assert text.count("\n") < 20
        assert "99" in text  # last point always included

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1])

    def test_series_never_exceeds_max_points(self):
        # regression: n=21, max_points=20 used to emit 21+1 rows
        for n, max_points in [(21, 20), (40, 20), (100, 7), (5, 5), (6, 5)]:
            xs = list(range(n))
            text = format_series(xs, xs, max_points=max_points)
            rows = text.splitlines()[2:]  # header + rule
            assert len(rows) <= max_points, (n, max_points, len(rows))
            assert rows[0].startswith("0 ")
            assert rows[-1].startswith(str(n - 1))

    def test_series_max_points_validation(self):
        with pytest.raises(ValueError):
            format_series([1], [1], max_points=0)

    def test_sparkline_length_and_charset(self):
        line = sparkline([0, 1, 2, 3, 2, 1, 0], width=7)
        assert len(line) == 7
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestMethodologyBranches:
    def _assess_all(self, checklist, satisfied=True):
        for principle in MethodologyChecklist.PRINCIPLES:
            checklist.assess(principle, satisfied, "because")
        return checklist

    def test_duplicate_assessments_still_complete(self):
        checklist = self._assess_all(MethodologyChecklist("dup"))
        checklist.assess(
            MethodologyChecklist.PRINCIPLES[0], True, "assessed twice"
        )
        assert checklist.is_complete()
        assert checklist.is_viable()
        assert len(checklist.assessments) == 5

    def test_viable_requires_completeness_not_just_passes(self):
        checklist = MethodologyChecklist("partial")
        checklist.assess(
            MethodologyChecklist.PRINCIPLES[0], True, "only one assessed"
        )
        assert not checklist.is_complete()
        assert not checklist.is_viable()

    def test_describe_complete_checklist_has_no_unassessed_line(self):
        checklist = self._assess_all(MethodologyChecklist("complete"))
        text = checklist.describe()
        assert "unassessed" not in text
        assert text.count("[PASS]") == 4

    def test_describe_incomplete_lists_missing_principles(self):
        checklist = MethodologyChecklist("incomplete")
        checklist.assess("data availability", False, "no tester logs")
        text = checklist.describe()
        assert "[FAIL] data availability" in text
        assert "unassessed" in text
        assert "added value over existing flow" in text


class TestKnowledgeDiscoveryLoopBranches:
    def test_history_records_every_rejected_iteration(self):
        judged = []

        def judge(result):
            judged.append(result)
            return False, f"reject {result}"

        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=judge,
            adjust=lambda context, feedback: context + 1,
            max_iterations=3,
        )
        assert loop.run(0) is None
        assert loop.n_iterations == 3
        assert [record.iteration for record in loop.history] == [0, 1, 2]
        assert [record.result for record in loop.history] == [0, 1, 2]
        assert all(not record.accepted for record in loop.history)
        assert loop.history[-1].feedback == "reject 2"

    def test_acceptance_stops_iterating(self):
        calls = []

        def mine(context):
            calls.append(context)
            return context

        loop = KnowledgeDiscoveryLoop(
            mine=mine,
            judge=lambda result: (result >= 1, "more data"),
            adjust=lambda context, feedback: context + 1,
            max_iterations=10,
        )
        assert loop.run(0) == 1
        assert calls == [0, 1]
        assert loop.history[-1].accepted

    def test_rerun_resets_history(self):
        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (True, "ok"),
            adjust=lambda context, feedback: context,
        )
        loop.run("a")
        loop.run("b")
        assert loop.n_iterations == 1
        assert loop.history[0].result == "b"

    def test_adjust_receives_judge_feedback(self):
        received = []

        def adjust(context, feedback):
            received.append(feedback)
            return context

        loop = KnowledgeDiscoveryLoop(
            mine=lambda context: context,
            judge=lambda result: (False, "needs a new kernel"),
            adjust=adjust,
            max_iterations=2,
        )
        loop.run(0)
        assert received == ["needs a new kernel", "needs a new kernel"]


class TestReportingBranches:
    def test_table_title_and_empty_rows(self):
        text = format_table(["a", "bb"], [], title="empty table")
        lines = text.splitlines()
        assert lines[0] == "empty table"
        assert lines[1].split() == ["a", "bb"]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 3

    def test_cell_formatting_types(self):
        text = format_table(["v"], [[0.123456789], [7], ["raw"]])
        assert "0.1235" in text
        assert "7" in text
        assert "raw" in text

    def test_series_small_input_keeps_every_point(self):
        text = format_series([1, 2, 3], [4.0, 5.0, 6.0], max_points=20)
        lines = text.splitlines()
        assert len(lines) == 2 + 3

    def test_series_subsample_always_includes_last_point(self):
        xs = list(range(25))
        ys = [float(x) for x in xs]
        text = format_series(xs, ys, max_points=10)
        assert text.splitlines()[-1].split()[0] == "24"

    def test_series_title_passthrough(self):
        text = format_series([1], [1.0], title="my series")
        assert text.splitlines()[0] == "my series"

    def test_sparkline_constant_series_does_not_divide_by_zero(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert line == "▁▁▁"

    def test_sparkline_subsamples_to_width(self):
        line = sparkline(list(range(200)), width=10)
        assert len(line) == 10

    def test_sparkline_spans_full_block_range(self):
        line = sparkline([0.0, 1.0])
        assert line == "▁█"
