"""Tests for the observability layer (repro.core.instrument)."""

import copy
import pickle
import threading
import time

import numpy as np
import pytest

from repro.core import EventLog, Pipeline, StandardScaler, recording
from repro.core import instrument
from repro.kernels import GramEngine, RBFKernel
from repro.learn import LogisticRegression


class TestEventLog:
    def test_span_records_timing_and_meta(self):
        log = EventLog()
        with log.span("fit", label="svc", n_samples=40, candidate=3):
            time.sleep(0.005)
        (span,) = log.spans("fit")
        assert span.seconds >= 0.004
        assert span.label == "svc"
        assert span.n_samples == 40
        assert span.meta == {"candidate": 3}

    def test_span_recorded_even_on_exception(self):
        log = EventLog()
        with pytest.raises(RuntimeError):
            with log.span("fit"):
                raise RuntimeError("boom")
        assert len(log.spans("fit")) == 1

    def test_emit_direct(self):
        log = EventLog()
        log.emit("score", 0.25, label="fold[2]", fold=2)
        (span,) = log.spans("score")
        assert span.seconds == 0.25
        assert span.meta["fold"] == 2

    def test_spans_filter_and_len(self):
        log = EventLog()
        log.emit("fit", 0.1)
        log.emit("score", 0.2)
        log.emit("fit", 0.3)
        assert len(log) == 3
        assert len(log.spans("fit")) == 2
        assert log.total_seconds("fit") == pytest.approx(0.4)
        assert log.total_seconds() == pytest.approx(0.6)

    def test_summary_aggregates_by_name(self):
        log = EventLog()
        log.emit("fit", 0.1, n_samples=10)
        log.emit("fit", 0.3, n_samples=30)
        summary = log.summary()
        assert summary["fit"]["count"] == 2
        assert summary["fit"]["total_seconds"] == pytest.approx(0.4)
        assert summary["fit"]["mean_seconds"] == pytest.approx(0.2)
        assert summary["fit"]["n_samples"] == 40

    def test_as_records_round_trips_fields(self):
        log = EventLog()
        log.emit("fit", 0.5, label="x", gram={"cache_hits": 2}, fold=1)
        (record,) = log.as_records()
        assert record["name"] == "fit"
        assert record["gram"] == {"cache_hits": 2}
        assert record["meta"] == {"fold": 1}

    def test_clear(self):
        log = EventLog()
        log.emit("fit", 0.1)
        log.clear()
        assert len(log) == 0

    def test_gram_delta_captured(self):
        engine = GramEngine()
        log = EventLog()
        X = np.random.default_rng(0).normal(size=(30, 3))
        with log.span("gram", engine=engine):
            engine.gram(RBFKernel(0.5), X)
        (span,) = log.spans("gram")
        assert span.gram["blocks_computed"] >= 1
        assert span.gram["pair_evaluations"] == 900

    def test_thread_safe_append(self):
        log = EventLog()

        def emit_many():
            for _ in range(200):
                log.emit("tick", 0.0)

        threads = [threading.Thread(target=emit_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 800

    def test_deepcopy_is_identity_and_pickle_is_fresh(self):
        # logs are shared infrastructure: clone() must not fork them,
        # and a log crossing a process boundary starts empty
        log = EventLog()
        log.emit("fit", 0.1)
        assert copy.deepcopy(log) is log
        revived = pickle.loads(pickle.dumps(log))
        assert isinstance(revived, EventLog)
        assert len(revived) == 0


class TestAmbientHooks:
    def test_span_is_noop_without_active_log(self):
        with instrument.span("fit") as record:
            assert record is None
        assert instrument.emit("fit", 0.1) is None

    def test_recording_routes_spans(self):
        log = EventLog()
        with recording(log):
            with instrument.span("fit", label="inner"):
                pass
            instrument.emit("score", 0.2)
        assert len(log.spans("fit")) == 1
        assert len(log.spans("score")) == 1
        # outside the block the log is inactive again
        assert instrument.current_log() is None

    def test_nested_recording_uses_innermost(self):
        outer, inner = EventLog(), EventLog()
        with recording(outer):
            with recording(inner):
                instrument.emit("fit", 0.1)
            instrument.emit("score", 0.1)
        assert len(inner.spans("fit")) == 1
        assert len(outer.spans("fit")) == 0
        assert len(outer.spans("score")) == 1

    def test_pipeline_emits_step_fit_spans(self, blobs):
        X, y = blobs
        log = EventLog()
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression(max_iter=100))]
        )
        with recording(log):
            pipeline.fit(X, y)
        labels = [s.label for s in log.spans("fit")]
        assert labels == ["pipeline.scale", "pipeline.clf"]
        assert all(s.n_samples == len(X) for s in log.spans("fit"))
