"""Tests for the MLP (Section 2.3's fixed-structure capacity control)."""

import numpy as np
import pytest

from repro.learn import MLPClassifier, MLPRegressor


class TestMLPClassifier:
    def test_separates_blobs(self, blobs):
        X, y = blobs
        model = MLPClassifier(
            hidden_layers=(8,), max_iter=200, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_solves_xor_with_hidden_layer(self, rng):
        # the classical not-linearly-separable problem
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = MLPClassifier(
            hidden_layers=(16,), learning_rate=0.05, max_iter=400,
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass_softmax(self, rng):
        X = np.vstack(
            [rng.normal(c, 0.5, size=(40, 2)) for c in (-3.0, 0.0, 3.0)]
        )
        y = np.repeat([0, 1, 2], 40)
        model = MLPClassifier(
            hidden_layers=(8,), max_iter=300, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.9
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_loss_curve_decreases(self, blobs):
        X, y = blobs
        model = MLPClassifier(
            hidden_layers=(8,), max_iter=100, random_state=0
        ).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_n_parameters_counts_capacity(self, blobs):
        X, y = blobs
        small = MLPClassifier(hidden_layers=(4,), max_iter=5, random_state=0)
        large = MLPClassifier(hidden_layers=(64,), max_iter=5, random_state=0)
        small.fit(X, y)
        large.fit(X, y)
        assert large.n_parameters() > small.n_parameters()
        # exact count for the small net: 2*4+4 + 4*2+2 = 22
        assert small.n_parameters() == 22

    def test_relu_and_logistic_activations(self, blobs):
        X, y = blobs
        for activation in ("relu", "logistic"):
            model = MLPClassifier(
                hidden_layers=(8,), activation=activation, max_iter=200,
                random_state=0,
            ).fit(X, y)
            assert model.score(X, y) > 0.9, activation

    def test_unknown_activation_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            MLPClassifier(activation="swish").fit(X, y)

    def test_seeded_reproducibility(self, blobs):
        X, y = blobs
        a = MLPClassifier(hidden_layers=(8,), max_iter=30, random_state=7)
        b = MLPClassifier(hidden_layers=(8,), max_iter=30, random_state=7)
        np.testing.assert_allclose(
            a.fit(X, y).predict_proba(X), b.fit(X, y).predict_proba(X)
        )


class TestMLPRegressor:
    def test_fits_sine(self, sine_regression):
        X, y = sine_regression
        model = MLPRegressor(
            hidden_layers=(32,), learning_rate=0.02, max_iter=500,
            random_state=0,
        ).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_target_normalization_roundtrip(self, rng):
        # large-offset targets must come back on their original scale
        X = rng.uniform(-1, 1, size=(100, 1))
        y = 1000.0 + 5.0 * X[:, 0]
        model = MLPRegressor(
            hidden_layers=(8,), max_iter=300, random_state=0
        ).fit(X, y)
        predictions = model.predict(X)
        assert abs(predictions.mean() - 1000.0) < 5.0

    def test_capacity_affects_train_fit(self, rng):
        # a single tanh unit is monotone and cannot track a sine; a wide
        # layer can (the fixed-structure capacity knob of Section 2.3)
        X = rng.uniform(-2, 2, size=(150, 1))
        y = np.sin(3 * X[:, 0])
        tiny = MLPRegressor(
            hidden_layers=(1,), learning_rate=0.05, max_iter=600,
            random_state=0,
        )
        big = MLPRegressor(
            hidden_layers=(48,), learning_rate=0.05, max_iter=600,
            random_state=0,
        )
        tiny.fit(X, y)
        big.fit(X, y)
        assert big.score(X, y) > tiny.score(X, y) + 0.1
