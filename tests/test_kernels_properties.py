"""Property-based suite applied to every exported kernel.

Section 2.2 makes kernels the single interface between algorithms and
data, so each one must honour the Gram-matrix contract everywhere:

- ``matrix`` is symmetric;
- the Gram matrix satisfies Mercer's condition (PSD) for every kernel
  documented as PSD;
- the vectorized ``matrix`` fast path agrees with the naive pairwise
  ``__call__`` loop;
- ``cross_matrix(A, A)`` agrees with ``matrix(A)``;
- the :class:`GramEngine` blockwise path agrees with both;
- structurally equal kernels share ``cache_key``/``hash`` (the property
  any kernel-keyed cache relies on).

Cases span all three sample types: real vectors, histograms, and token
sequences (assembly programs).
"""

import numpy as np
import pytest

from repro.kernels import (
    BlendedSpectrumKernel,
    ChiSquaredKernel,
    GramEngine,
    HistogramIntersectionKernel,
    Kernel,
    LaplacianKernel,
    LinearKernel,
    NormalizedKernel,
    PolynomialKernel,
    PrecomputedKernel,
    ProductKernel,
    RBFKernel,
    ScaledKernel,
    SigmoidKernel,
    SpectrumKernel,
    SumKernel,
    is_positive_semidefinite,
)

# ---------------------------------------------------------------------
# Sample generators, one per sample type
# ---------------------------------------------------------------------


def vector_samples(rng, n):
    return rng.normal(size=(n, 4))


def histogram_samples(rng, n):
    return rng.uniform(0.0, 1.0, size=(n, 8))


def sequence_samples(rng, n):
    vocabulary = ["LD", "ST", "ADD", "SUB", "MUL", "CMP", "BR", "SYNC"]
    return [
        [vocabulary[i] for i in rng.integers(0, len(vocabulary), size=length)]
        for length in rng.integers(12, 30, size=n)
    ]


def index_samples(rng, n):
    return list(range(n))


def _precomputed(n=24):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(n, 5))
    return PrecomputedKernel(X @ X.T)


# (case id, kernel factory, sample generator, expect PSD)
# SigmoidKernel is the library's documented non-Mercer kernel, so its
# Gram matrices are only checked for symmetry/consistency, not PSD.
KERNEL_CASES = [
    ("linear/vector", lambda: LinearKernel(), vector_samples, True),
    ("poly2/vector", lambda: PolynomialKernel(degree=2, coef0=1.0),
     vector_samples, True),
    ("poly3/vector", lambda: PolynomialKernel(degree=3, gamma=0.5, coef0=0.5),
     vector_samples, True),
    ("rbf/vector", lambda: RBFKernel(gamma=0.7), vector_samples, True),
    ("laplacian/vector", lambda: LaplacianKernel(gamma=0.4),
     vector_samples, True),
    ("sigmoid/vector", lambda: SigmoidKernel(gamma=0.01, coef0=0.1),
     vector_samples, False),
    ("hi/histogram", lambda: HistogramIntersectionKernel(),
     histogram_samples, True),
    ("hi-raw/histogram", lambda: HistogramIntersectionKernel(normalize=False),
     histogram_samples, True),
    ("chi2/histogram", lambda: ChiSquaredKernel(gamma=0.8),
     histogram_samples, True),
    ("spectrum2/sequence", lambda: SpectrumKernel(k=2), sequence_samples, True),
    ("spectrum1-raw/sequence", lambda: SpectrumKernel(k=1, normalize=False),
     sequence_samples, True),
    ("blended/sequence", lambda: BlendedSpectrumKernel(max_k=3, decay=0.5),
     sequence_samples, True),
    ("sum/vector", lambda: SumKernel(
        [RBFKernel(0.5), LinearKernel()], weights=[0.7, 0.3]),
     vector_samples, True),
    ("product/vector", lambda: ProductKernel(
        [RBFKernel(0.3), PolynomialKernel(degree=2, coef0=1.0)]),
     vector_samples, True),
    ("scaled/vector", lambda: ScaledKernel(RBFKernel(0.5), 2.5),
     vector_samples, True),
    ("normalized/vector", lambda: NormalizedKernel(
        PolynomialKernel(degree=2, coef0=1.0)),
     vector_samples, True),
    ("normalized/sequence", lambda: NormalizedKernel(
        SpectrumKernel(k=2, normalize=False)),
     sequence_samples, True),
    ("precomputed/index", _precomputed, index_samples, True),
]

CASE_IDS = [case[0] for case in KERNEL_CASES]


@pytest.fixture(params=KERNEL_CASES, ids=CASE_IDS)
def kernel_case(request):
    case_id, factory, sampler, expect_psd = request.param
    rng = np.random.default_rng(abs(hash(case_id)) % 2**31)
    return factory(), sampler(rng, 18), sampler(rng, 7), expect_psd


class TestGramContract:
    def test_matrix_symmetric(self, kernel_case):
        kernel, samples, _, _ = kernel_case
        K = kernel.matrix(samples)
        assert K.shape == (len(samples), len(samples))
        np.testing.assert_allclose(K, K.T, atol=1e-10)

    def test_mercer_psd(self, kernel_case):
        kernel, samples, _, expect_psd = kernel_case
        if not expect_psd:
            pytest.skip("kernel is documented as non-Mercer")
        assert is_positive_semidefinite(kernel.matrix(samples))

    def test_matrix_equals_naive_pairwise_loop(self, kernel_case):
        kernel, samples, _, _ = kernel_case
        fast = kernel.matrix(samples)
        naive = Kernel.matrix(kernel, samples)
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_cross_matrix_self_equals_matrix(self, kernel_case):
        kernel, samples, _, _ = kernel_case
        np.testing.assert_allclose(
            kernel.cross_matrix(samples, samples),
            kernel.matrix(samples),
            atol=1e-10,
        )

    def test_cross_matrix_equals_naive_loop(self, kernel_case):
        kernel, samples, probes, _ = kernel_case
        fast = kernel.cross_matrix(probes, samples)
        naive = Kernel.cross_matrix(kernel, probes, samples)
        assert fast.shape == (len(probes), len(samples))
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_engine_blockwise_agrees(self, kernel_case):
        kernel, samples, probes, _ = kernel_case
        engine = GramEngine(block_size=5)
        np.testing.assert_allclose(
            engine.gram(kernel, samples), kernel.matrix(samples), atol=1e-10
        )
        np.testing.assert_allclose(
            engine.cross_gram(kernel, probes, samples),
            kernel.cross_matrix(probes, samples),
            atol=1e-10,
        )


class TestStructuralIdentity:
    @pytest.mark.parametrize(
        "case", KERNEL_CASES, ids=CASE_IDS
    )
    def test_rebuilt_kernel_is_same_cache_entry(self, case):
        _, factory, _, _ = case
        a, b = factory(), factory()
        assert a == b
        assert a.cache_key() == b.cache_key()
        assert hash(a) == hash(b)
        assert {a: "entry"}[b] == "entry"

    def test_different_hyperparameters_change_key(self):
        assert RBFKernel(0.5).cache_key() != RBFKernel(0.7).cache_key()
        assert (
            SpectrumKernel(k=2).cache_key() != SpectrumKernel(k=3).cache_key()
        )
        assert (
            PolynomialKernel(2, coef0=0.0).cache_key()
            != PolynomialKernel(2, coef0=1.0).cache_key()
        )

    def test_different_kernel_types_never_collide(self):
        # same __dict__ shape (a single gamma), different semantics
        assert RBFKernel(0.5).cache_key() != LaplacianKernel(0.5).cache_key()

    def test_nested_kernel_parameters_reach_the_key(self):
        shallow = ScaledKernel(RBFKernel(0.5), 2.0)
        deep = ScaledKernel(RBFKernel(0.9), 2.0)
        assert shallow.cache_key() != deep.cache_key()
        assert ScaledKernel(RBFKernel(0.5), 2.0) == shallow
        assert hash(ScaledKernel(RBFKernel(0.5), 2.0)) == hash(shallow)

    def test_precomputed_matrix_content_reaches_the_key(self):
        K = np.eye(4)
        other = np.eye(4)
        other[0, 0] = 2.0
        assert (
            PrecomputedKernel(K).cache_key()
            == PrecomputedKernel(np.eye(4)).cache_key()
        )
        assert (
            PrecomputedKernel(K).cache_key()
            != PrecomputedKernel(other).cache_key()
        )

    def test_mutating_a_kernel_changes_its_key(self):
        kernel = RBFKernel(0.5)
        before = kernel.cache_key()
        kernel.gamma = 0.9
        assert kernel.cache_key() != before


# ---------------------------------------------------------------------
# Approximate feature maps: the error-budget contract
# ---------------------------------------------------------------------

from repro.kernels import (  # noqa: E402
    NystromApproximation,
    RandomFourierFeatures,
    resolve_feature_map,
)

# Nyström works for any kernel/sample type; exercise one case per type.
NYSTROM_CASES = [
    ("rbf/vector", lambda: RBFKernel(gamma=0.2), vector_samples),
    ("chi2/histogram", lambda: ChiSquaredKernel(gamma=0.8),
     histogram_samples),
    ("spectrum2/sequence", lambda: SpectrumKernel(k=2), sequence_samples),
]
NYSTROM_IDS = [case[0] for case in NYSTROM_CASES]


class TestNystromContract:
    @pytest.mark.parametrize("case", NYSTROM_CASES, ids=NYSTROM_IDS)
    def test_trace_error_monotone_in_landmark_count(self, case):
        # nested landmark sets (prefix of one seeded permutation) make
        # the approximated Gram a growing-subspace projection, so the
        # trace error never increases with rank
        _, factory, sampler = case
        rng = np.random.default_rng(11)
        kernel = factory()
        samples = sampler(rng, 40)
        K = kernel.matrix(samples)
        errors = []
        for rank in (5, 10, 20, 40):
            approx = NystromApproximation(
                kernel=kernel, n_components=rank, random_state=9
            ).fit(samples)
            errors.append(float(np.trace(K - approx.approximate_gram(samples))))
        for smaller, larger in zip(errors[1:], errors[:-1]):
            assert smaller <= larger + 1e-8
        # full rank reproduces the exact Gram
        assert errors[-1] <= 1e-6 * max(1.0, float(np.abs(K).max()))

    @pytest.mark.parametrize("case", NYSTROM_CASES, ids=NYSTROM_IDS)
    def test_approximate_gram_is_psd(self, case):
        _, factory, sampler = case
        rng = np.random.default_rng(3)
        samples = sampler(rng, 25)
        approx = NystromApproximation(
            kernel=factory(), n_components=10, random_state=1
        ).fit(samples)
        assert is_positive_semidefinite(approx.approximate_gram(samples))

    def test_landmark_sets_are_nested_across_ranks(self):
        rng = np.random.default_rng(0)
        samples = vector_samples(rng, 30)
        previous = None
        for rank in (4, 9, 17, 30):
            approx = NystromApproximation(
                kernel=RBFKernel(0.5), n_components=rank, random_state=5
            ).fit(samples)
            landmarks = set(approx.landmark_indices_.tolist())
            assert len(landmarks) == rank
            if previous is not None:
                assert previous <= landmarks
            previous = landmarks

    def test_transform_matches_cross_gram_projection(self):
        rng = np.random.default_rng(2)
        samples = vector_samples(rng, 20)
        probes = vector_samples(rng, 6)
        kernel = RBFKernel(0.3)
        approx = NystromApproximation(
            kernel=kernel, n_components=12, random_state=0
        ).fit(samples)
        C = kernel.cross_matrix(probes, samples[approx.landmark_indices_])
        np.testing.assert_allclose(
            approx.transform(probes), C @ approx.normalization_, atol=1e-10
        )


class TestRandomFourierContract:
    def test_error_decays_as_inverse_sqrt_features(self):
        # quadrupling n_features should roughly halve the Gram error;
        # assert at least a 25% reduction per quadrupling (ample slack
        # over the theoretical 50%)
        rng = np.random.default_rng(4)
        samples = vector_samples(rng, 35)
        kernel = RBFKernel(gamma=0.4)
        K = kernel.matrix(samples)
        errors = []
        for D in (64, 256, 1024):
            rff = RandomFourierFeatures(
                kernel=kernel, n_features=D, random_state=8
            ).fit(samples)
            errors.append(
                float(np.abs(rff.approximate_gram(samples) - K).mean())
            )
        assert errors[1] < errors[0] * 0.75
        assert errors[2] < errors[1] * 0.75

    @pytest.mark.parametrize("factory", [
        lambda: RBFKernel(gamma=0.4),
        lambda: LaplacianKernel(gamma=0.4),
    ], ids=["rbf", "laplacian"])
    def test_unbiased_for_shift_invariant_kernels(self, factory):
        rng = np.random.default_rng(6)
        samples = vector_samples(rng, 20)
        kernel = factory()
        K = kernel.matrix(samples)
        rff = RandomFourierFeatures(
            kernel=kernel, n_features=4000, random_state=1
        ).fit(samples)
        assert np.abs(rff.approximate_gram(samples) - K).max() < 0.15

    def test_rejects_non_shift_invariant_kernels(self):
        rng = np.random.default_rng(0)
        samples = vector_samples(rng, 10)
        with pytest.raises(ValueError, match="Nystrom"):
            RandomFourierFeatures(kernel=LinearKernel()).fit(samples)


class TestApproximatorIdentity:
    """Approximators carry the same structural-identity contract as
    kernels: deterministic seeding, config-only pickling, equal keys for
    equal recipes."""

    def _approximators(self):
        return [
            NystromApproximation(
                kernel=RBFKernel(0.5), n_components=7, random_state=3
            ),
            RandomFourierFeatures(
                kernel=RBFKernel(0.5), n_features=9, random_state=3
            ),
        ]

    def test_same_seed_same_features_bitwise(self):
        rng = np.random.default_rng(1)
        samples = vector_samples(rng, 15)
        for prototype in self._approximators():
            a = type(prototype)(**prototype.get_params(deep=False)).fit(samples)
            b = type(prototype)(**prototype.get_params(deep=False)).fit(samples)
            np.testing.assert_array_equal(
                a.transform(samples), b.transform(samples)
            )

    def test_none_random_state_behaves_as_seed_zero(self):
        rng = np.random.default_rng(1)
        samples = vector_samples(rng, 12)
        defaulted = RandomFourierFeatures(n_features=6).fit(samples)
        seeded = RandomFourierFeatures(n_features=6, random_state=0).fit(
            samples
        )
        np.testing.assert_array_equal(
            defaulted.transform(samples), seeded.transform(samples)
        )

    def test_unfitted_pickle_roundtrip_refits_identically(self):
        import pickle

        rng = np.random.default_rng(7)
        samples = vector_samples(rng, 15)
        for prototype in self._approximators():
            revived = pickle.loads(pickle.dumps(prototype))
            np.testing.assert_array_equal(
                prototype.fit(samples).transform(samples),
                revived.fit(samples).transform(samples),
            )

    def test_cache_key_and_fingerprint_are_structural(self):
        for prototype in self._approximators():
            twin = type(prototype)(**prototype.get_params(deep=False))
            assert prototype.cache_key() == twin.cache_key()
            assert prototype.fingerprint() == twin.fingerprint()
        a = NystromApproximation(kernel=RBFKernel(0.5), n_components=7)
        b = NystromApproximation(kernel=RBFKernel(0.5), n_components=8)
        c = NystromApproximation(kernel=RBFKernel(0.6), n_components=7)
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert a.fingerprint() != b.fingerprint()

    def test_engine_is_not_identity(self):
        # the engine is shared infrastructure: two Nyström recipes that
        # differ only in engine are the same approximation
        a = NystromApproximation(n_components=5, engine=GramEngine())
        b = NystromApproximation(n_components=5, engine=None)
        assert a.cache_key() == b.cache_key()

    def test_resolver_fills_unset_kernel_and_never_mutates(self):
        kernel = SpectrumKernel(k=2)
        prototype = NystromApproximation(n_components=4)
        resolved = resolve_feature_map(prototype, kernel=kernel)
        assert resolved.kernel is kernel
        assert prototype.kernel is None  # untouched
        explicit = NystromApproximation(kernel=RBFKernel(0.9), n_components=4)
        kept = resolve_feature_map(explicit, kernel=kernel)
        assert isinstance(kept.kernel, RBFKernel)
