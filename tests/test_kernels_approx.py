"""Approximate-path integration tests: every ``approximation=`` consumer.

The tentpole contract: each kernel consumer accepts an approximator and
then (a) fits without touching the full Gram matrix, (b) lands within a
declared error budget of its exact twin, and (c) keeps the estimator
API — determinism, pickling, cloning — intact on the approximate path.
"""

import pickle

import numpy as np
import pytest

from repro.core.base import NotFittedError, clone
from repro.kernels import (
    GramEngine,
    NystromApproximation,
    RBFKernel,
    RandomFourierFeatures,
    SpectrumKernel,
)
from repro.learn import (
    SVC,
    KernelRidgeRegressor,
    OneClassSVM,
    dual_coordinate_linear_svc,
    frank_wolfe_one_class,
)
from repro.transform import KernelPCA
from repro.verification import NoveltyTestSelector


@pytest.fixture
def blobs(rng):
    X = np.vstack([
        rng.normal(loc=-1.5, size=(60, 4)),
        rng.normal(loc=+1.5, size=(60, 4)),
    ])
    y = np.array([0] * 60 + [1] * 60)
    return X, y


def smooth_kernel():
    return RBFKernel(gamma=0.1)


def nystrom(rank=60):
    return NystromApproximation(n_components=rank, random_state=0)


class TestSVCApproximate:
    def test_tracks_exact_within_budget(self, blobs):
        X, y = blobs
        exact = SVC(kernel=smooth_kernel(), random_state=0).fit(X, y)
        approx = SVC(kernel=smooth_kernel(), random_state=0,
                     approximation=nystrom()).fit(X, y)
        exact_acc = float((exact.predict(X) == y).mean())
        approx_acc = float((approx.predict(X) == y).mean())
        assert approx_acc >= exact_acc - 0.02

    def test_rff_path(self, blobs):
        X, y = blobs
        approx = SVC(
            kernel=smooth_kernel(), random_state=0,
            approximation=RandomFourierFeatures(
                n_features=300, random_state=0),
        ).fit(X, y)
        assert float((approx.predict(X) == y).mean()) >= 0.95

    def test_deterministic_refit(self, blobs):
        X, y = blobs
        recipe = dict(kernel=smooth_kernel(), random_state=0,
                      approximation=nystrom())
        a = SVC(**recipe).fit(X, y).decision_function(X)
        b = SVC(**recipe).fit(X, y).decision_function(X)
        np.testing.assert_array_equal(a, b)

    def test_fitted_pickle_roundtrip(self, blobs):
        X, y = blobs
        model = SVC(kernel=smooth_kernel(), random_state=0,
                    approximation=nystrom()).fit(X, y)
        revived = pickle.loads(pickle.dumps(model))
        np.testing.assert_array_equal(
            model.decision_function(X), revived.decision_function(X)
        )

    def test_clone_is_unfitted_and_shares_no_state(self, blobs):
        X, y = blobs
        model = SVC(kernel=smooth_kernel(),
                    approximation=nystrom()).fit(X, y)
        copy = clone(model)
        with pytest.raises(NotFittedError):
            copy.predict(X)
        assert copy.approximation is not model.approximation

    def test_approximation_hyperparameter_is_never_mutated(self, blobs):
        X, y = blobs
        prototype = nystrom()
        SVC(kernel=smooth_kernel(), approximation=prototype).fit(X, y)
        assert prototype.kernel is None
        assert not hasattr(prototype, "normalization_")

    def test_nested_param_grammar_reaches_approximation(self):
        model = SVC(approximation=nystrom())
        model.set_params(approximation__n_components=17)
        assert model.approximation.n_components == 17
        assert model.get_params()["approximation__n_components"] == 17


class TestKernelRidgeApproximate:
    def test_tracks_exact_predictions(self, blobs):
        X, _ = blobs
        y = np.sin(X[:, 0]) + X[:, 1]
        exact = KernelRidgeRegressor(kernel=smooth_kernel(), alpha=0.1)
        approx = KernelRidgeRegressor(kernel=smooth_kernel(), alpha=0.1,
                                      approximation=nystrom(100))
        gap = np.abs(
            approx.fit(X, y).predict(X) - exact.fit(X, y).predict(X)
        ).max()
        assert gap < 0.25

    def test_full_rank_nystrom_matches_exact_closely(self, blobs):
        X, _ = blobs
        y = np.sin(X[:, 0])
        exact = KernelRidgeRegressor(kernel=smooth_kernel(), alpha=0.1)
        approx = KernelRidgeRegressor(
            kernel=smooth_kernel(), alpha=0.1,
            approximation=nystrom(len(X)),
        )
        np.testing.assert_allclose(
            approx.fit(X, y).predict(X), exact.fit(X, y).predict(X),
            atol=1e-6,
        )


class TestOneClassSVMApproximate:
    def test_agrees_with_exact_on_most_points(self, blobs):
        X, _ = blobs
        exact = OneClassSVM(kernel=smooth_kernel(), nu=0.2).fit(X)
        approx = OneClassSVM(kernel=smooth_kernel(), nu=0.2,
                             approximation=nystrom(100)).fit(X)
        agreement = float(
            (exact.is_novel(X) == approx.is_novel(X)).mean()
        )
        assert agreement >= 0.9

    def test_nu_still_bounds_outlier_fraction_loosely(self, blobs):
        X, _ = blobs
        model = OneClassSVM(kernel=smooth_kernel(), nu=0.2,
                            approximation=nystrom(100)).fit(X)
        assert float(model.is_novel(X).mean()) <= 0.4

    def test_sequence_samples_via_kernel_propagation(self, rng):
        vocabulary = ["LD", "ST", "ADD", "SUB", "MUL", "SYNC"]
        programs = [
            [vocabulary[i] for i in rng.integers(0, 6, size=20)]
            for _ in range(30)
        ]
        model = OneClassSVM(
            kernel=SpectrumKernel(k=2), nu=0.3,
            approximation=nystrom(15),
        ).fit(programs)
        # the consumer's sequence kernel reached the approximator
        assert isinstance(model.feature_map_.kernel_, SpectrumKernel)
        assert model.decision_function(programs).shape == (30,)


class TestKernelPCAApproximate:
    def test_projections_correlate_with_exact(self, blobs):
        X, _ = blobs
        exact = KernelPCA(kernel=smooth_kernel(), n_components=2).fit(X)
        approx = KernelPCA(kernel=smooth_kernel(), n_components=2,
                           approximation=nystrom(100)).fit(X)
        Ze, Za = exact.transform(X), approx.transform(X)
        for j in range(2):
            corr = abs(np.corrcoef(Ze[:, j], Za[:, j])[0, 1])
            assert corr > 0.98

    def test_uncentered_mode(self, blobs):
        X, _ = blobs
        model = KernelPCA(kernel=smooth_kernel(), n_components=2,
                          center=False, approximation=nystrom(50)).fit(X)
        assert model.transform(X).shape == (len(X), 2)

    def test_transform_before_fit_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(NotFittedError):
            KernelPCA(approximation=nystrom()).transform(X)


class TestNoveltySelectorApproximate:
    def _programs(self, n=60):
        from repro.verification import Randomizer, TestTemplate

        return list(Randomizer(random_state=13).stream(TestTemplate(), n))

    def test_selector_runs_with_nystrom_retrains(self):
        programs = self._programs()
        selector = NoveltyTestSelector(
            nu=0.3, seed_count=5, retrain_every=5,
            approximation=NystromApproximation(
                n_components=10, random_state=0),
        )
        decisions = [selector.consider(p) for p in programs]
        assert selector.n_selected == sum(decisions)
        # the retrained model actually used the approximate path
        assert selector._model is not None
        assert selector._model.feature_map_ is not None

    def test_selector_filters_a_redundant_stream(self):
        programs = self._programs(n=80)
        # a redundant tail: the same handful of programs repeated
        stream = programs[:20] + programs[:20] + programs[:20]
        selector = NoveltyTestSelector(
            nu=0.3, seed_count=5, retrain_every=5,
            lexical_backstop=False,
            approximation=NystromApproximation(
                n_components=10, random_state=0),
        )
        for program in stream:
            selector.consider(program)
        assert selector.n_selected < len(stream)


class TestSolvers:
    def test_dual_cd_matches_reference_qp_on_separable_data(self, rng):
        # linearly separable toy problem with an analytic margin
        Z = np.vstack([
            rng.normal(loc=-2.0, size=(25, 2)),
            rng.normal(loc=+2.0, size=(25, 2)),
        ])
        signs = np.array([-1.0] * 25 + [1.0] * 25)
        Zb = np.hstack([Z, np.ones((50, 1))])
        w, alpha, epochs = dual_coordinate_linear_svc(
            Zb, signs, C=10.0, tol=1e-8, max_epochs=2000
        )
        margins = signs * (Zb @ w)
        assert margins.min() > 0.9  # all points classified with margin
        assert (alpha >= -1e-12).all() and (alpha <= 10.0 + 1e-12).all()
        # KKT: free multipliers sit on the margin
        free = (alpha > 1e-6) & (alpha < 10.0 - 1e-6)
        if free.any():
            np.testing.assert_allclose(margins[free], 1.0, atol=1e-3)

    def test_frank_wolfe_respects_capped_simplex(self, rng):
        Z = rng.normal(size=(40, 6))
        nu = 0.25
        alpha, v, _ = frank_wolfe_one_class(Z, nu, tol=1e-10, max_iter=2000)
        upper = 1.0 / (nu * len(Z))
        assert np.isclose(alpha.sum(), 1.0)
        assert (alpha >= -1e-12).all()
        assert (alpha <= upper + 1e-12).all()
        np.testing.assert_allclose(v, Z.T @ alpha, atol=1e-10)

    def test_frank_wolfe_reaches_exact_objective(self, rng):
        # compare the attained dual objective against the exact
        # coordinate-descent solver on the same (full-rank) problem
        Z = rng.normal(size=(30, 30))
        K = Z @ Z.T
        from repro.kernels import PrecomputedKernel

        exact = OneClassSVM(
            kernel=PrecomputedKernel(K), nu=0.3, tol=1e-10
        ).fit(list(range(30)))
        alpha, _, _ = frank_wolfe_one_class(Z, 0.3, tol=1e-8, max_iter=5000)
        objective = 0.5 * alpha @ K @ alpha
        exact_objective = 0.5 * exact.alpha_ @ K @ exact.alpha_
        assert objective <= exact_objective * 1.05 + 1e-9


class TestEngineRouting:
    def test_consumer_engine_reaches_nystrom(self, blobs):
        X, y = blobs
        engine = GramEngine()
        model = SVC(kernel=smooth_kernel(), engine=engine,
                    approximation=nystrom(30)).fit(X, y)
        # landmark Gram + transform cross-blocks went through the
        # consumer's private engine, not the shared default
        assert engine.counters.gram_calls >= 1
        assert engine.counters.cross_calls >= 1
        assert model.feature_map_.engine is engine
