"""Tests for sequence (spectrum) kernels over token programs."""

import numpy as np
import pytest

from repro.kernels import (
    BlendedSpectrumKernel,
    SpectrumKernel,
    is_positive_semidefinite,
    ngram_counts,
    spectrum_feature_map,
)


class TestNgramCounts:
    def test_counts_bigrams(self):
        counts = ngram_counts(["a", "b", "a", "b"], 2)
        assert counts[("a", "b")] == 2
        assert counts[("b", "a")] == 1

    def test_k_longer_than_sequence_is_empty(self):
        assert ngram_counts(["a"], 3) == {}

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            ngram_counts(["a"], 0)


class TestSpectrumKernel:
    def test_identical_programs_score_one(self):
        k = SpectrumKernel(k=2)
        program = ["LD", "ST", "ADD", "LD"]
        assert k(program, program) == pytest.approx(1.0)

    def test_disjoint_vocabularies_score_zero(self):
        k = SpectrumKernel(k=1)
        assert k(["LD", "ST"], ["MUL", "DIV"]) == 0.0

    def test_shared_ngrams_increase_similarity(self):
        k = SpectrumKernel(k=2)
        a = ["LD", "ST", "ADD"]
        b = ["LD", "ST", "SUB"]  # shares bigram (LD, ST)
        c = ["SUB", "ADD", "LD"]  # shares no bigram with a
        assert k(a, b) > k(a, c)

    def test_unnormalized_counts_scale_with_repeats(self):
        k = SpectrumKernel(k=1, normalize=False)
        assert k(["X"] * 4, ["X"] * 3) == pytest.approx(12.0)

    def test_empty_program_scores_zero(self):
        k = SpectrumKernel(k=2)
        assert k([], ["LD", "ST"]) == 0.0

    def test_matrix_symmetric_and_psd(self, rng):
        vocabulary = ["LD", "ST", "ADD", "SUB", "MUL"]
        programs = [
            [vocabulary[i] for i in rng.integers(0, 5, size=12)]
            for _ in range(15)
        ]
        K = SpectrumKernel(k=2).matrix(programs)
        np.testing.assert_allclose(K, K.T)
        assert is_positive_semidefinite(K)

    def test_matrix_matches_pairwise(self):
        programs = [["a", "b", "c"], ["a", "b"], ["c", "c", "a"]]
        k = SpectrumKernel(k=1)
        K = k.matrix(programs)
        for i, pi in enumerate(programs):
            for j, pj in enumerate(programs):
                assert K[i, j] == pytest.approx(k(pi, pj))

    def test_tokenizer_hook(self):
        k = SpectrumKernel(k=1, tokenizer=lambda s: s.split())
        assert k("LD ST", "LD ST") == pytest.approx(1.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SpectrumKernel(k=0)


class TestBlendedSpectrumKernel:
    def test_self_similarity_one(self):
        k = BlendedSpectrumKernel(max_k=3)
        program = ["a", "b", "c", "a", "b"]
        assert k(program, program) == pytest.approx(1.0)

    def test_matrix_matches_call(self):
        programs = [["a", "b", "c"], ["b", "c", "d"], ["x", "y", "z"]]
        k = BlendedSpectrumKernel(max_k=2, decay=0.5)
        K = k.matrix(programs)
        for i, pi in enumerate(programs):
            for j, pj in enumerate(programs):
                assert K[i, j] == pytest.approx(k(pi, pj))

    def test_order_sensitivity_via_higher_k(self):
        # same unigrams, different order: blended (k>=2) tells them apart
        a = ["LD", "ST", "ADD", "LD", "ST", "ADD"]
        b = ["ADD", "LD", "ST", "ADD", "LD", "ST"]
        c = ["ADD", "ADD", "ST", "ST", "LD", "LD"]
        blended = BlendedSpectrumKernel(max_k=3)
        assert blended(a, b) > blended(a, c)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            BlendedSpectrumKernel(decay=0.0)


class TestSpectrumFeatureMap:
    def test_explicit_map_reproduces_kernel(self):
        programs = [["a", "b", "a"], ["b", "a", "b"], ["c", "a", "c"]]
        X, vocabulary = spectrum_feature_map(programs, k=2)
        k = SpectrumKernel(k=2, normalize=False)
        K_kernel = k.matrix(programs)
        K_explicit = X @ X.T
        np.testing.assert_allclose(K_kernel, K_explicit)

    def test_vocabulary_is_sorted_ngrams(self):
        _, vocabulary = spectrum_feature_map([["b", "a"]], k=1)
        assert vocabulary == [("a",), ("b",)]
