"""Tests for scalers and imputation."""

import numpy as np
import pytest

from repro.core import (
    MinMaxScaler,
    NotFittedError,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(5), np.arange(5.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(0.0, 2.0, size=(30, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_without_centering(self, rng):
        X = rng.normal(10.0, 1.0, size=(50, 2))
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.mean() > 5.0  # mean preserved (only scaled)


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.normal(0.0, 5.0, size=(100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_custom_range(self, rng):
        X = rng.uniform(size=(50, 2))
        Z = MinMaxScaler(feature_min=-1.0, feature_max=1.0).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0)
        assert Z.max() == pytest.approx(1.0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_min=1.0, feature_max=0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.uniform(-3, 3, size=(40, 2))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X
        )


class TestRobustScaler:
    def test_outliers_do_not_move_center(self, rng):
        X = rng.normal(0.0, 1.0, size=(500, 1))
        X_dirty = np.vstack([X, [[1000.0]] * 5])
        clean = RobustScaler().fit(X)
        dirty = RobustScaler().fit(X_dirty)
        assert abs(clean.center_[0] - dirty.center_[0]) < 0.1

    def test_median_maps_to_zero(self, rng):
        X = rng.normal(7.0, 2.0, size=(101, 1))
        Z = RobustScaler().fit_transform(X)
        assert np.median(Z) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            RobustScaler(quantile_low=80.0, quantile_high=20.0)


class TestSimpleImputer:
    def test_mean_strategy(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        out = SimpleImputer(strategy="mean").fit_transform(X)
        assert out[2, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(6.0)

    def test_median_strategy(self):
        X = np.array([[1.0], [2.0], [100.0], [np.nan]])
        out = SimpleImputer(strategy="median").fit_transform(X)
        assert out[3, 0] == pytest.approx(2.0)

    def test_constant_strategy(self):
        X = np.array([[np.nan, 1.0]])
        out = SimpleImputer(strategy="constant", fill_value=-9.0)
        assert out.fit_transform(X)[0, 0] == -9.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="mean", fill_value=0.5).fit_transform(X)
        np.testing.assert_allclose(out, 0.5)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="mode")
