"""Tests for one-class SVM novelty detection (Figs. 7 and 11 engine)."""

import numpy as np
import pytest

from repro.kernels import RBFKernel, SpectrumKernel
from repro.learn import OneClassSVM


class TestOneClassBasics:
    def test_flags_far_point_as_novel(self, rng):
        X = rng.normal(0.0, 1.0, size=(80, 2))
        model = OneClassSVM(kernel=RBFKernel(0.5), nu=0.1).fit(X)
        assert model.predict(np.array([[10.0, 10.0]]))[0] == -1

    def test_accepts_central_point(self, rng):
        # bandwidth from the median heuristic so the support estimate is
        # a filled region rather than a thin shell
        X = rng.normal(0.0, 1.0, size=(80, 2))
        model = OneClassSVM(kernel=RBFKernel(0.12), nu=0.1).fit(X)
        assert model.predict(np.array([[0.0, 0.0]]))[0] == 1

    def test_nu_bounds_training_outlier_fraction(self, rng):
        X = rng.normal(0.0, 1.0, size=(150, 2))
        for nu in (0.05, 0.2, 0.4):
            model = OneClassSVM(kernel=RBFKernel(0.5), nu=nu).fit(X)
            outlier_fraction = float(np.mean(model.predict(X) == -1))
            assert outlier_fraction <= nu + 0.1

    def test_larger_nu_tightens_boundary(self, rng):
        X = rng.normal(0.0, 1.0, size=(120, 2))
        probes = rng.normal(0.0, 2.0, size=(200, 2))
        loose = OneClassSVM(kernel=RBFKernel(0.5), nu=0.05).fit(X)
        tight = OneClassSVM(kernel=RBFKernel(0.5), nu=0.5).fit(X)
        assert np.mean(tight.is_novel(probes)) >= np.mean(
            loose.is_novel(probes)
        )

    def test_novelty_score_is_negated_decision(self, rng):
        X = rng.normal(size=(50, 2))
        model = OneClassSVM(kernel=RBFKernel(1.0), nu=0.2).fit(X)
        probes = rng.normal(size=(10, 2))
        np.testing.assert_allclose(
            model.novelty_score(probes), -model.decision_function(probes)
        )

    def test_rejects_bad_nu(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0).fit(X)
        with pytest.raises(ValueError):
            OneClassSVM(nu=1.5).fit(X)

    def test_rejects_empty_training(self):
        with pytest.raises(ValueError):
            OneClassSVM().fit(np.empty((0, 2)))

    def test_dual_constraints_hold(self, rng):
        X = rng.normal(size=(60, 2))
        nu = 0.2
        model = OneClassSVM(kernel=RBFKernel(0.5), nu=nu).fit(X)
        assert model.alpha_.sum() == pytest.approx(1.0)
        assert np.all(model.alpha_ >= -1e-12)
        assert np.all(model.alpha_ <= 1.0 / (nu * len(X)) + 1e-9)


class TestOneClassOnPrograms:
    """The [14] configuration: novelty over assembly-like programs."""

    def test_detects_novel_program_family(self):
        familiar = [["LD", "ST", "ADD"] * 4 for _ in range(25)]
        model = OneClassSVM(kernel=SpectrumKernel(k=2), nu=0.15)
        model.fit(familiar)
        novel = [["MUL", "DIV", "XOR"] * 4]
        redundant = [["LD", "ST", "ADD"] * 4]
        assert model.is_novel(novel)[0]
        assert not model.is_novel(redundant)[0]

    def test_novelty_score_ranks_by_dissimilarity(self):
        familiar = [["LD", "ST"] * 6 for _ in range(20)]
        model = OneClassSVM(kernel=SpectrumKernel(k=2), nu=0.2)
        model.fit(familiar)
        near = [["LD", "ST"] * 5 + [("ADD")]]
        far = [["MUL", "DIV"] * 6]
        scores = model.novelty_score([near[0], far[0]])
        assert scores[1] > scores[0]


class TestGaussianMixtureGeometry:
    def test_captures_both_modes(self, rng):
        X = np.vstack(
            [rng.normal(-3, 0.5, size=(60, 2)), rng.normal(3, 0.5, size=(60, 2))]
        )
        model = OneClassSVM(kernel=RBFKernel(1.0), nu=0.1).fit(X)
        # both mode centers are inliers, the midpoint between them is not
        assert model.predict(np.array([[-3.0, -3.0]]))[0] == 1
        assert model.predict(np.array([[3.0, 3.0]]))[0] == 1
        assert model.predict(np.array([[0.0, 0.0]]))[0] == -1
