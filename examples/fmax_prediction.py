"""Example: Fmax prediction with the five regression families ([20]).

The paper's Section 2.4 cites a study comparing nearest neighbor, LSF,
regularized LSF, SVR and Gaussian-process regression for predicting a
chip's maximum frequency from parametric test data.  This example runs
that comparison on the parametric-test substrate, sweeps the training
budget (the data-availability question), and shows the GP's extra
deliverable: calibrated uncertainty.

Run:  python examples/fmax_prediction.py
"""

import numpy as np

from repro.core import StandardScaler, train_test_split
from repro.flows import format_table
from repro.kernels import RBFKernel, median_heuristic_gamma
from repro.learn import GaussianProcessRegressor
from repro.mfgtest import FmaxStudy


def family_comparison():
    print("=" * 70)
    print("Five regression families on one Fmax task ([20])")
    print("=" * 70)
    study = FmaxStudy(random_state=0)
    result = study.run(n_chips=1500)
    print(
        format_table(
            ["family", "R^2", "RMSE"],
            [[name, r2, rmse] for name, r2, rmse in result.rows],
        )
    )
    print(f"winner: {result.best_family()} "
          "(Fmax is nonlinear in the tests: saturation + thermal "
          "throttling)")
    return study


def uncertainty_demo(study):
    print()
    print("=" * 70)
    print("What the GP adds: knowing when it does not know")
    print("=" * 70)
    X, fmax = study.make_data(n_chips=600)
    X_train, X_test, y_train, y_test = train_test_split(
        X, fmax, test_fraction=0.5, random_state=1
    )
    scaler = StandardScaler().fit(X_train[:200])
    Z_train = scaler.transform(X_train[:200])
    Z_test = scaler.transform(X_test)
    gamma = median_heuristic_gamma(Z_train)
    gp = GaussianProcessRegressor(
        kernel=RBFKernel(gamma), noise=1e-2
    ).fit(Z_train, y_train[:200])
    mean, std = gp.predict(Z_test, return_std=True)

    residual = np.abs(mean - y_test)
    confident = std < np.median(std)
    print(
        format_table(
            ["prediction bucket", "chips", "mean |error| (MHz-like)"],
            [
                ["GP confident (low sigma)", int(confident.sum()),
                 float(residual[confident].mean())],
                ["GP unsure (high sigma)", int((~confident).sum()),
                 float(residual[~confident].mean())],
            ],
        )
    )
    inside = np.mean(np.abs(mean - y_test) <= 2 * std + 1e-9)
    print(f"fraction of chips within the GP's 2-sigma band: {inside:.1%}")


def main():
    study = family_comparison()
    uncertainty_demo(study)


if __name__ == "__main__":
    main()
