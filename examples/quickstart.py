"""Quickstart: the core toolkit in five minutes.

Walks the concepts of the paper's Section 2 on synthetic data:

1. a Fig. 1 dataset and train/test methodology;
2. the four basic ideas of Section 2.1 on one classification problem;
3. the kernel trick (Fig. 3): one SVM, two learning spaces;
4. overfitting and regularization (Fig. 5 / Section 2.3);
5. instrumented, parallel model selection over a pipeline with nested
   hyper-parameters (Section 2.3's selection problem done properly).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    Dataset,
    EventLog,
    GridSearchCV,
    KFold,
    Pipeline,
    StandardScaler,
    complexity_curve,
    train_test_split,
)
from repro.flows import format_table
from repro.kernels import LinearKernel, PolynomialKernel, RBFKernel
from repro.learn import (
    SVC,
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    LogisticRegression,
    QuadraticDiscriminantAnalysis,
)


def section_1_dataset():
    print("=" * 70)
    print("1. The Fig. 1 dataset abstraction")
    print("=" * 70)
    rng = np.random.default_rng(0)
    X = np.vstack(
        [rng.normal(-1.5, 0.8, size=(100, 3)), rng.normal(1.5, 0.8, size=(100, 3))]
    )
    y = np.repeat([0, 1], 100)
    data = Dataset(X, y, feature_names=["vdd_droop", "temp", "freq"])
    print(data)
    print("class counts:", data.class_counts())
    train, test = data.split(test_fraction=0.3, random_state=1)
    print(f"split into {len(train)} train / {len(test)} test samples")
    return train, test


def section_2_basic_ideas(train, test):
    print()
    print("=" * 70)
    print("2. Section 2.1: four basic ideas, one problem")
    print("=" * 70)
    models = [
        ("nearest neighbor", KNeighborsClassifier(n_neighbors=7)),
        ("model estimation (linear)", LogisticRegression(max_iter=400)),
        ("density estimation (Eq. 1)", QuadraticDiscriminantAnalysis()),
        ("Bayesian inference", GaussianNaiveBayes()),
    ]
    rows = []
    for name, model in models:
        model.fit(train.X, train.y)
        rows.append([name, model.score(test.X, test.y)])
    print(format_table(["basic idea", "test accuracy"], rows))


def section_3_kernel_trick():
    print()
    print("=" * 70)
    print("3. Fig. 3: the kernel trick")
    print("=" * 70)
    rng = np.random.default_rng(2)
    n = 80
    radii = np.concatenate(
        [rng.uniform(0, 1, n), rng.uniform(2, 3, n)]
    )
    angles = rng.uniform(0, 2 * np.pi, 2 * n)
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = np.repeat([0, 1], n)

    linear = SVC(kernel=LinearKernel(), C=1.0, random_state=0).fit(X, y)
    quadratic = SVC(
        kernel=PolynomialKernel(degree=2, coef0=0.0), C=10.0, random_state=0
    ).fit(X, y)
    print(
        format_table(
            ["learning space", "accuracy", "support vectors"],
            [
                ["input space (linear kernel)", linear.score(X, y),
                 linear.n_support_],
                ["feature space (<x,z>^2)", quadratic.score(X, y),
                 quadratic.n_support_],
            ],
        )
    )
    print("same SMO algorithm; only the kernel changed (Fig. 4).")


def section_4_overfitting():
    print()
    print("=" * 70)
    print("4. Fig. 5: overfitting vs model complexity")
    print("=" * 70)
    rng = np.random.default_rng(3)
    X_train = rng.uniform(-1, 1, size=(250, 2))
    y_clean = (X_train[:, 0] > 0).astype(int)
    flip = rng.uniform(size=250) < 0.25
    y_train = np.where(flip, 1 - y_clean, y_clean)
    X_val = rng.uniform(-1, 1, size=(300, 2))
    y_val = (X_val[:, 0] > 0).astype(int)

    curve = complexity_curve(
        lambda: DecisionTreeClassifier(random_state=0),
        "max_depth",
        [1, 2, 4, 6, 10, 14],
        X_train, y_train, X_val, y_val,
    )
    rows = [[v, t, w] for v, t, w in curve.rows()]
    print(format_table(["max_depth", "train error", "validation error"],
                       rows))
    print(f"best complexity: max_depth={curve.best_value()}; "
          f"overfitting detected past it: {curve.overfitting_detected()}")


def section_5_model_selection(train, test):
    print()
    print("=" * 70)
    print("5. Grid search over a pipeline, nested params, full trace")
    print("=" * 70)
    log = EventLog()
    search = GridSearchCV(
        Pipeline(
            [("scale", StandardScaler()),
             ("svc", SVC(kernel=RBFKernel(1.0), random_state=0))]
        ),
        {"svc__C": [0.5, 2.0], "svc__kernel__gamma": [0.1, 1.0]},
        cv=KFold(3, shuffle=True, random_state=0),
        backend="thread",
        event_log=log,
    )
    search.fit(train.X, train.y)
    rows = [
        [str(params), f"{mean:.3f}", rank]
        for params, mean, rank in zip(
            search.cv_results_["params"],
            search.cv_results_["mean_test_score"],
            search.cv_results_["rank_test_score"],
        )
    ]
    print(format_table(["candidate", "mean CV accuracy", "rank"], rows))
    print(f"best: {search.best_params_}  "
          f"(CV {search.best_score_:.3f}, "
          f"test {search.score(test.X, test.y):.3f})")
    summary = log.summary()
    print(f"trace: {len(log)} spans; "
          f"{summary['fit']['count']} fits took "
          f"{summary['fit']['total_seconds'] * 1e3:.0f} ms total "
          f"on the {search.backend_name_!r} backend")


def main():
    train, test = section_1_dataset()
    section_2_basic_ideas(train, test)
    section_3_kernel_trick()
    section_4_overfitting()
    section_5_model_selection(train, test)


if __name__ == "__main__":
    main()
