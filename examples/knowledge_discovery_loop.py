"""Example: the Section 1/Section 5 methodology in code.

Before any algorithm runs, the paper asks four questions of a proposed
mining methodology; during mining, it prescribes an iterative loop in
which domain knowledge judges each round's result and adjusts the next.
This example applies both to a concrete task: choosing a kernel for the
novel-test-selection flow.

The loop mines with a candidate kernel, a domain-knowledge "judge"
checks whether the selected tests kept enough coverage, and the adjust
step escalates to a richer kernel when they did not — exactly the
"challenges are often related to the kernel or feature development"
experience the paper reports.

Run:  python examples/knowledge_discovery_loop.py
"""

from repro.flows import KnowledgeDiscoveryLoop, MethodologyChecklist
from repro.kernels import BlendedSpectrumKernel, SpectrumKernel
from repro.verification import (
    NoveltyTestSelector,
    Randomizer,
    TestTemplate,
    run_selection_experiment,
)


def checklist() -> MethodologyChecklist:
    assessment = MethodologyChecklist("novelty-driven test selection")
    assessment.assess(
        "no guaranteed result required", True,
        "a missed novel test costs one redundant simulation, not a bug "
        "escape; coverage is re-checked downstream",
    )
    assessment.assess(
        "data availability", True,
        "the randomizer emits unlimited tests; simulated tests are "
        "already logged",
    )
    assessment.assess(
        "added value over existing flow", True,
        "the filter sits in front of the existing simulation farm and "
        "only removes work",
    )
    assessment.assess(
        "no extra engineering burden", True,
        "the kernel consumes the assembly text the flow already has",
    )
    return assessment


def main():
    print("Step 1 — the Section 1 checklist, before any mining:")
    assessment = checklist()
    print(assessment.describe())
    if not assessment.is_viable():
        print("methodology rejected; stop here (the Fig. 12 lesson).")
        return

    print("\nStep 2 — the Section 5 iterative loop (kernel development):")
    randomizer = Randomizer(random_state=23)
    stream = list(randomizer.stream(TestTemplate(), 500))

    kernel_ladder = [
        ("unigram spectrum", lambda: SpectrumKernel(k=1)),
        ("blended spectrum k<=2",
         lambda: BlendedSpectrumKernel(max_k=2)),
        ("blended spectrum k<=3 + lexical backstop",
         lambda: BlendedSpectrumKernel(max_k=3)),
    ]

    def mine(context):
        rung = kernel_ladder[context["rung"]]
        name, kernel_factory = rung
        selector = NoveltyTestSelector(
            kernel=kernel_factory(), nu=0.08, seed_count=10,
            lexical_backstop=(context["rung"] == 2),
        )
        result = run_selection_experiment(stream, selector=selector)
        return {"kernel": name, "result": result}

    def judge(mined):
        result = mined["result"]
        kept = result.coverage_match_fraction
        ok = kept >= 0.97
        feedback = (
            f"{mined['kernel']}: kept {kept:.1%} of max coverage with "
            f"{result.n_selected} simulations"
        )
        return ok, feedback

    def adjust(context, feedback):
        context = dict(context)
        context["rung"] = min(context["rung"] + 1, len(kernel_ladder) - 1)
        return context

    loop = KnowledgeDiscoveryLoop(mine, judge, adjust, max_iterations=3)
    accepted = loop.run({"rung": 0})

    for record in loop.history:
        mark = "ACCEPT" if record.accepted else "reject"
        print(f"  iteration {record.iteration}: [{mark}] {record.feedback}")
    if accepted is None:
        print("no kernel satisfied the judge within the budget.")
    else:
        result = accepted["result"]
        print(
            f"\naccepted kernel: {accepted['kernel']} — "
            f"{result.n_selected} simulated of {result.n_stream} "
            f"({result.coverage_match_fraction:.1%} coverage kept)"
        )


if __name__ == "__main__":
    main()
