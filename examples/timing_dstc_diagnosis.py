"""Example: design-silicon timing correlation diagnosis (Fig. 10).

A design block's paths are timed by the signoff timer and "measured" on
silicon carrying an unmodeled metal-5 problem.  The DSTC flow clusters
the mismatch into fast/slow populations and learns a rule explaining
the slow cluster in physical path features — recovering the injected
mechanism exactly the way the paper's case study recovered its metal-5
via issue.

Run:  python examples/timing_dstc_diagnosis.py
"""

import numpy as np

from repro.flows import format_table, sparkline
from repro.timing import (
    DSTCAnalysis,
    PathGenerator,
    SiliconModel,
    StaticTimer,
    SystematicEffect,
)


def main():
    print("generating a design block of 500 timing paths...")
    generator = PathGenerator(random_state=11)
    paths = generator.generate_block(500, block="blk0")

    timer = StaticTimer()
    predicted = timer.report(paths)

    effect = SystematicEffect()  # the unmodeled metal-5 problem
    silicon = SiliconModel(effect=effect, random_state=11)
    measured = silicon.measure_all(paths)

    print("running the DSTC analysis (cluster + rule learning)...")
    analysis = DSTCAnalysis(random_state=0)
    result = analysis.analyze(paths, predicted, measured)

    print(
        format_table(
            ["cluster", "paths", "mean silicon-vs-timer mismatch"],
            [
                ["fast", result.n_fast, f"{result.cluster_centers[0]:+.3f}"],
                ["slow", result.n_slow, f"{result.cluster_centers[1]:+.3f}"],
            ],
            title="Fig. 10 (left): mismatch clusters in block blk0",
        )
    )
    histogram, _ = np.histogram(result.mismatch, bins=40)
    print("mismatch distribution:", sparkline(histogram, width=40))

    print("\nFig. 10 (right): learned diagnosis rules")
    for rule in result.rules:
        print("  ", rule)
    print("\nfeatures blamed:", ", ".join(result.rule_features()))
    print("injected mechanism: extra delay per via45/via56 and slow M5 "
          "wire — the rule points at the right physics.")

    # follow-up an engineer would run: check the rule against ground truth
    slow_via45 = result.measured[result.slow_mask].mean()
    fast_via45 = result.measured[~result.slow_mask].mean()
    print(f"\nmean measured delay: slow cluster {slow_via45:.1f}, "
          f"fast cluster {fast_via45:.1f}")


if __name__ == "__main__":
    main()
