"""Example: novel test selection and template refinement in a
constrained-random processor verification environment.

Reproduces the two verification case studies of the paper (Fig. 6,
Fig. 7, Table 1) at demonstration scale:

- stream constrained-random tests at the load-store unit simulator and
  use one-class-SVM novelty over a program spectrum kernel to skip
  redundant simulations;
- learn CN2-SD rules from the tests that hit rare coverage points and
  fold them back into the test template.

Run:  python examples/verification_test_selection.py
"""

from repro.flows import format_table, sparkline
from repro.verification import (
    NoveltyTestSelector,
    Randomizer,
    SPECIAL_POINT_NAMES,
    TemplateRefinementFlow,
    TestTemplate,
    run_selection_experiment,
)


def novel_test_selection():
    print("=" * 70)
    print("Part 1 — novel test selection (Fig. 7)")
    print("=" * 70)
    randomizer = Randomizer(random_state=3)
    stream = list(randomizer.stream(TestTemplate(), 800))
    print(f"randomizer produced {len(stream)} tests; "
          "simulating both arms...")

    selector = NoveltyTestSelector(nu=0.05, seed_count=10, retrain_every=20)
    result = run_selection_experiment(stream, selector=selector)

    print(
        format_table(
            ["quantity", "value"],
            [
                ["max coverage (cross points)", result.max_coverage],
                ["tests to max, simulate everything",
                 result.baseline_tests_to_max],
                ["tests simulated with novelty filter", result.n_selected],
                ["coverage kept", f"{result.coverage_match_fraction:.1%}"],
                ["saving at matched coverage", f"{result.saving:.1%}"],
            ],
        )
    )
    print("coverage growth (baseline) ",
          sparkline(result.baseline_trace.coverage, width=50))
    print("coverage growth (selected) ",
          sparkline(result.selection_trace.coverage, width=50))


def template_refinement():
    print()
    print("=" * 70)
    print("Part 2 — rule-learning template refinement (Table 1)")
    print("=" * 70)
    flow = TemplateRefinementFlow(Randomizer(random_state=42))
    flow.run(TestTemplate(), stage_sizes=(400, 100, 50))

    rows = [
        [name, n_tests, *counts] for name, n_tests, counts in flow.table()
    ]
    print(
        format_table(
            ["stage", "# tests", *SPECIAL_POINT_NAMES],
            rows,
            title="coverage-point hits per stage",
        )
    )
    print("\nrules learned in round 1 (fed back into the template):")
    for rule in flow.rounds[0].rules:
        print("  ", rule)
    print("\nknob constraints derived from the rules:")
    for knob, (low, high) in flow.rounds[0].constraints.items():
        print(f"   {knob}: pushed to [{low:.3g}, {high:.3g}]")


def main():
    novel_test_selection()
    template_refinement()


if __name__ == "__main__":
    main()
