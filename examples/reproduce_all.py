"""Reproduce every figure and table of the paper in one run.

Runs a scaled version of each experiment back to back and prints one
summary table of paper-claim vs measured-here.  The full-size runs with
per-experiment detail live in ``benchmarks/`` (see EXPERIMENTS.md); this
script is the five-minute end-to-end sanity pass.

Run:  python examples/reproduce_all.py
"""

import numpy as np

from repro.flows import format_table


def fig3():
    from repro.kernels import LinearKernel, PolynomialKernel
    from repro.learn import SVC

    rng = np.random.default_rng(0)
    radii = np.r_[rng.uniform(0, 1, 70), rng.uniform(2, 3, 70)]
    angles = rng.uniform(0, 2 * np.pi, 140)
    X = np.c_[radii * np.cos(angles), radii * np.sin(angles)]
    y = np.r_[np.zeros(70), np.ones(70)]
    linear = SVC(kernel=LinearKernel(), random_state=0).fit(X, y)
    quad = SVC(
        kernel=PolynomialKernel(degree=2, coef0=0.0), C=10.0,
        random_state=0,
    ).fit(X, y)
    return (
        "Fig. 3 kernel trick",
        "separable only in Phi-space",
        f"linear acc {linear.score(X, y):.2f}, "
        f"<x,z>^2 acc {quad.score(X, y):.2f}",
    )


def fig5():
    from repro.core import complexity_curve
    from repro.learn import DecisionTreeClassifier

    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(250, 2))
    y_clean = (X[:, 0] > 0).astype(int)
    y = np.where(rng.uniform(size=250) < 0.25, 1 - y_clean, y_clean)
    X_val = rng.uniform(-1, 1, size=(250, 2))
    y_val = (X_val[:, 0] > 0).astype(int)
    curve = complexity_curve(
        lambda: DecisionTreeClassifier(random_state=0),
        "max_depth", [1, 3, 6, 10, 14], X, y, X_val, y_val,
    )
    return (
        "Fig. 5 overfitting",
        "validation error turns up past the knee",
        f"overfitting detected: {curve.overfitting_detected()}, "
        f"best depth {curve.best_value()}",
    )


def fig7():
    from repro.verification import (
        NoveltyTestSelector,
        Randomizer,
        TestTemplate,
        run_selection_experiment,
    )

    programs = list(Randomizer(random_state=3).stream(TestTemplate(), 600))
    selector = NoveltyTestSelector(nu=0.05, seed_count=10)
    result = run_selection_experiment(programs, selector=selector)
    return (
        "Fig. 7 test selection",
        "~95% simulation saving at equal coverage",
        f"{result.saving:.0%} saving, "
        f"{result.coverage_match_fraction:.0%} coverage kept",
    )


def table1():
    from repro.verification import (
        Randomizer,
        TemplateRefinementFlow,
        TestTemplate,
    )

    flow = TemplateRefinementFlow(Randomizer(random_state=42))
    stages = flow.run(TestTemplate(), stage_sizes=(300, 80, 40))
    return (
        "Table 1 refinement",
        "400 tests cover A0-A1 only; 50 refined tests cover all",
        f"original covers {len(stages[0].covered_points())}/8, "
        f"final covers {len(stages[-1].covered_points())}/8",
    )


def fig9():
    from repro.litho import LayoutGenerator, run_variability_experiment

    generator = LayoutGenerator(random_state=7)
    report, _ = run_variability_experiment(
        generator.generate(rows=192, cols=192),
        generator.generate(rows=192, cols=192),
        stride=8, random_state=0,
    )
    return (
        "Fig. 9 litho model M",
        "most simulator hotspots identified",
        f"recall {report.recall:.2f}, AUC {report.auc:.2f}",
    )


def fig10():
    from repro.timing import run_dstc_experiment

    result = run_dstc_experiment(n_paths=300, random_state=11)
    return (
        "Fig. 10 DSTC",
        "rule blames layer-4/5 & 5/6 vias (metal-5 issue)",
        f"rule features: {', '.join(result.rule_features())}",
    )


def fig11():
    from repro.mfgtest import CustomerReturnStudy

    report = CustomerReturnStudy(random_state=2).run(
        n_train=5000, n_later=5000, n_sister=5000,
        train_defect_rate=0.001, later_defect_rate=0.001,
        sister_defect_rate=0.001,
    )
    captured = (
        report.training.n_returns_flagged
        + report.later_batch.n_returns_flagged
        + report.sister_product.n_returns_flagged
    )
    total = (
        report.training.n_returns
        + report.later_batch.n_returns
        + report.sister_product.n_returns
    )
    return (
        "Fig. 11 returns",
        "model catches later + sister-product returns",
        f"{captured}/{total} returns flagged across all populations",
    )


def fig12():
    from repro.mfgtest import run_drop_study

    result = run_drop_study(
        n_history=100_000, n_future=80_000,
        future_excursion_rate=1e-4, random_state=1,
    )
    dropped = all(d.recommended_drop for d in result.decisions)
    return (
        "Fig. 12 difficult case",
        "data says drop; future escapes anyway",
        f"drop recommended: {dropped}, "
        f"future escapes: {result.total_escapes()}",
    )


def main():
    experiments = [fig3, fig5, fig7, table1, fig9, fig10, fig11, fig12]
    rows = []
    for experiment in experiments:
        print(f"running {experiment.__name__} ...", flush=True)
        rows.append(list(experiment()))
    print()
    print(
        format_table(
            ["experiment", "paper claim", "measured here"],
            rows,
            title="Wang & Abadir (DAC 2014) — reproduction summary",
        )
    )


if __name__ == "__main__":
    main()
