"""Example: screening customer returns with multivariate test analysis.

Reproduces Fig. 11 and the Fig. 12 cautionary tale on the parametric
test-floor substrate:

- Part 1 (Fig. 11): learn from a known return, project it as an outlier
  in a 3-test space, and show the model catching later returns and a
  sister product's returns;
- Part 2 (Fig. 12): the test-drop study where the mining answer is
  data-supported and still wrong about the future.

Run:  python examples/customer_returns_screening.py
"""

from repro.flows import format_table
from repro.mfgtest import CustomerReturnStudy, run_drop_study


def part_1_returns():
    print("=" * 70)
    print("Part 1 — modeling customer returns (Fig. 11)")
    print("=" * 70)
    study = CustomerReturnStudy(random_state=2)
    report = study.run(
        n_train=10_000, n_later=10_000, n_sister=10_000,
        train_defect_rate=0.0006, later_defect_rate=0.0006,
        sister_defect_rate=0.0008,
    )
    print("important-test selection picked the space:",
          ", ".join(report.selected_tests))
    rows = []
    for plot, outcome in [
        ("(1) training batch", report.training),
        ("(2) months later", report.later_batch),
        ("(3) sister product, a year later", report.sister_product),
    ]:
        rows.append(
            [
                plot,
                outcome.n_chips,
                f"{outcome.n_returns_flagged}/{outcome.n_returns}",
                f"{outcome.overkill_rate:.4%}",
            ]
        )
    print(
        format_table(
            ["population", "shipped", "returns flagged", "overkill"],
            rows,
        )
    )
    if len(report.training.return_scores):
        print(
            "outlier scores of the known returns:",
            ", ".join(f"{s:.1f}" for s in report.training.return_scores),
            f"(threshold {report.training.threshold:.1f})",
        )


def part_2_difficult_case():
    print()
    print("=" * 70)
    print("Part 2 — the difficult case (Fig. 12)")
    print("=" * 70)
    result = run_drop_study(
        n_history=200_000, n_future=100_000,
        future_excursion_rate=8e-5, random_state=1,
    )
    print("analysis of 200K-chip history:")
    for decision in result.decisions:
        print("  ", decision.describe())
    print("\n...the drop looks safe. Playing the next 100K chips:")
    print(
        format_table(
            ["dropped test", "escapes"],
            [[c, e] for c, e in result.future_escapes.items()],
        )
    )
    print(
        "\nthe escapes come from an excursion mode absent from all "
        "history —\nno formulation demanding a guaranteed escape bound "
        "could have been\nanswered from the data (Section 4 of the paper)."
    )


def main():
    part_1_returns()
    part_2_difficult_case()


if __name__ == "__main__":
    main()
