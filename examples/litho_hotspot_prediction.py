"""Example: fast layout-variability prediction with the HI kernel.

Reproduces the Fig. 8 / Fig. 9 flow: label layout windows with the
lithography variability simulator (the golden reference), train an
SVM with the Histogram Intersection kernel on the windows' density/
pitch histograms, and predict hotspots on an unseen layout.  Renders
both hotspot maps side by side as ASCII.

Run:  python examples/litho_hotspot_prediction.py
"""

import numpy as np

from repro.flows import format_table
from repro.litho import LayoutGenerator, run_variability_experiment


def render_map(anchors, flags, stride, title):
    """ASCII hotspot map: '#' hotspot, '.' cool window."""
    rows = sorted({r for r, _ in anchors})
    cols = sorted({c for _, c in anchors})
    index = {(r, c): i for i, (r, c) in enumerate(map(tuple, anchors))}
    lines = [title]
    for r in rows:
        line = "".join(
            "#" if flags[index[(r, c)]] else "." for c in cols
        )
        lines.append(line)
    return "\n".join(lines)


def main():
    print("generating layouts and running the golden simulation...")
    generator = LayoutGenerator(random_state=7)
    train_layout = generator.generate(rows=224, cols=224)
    test_layout = generator.generate(rows=224, cols=224)

    report, details = run_variability_experiment(
        train_layout, test_layout, window_size=32, stride=8,
        random_state=0,
    )

    print(
        format_table(
            ["quantity", "value"],
            report.rows(),
            title="model M vs lithography simulation (Fig. 9)",
        )
    )

    anchors = [tuple(a) for a in details["anchors"]]
    # sparser grid for readability
    keep = [i for i, (r, c) in enumerate(anchors)
            if r % 16 == 0 and c % 16 == 0]
    sparse_anchors = [anchors[i] for i in keep]
    truth = details["truth"][keep]
    predicted = details["predictions"][keep]
    print()
    print(render_map(sparse_anchors, truth, 16,
                     "simulation hotspot map ('#'=high variability):"))
    print()
    print(render_map(sparse_anchors, predicted, 16,
                     "model M prediction:"))
    agreement = float(np.mean(truth == predicted))
    print(f"\nwindow-level agreement on this grid: {agreement:.1%}")


if __name__ == "__main__":
    main()
