"""Histogram kernels — the similarity functions behind Fig. 9.

The litho variability work the paper describes ([13]) compared layout
clips with the Histogram Intersection (HI) kernel: each clip is reduced
to one or more histograms (e.g. of local pattern density) and similarity
is the overlap of the histograms.  HI is provably positive definite for
non-negative inputs, so it is safe for SVM-family learners.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel


def _as_nonneg_matrix(samples) -> np.ndarray:
    H = np.asarray(samples, dtype=float)
    if H.ndim == 1:
        H = H.reshape(1, -1)
    if np.any(H < 0):
        raise ValueError("histogram kernels require non-negative inputs")
    return H


class HistogramIntersectionKernel(Kernel):
    """``k(h, g) = sum_i min(h_i, g_i)``.

    The kernel used by the paper's layout-variability case study.
    Optionally normalizes histograms to unit mass first so that clips of
    different total area compare fairly.
    """

    def __init__(self, normalize: bool = True):
        self.normalize = normalize

    def _prepare(self, H: np.ndarray) -> np.ndarray:
        if not self.normalize:
            return H
        mass = H.sum(axis=1, keepdims=True)
        mass[mass == 0.0] = 1.0
        return H / mass

    def __call__(self, x, z) -> float:
        H = self._prepare(_as_nonneg_matrix([x, z]))
        return float(np.minimum(H[0], H[1]).sum())

    def matrix(self, samples) -> np.ndarray:
        H = self._prepare(_as_nonneg_matrix(samples))
        n = len(H)
        K = np.empty((n, n), dtype=float)
        for i in range(n):
            K[i, i:] = np.minimum(H[i], H[i:]).sum(axis=1)
            K[i:, i] = K[i, i:]
        return K

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = self._prepare(_as_nonneg_matrix(samples_a))
        B = self._prepare(_as_nonneg_matrix(samples_b))
        K = np.empty((len(A), len(B)), dtype=float)
        for i in range(len(A)):
            K[i] = np.minimum(A[i], B).sum(axis=1)
        return K


class ChiSquaredKernel(Kernel):
    """Exponential chi-squared kernel ``exp(-gamma * chi2(h, g))``.

    ``chi2(h, g) = sum_i (h_i - g_i)^2 / (h_i + g_i)`` with 0/0 := 0.
    A standard alternative to HI for histogram features.
    """

    def __init__(self, gamma: float = 1.0, normalize: bool = True):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)
        self.normalize = normalize

    def _prepare(self, H: np.ndarray) -> np.ndarray:
        if not self.normalize:
            return H
        mass = H.sum(axis=1, keepdims=True)
        mass[mass == 0.0] = 1.0
        return H / mass

    @staticmethod
    def _chi2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        num = (a - b) ** 2
        den = a + b
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(den > 0, num / np.where(den > 0, den, 1.0), 0.0)
        return terms.sum(axis=-1)

    def __call__(self, x, z) -> float:
        H = self._prepare(_as_nonneg_matrix([x, z]))
        return float(np.exp(-self.gamma * self._chi2(H[0], H[1])))

    def matrix(self, samples) -> np.ndarray:
        H = self._prepare(_as_nonneg_matrix(samples))
        d = self._chi2(H[:, None, :], H[None, :, :])
        return np.exp(-self.gamma * d)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = self._prepare(_as_nonneg_matrix(samples_a))
        B = self._prepare(_as_nonneg_matrix(samples_b))
        d = self._chi2(A[:, None, :], B[None, :, :])
        return np.exp(-self.gamma * d)
