"""Shared Gram-matrix engine: blockwise evaluation, caching, counters.

Section 2.2 makes the kernel the single point through which every
learning algorithm sees data (Fig. 4) — which also makes Gram-matrix
evaluation the shared hot path of every kernel flow in this library.
The :class:`GramEngine` centralizes that path:

- **Blockwise evaluation.**  Symmetric and cross Gram matrices are
  assembled from rectangular blocks.  When the kernel provides a
  vectorized collection path (an overridden ``matrix``/``cross_matrix``)
  each block uses it; kernels that only define ``__call__`` (arbitrary
  object samples: assembly programs, layout clips) fall back to a
  chunked pairwise loop that can run on a thread pool.
- **Caching.**  Computed blocks are cached under a key combining the
  kernel's *structural* identity (:meth:`Kernel.cache_key`) with content
  fingerprints of the sample blocks, inside an LRU with a byte budget.
  Repeated fits on the same data — grid searches, cross-validation
  sweeps, the selection flow's periodic retrains — hit the cache instead
  of re-evaluating the kernel.
- **Instrumentation.**  Counters record block computations, cache
  hits/misses, fresh pair evaluations, evictions, and wall time, so
  benchmarks can attribute speedups precisely.

A process-wide engine (:func:`default_engine`) is shared by every
estimator unless an explicit engine is passed, so independent fits on
the same data share one cache.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core import instrument
from .base import Kernel

__all__ = [
    "GramCounters",
    "GramEngine",
    "default_engine",
    "set_default_engine",
]


# ---------------------------------------------------------------------
# Sample fingerprinting
# ---------------------------------------------------------------------

def _digest(*chunks: bytes) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def _array_digest(arr: np.ndarray) -> bytes:
    if arr.dtype == object:
        return _digest(b"objarr", repr(arr.tolist()).encode())
    arr = np.ascontiguousarray(arr)
    return _digest(
        b"ndarray",
        str(arr.shape).encode(),
        arr.dtype.str.encode(),
        arr.tobytes(),
    )


def sample_fingerprint(sample) -> bytes:
    """Content fingerprint of a single sample (any supported type)."""
    if isinstance(sample, np.ndarray):
        return _array_digest(sample)
    if isinstance(sample, bytes):
        return _digest(b"bytes", sample)
    if isinstance(sample, str):
        return _digest(b"str", sample.encode())
    if isinstance(sample, (list, tuple)):
        return _digest(b"seq", repr(tuple(sample)).encode())
    if isinstance(sample, (bool, int, float, complex)):
        return _digest(b"num", repr(sample).encode())
    return _digest(b"repr", repr(sample).encode())


def _block_spans(n: int, block_size: int):
    return [(start, min(start + block_size, n)) for start in range(0, n, block_size)]


class _Samples:
    """A sliceable sample collection with lazily fingerprinted blocks."""

    def __init__(self, samples):
        if isinstance(samples, np.ndarray):
            self.data = samples
            self._is_array = True
        else:
            self.data = list(samples)
            self._is_array = False

    def __len__(self):
        return len(self.data)

    def block(self, span: Tuple[int, int]):
        return self.data[span[0] : span[1]]

    def fingerprint(self, span: Tuple[int, int]) -> bytes:
        block = self.data[span[0] : span[1]]
        if self._is_array:
            return _array_digest(np.asarray(block))
        return _digest(b"block", *[sample_fingerprint(s) for s in block])


# ---------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------

@dataclass
class GramCounters:
    """Instrumentation for one :class:`GramEngine`.

    ``cache_hits``/``cache_misses`` count *blocks* looked up in the
    cache; ``pair_evaluations`` counts Gram entries computed fresh (a
    hit contributes zero); ``compute_seconds`` is wall time spent inside
    block computation only.
    """

    gram_calls: int = 0
    cross_calls: int = 0
    blocks_computed: int = 0
    uncached_blocks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    pair_evaluations: int = 0
    downcast_blocks: int = 0
    compute_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable block lookups served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        record = {f.name: getattr(self, f.name) for f in fields(self)}
        record["hit_rate"] = self.hit_rate
        return record

    def copy(self) -> "GramCounters":
        return GramCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta(self, before: "GramCounters") -> "GramCounters":
        """Counter difference ``self - before`` (work done in between)."""
        return GramCounters(
            **{
                f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)


# ---------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------

class GramEngine:
    """Blockwise, cached, optionally parallel Gram-matrix evaluator.

    Parameters
    ----------
    block_size:
        Edge length of the square/rectangular blocks the output matrix
        is assembled from.  Collections at most this large are evaluated
        in a single kernel call, preserving the exact float behaviour of
        the kernel's own ``matrix``/``cross_matrix``.
    cache_bytes:
        LRU byte budget for cached blocks; ``0`` disables caching.
    n_jobs:
        Worker threads for the pairwise fallback used by kernels without
        a vectorized collection path.  ``1`` means serial; ``-1`` uses
        ``os.cpu_count()``.  Parallel and serial evaluation produce
        bitwise-identical results (same chunks, same assembly order).
    chunk_size:
        Rows per work unit in the pairwise fallback.
    dtype:
        Default output dtype: ``float64`` (exact) or ``float32`` (block
        mode: every block is computed in float64 and downcast, halving
        cache/assembly memory).  Overridable per call via the ``dtype``
        argument of :meth:`gram` / :meth:`cross_gram`.  Blocks are
        cached under their dtype, so float32 and float64 runs never
        serve each other's blocks.
    float32_error_budget:
        Declared per-block error budget for float32 block mode: after
        downcasting, ``max|K32 - K64|`` must stay within
        ``budget * max(1, max|K64|)`` or the engine raises
        ``ValueError``.  The default (1e-6) sits comfortably above
        float32 rounding (~1.2e-7 relative) while catching overflow to
        ``inf`` and catastrophic kernels.
    """

    def __init__(self, block_size: int = 256, cache_bytes: int = 64 * 2**20,
                 n_jobs: int = 1, chunk_size: int = 32, dtype="float64",
                 float32_error_budget: float = 1e-6):
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if n_jobs == 0:
            raise ValueError("n_jobs must be a positive int or -1")
        if float32_error_budget <= 0:
            raise ValueError("float32_error_budget must be positive")
        self.block_size = int(block_size)
        self.cache_bytes = int(cache_bytes)
        self.n_jobs = int(n_jobs)
        self.chunk_size = int(chunk_size)
        self.dtype = self._check_dtype(dtype)
        self.float32_error_budget = float(float32_error_budget)
        self.counters = GramCounters()
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._cached_bytes = 0
        self._lock = threading.RLock()

    # -- engines are shared infrastructure, not hyper-parameter values;
    #    clone()/deepcopy of an estimator must not fork the cache (and a
    #    live lock cannot be deep-copied anyway)
    def __deepcopy__(self, memo) -> "GramEngine":
        return self

    # -- pickling ships configuration only: a worker process gets an
    #    equivalent engine with a cold cache and fresh counters (the
    #    parent's lock, cache, and stats never cross the boundary)
    def __getstate__(self) -> dict:
        return {
            "block_size": self.block_size,
            "cache_bytes": self.cache_bytes,
            "n_jobs": self.n_jobs,
            "chunk_size": self.chunk_size,
            "dtype": self.dtype.str,
            "float32_error_budget": self.float32_error_budget,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def __repr__(self):
        return (
            f"GramEngine(block_size={self.block_size}, "
            f"cache_bytes={self.cache_bytes}, n_jobs={self.n_jobs})"
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def _check_dtype(dtype) -> np.dtype:
        resolved = np.dtype(dtype)
        if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {resolved}"
            )
        return resolved

    def _resolve_dtype(self, dtype) -> np.dtype:
        return self.dtype if dtype is None else self._check_dtype(dtype)

    def _finish_block(self, block: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Downcast a freshly computed float64 block to the requested
        dtype, enforcing the declared per-block error budget."""
        if dtype == np.dtype(np.float64):
            return block
        cast = block.astype(np.float32)
        if block.size:
            error = float(np.max(np.abs(cast.astype(np.float64) - block)))
            scale = max(1.0, float(np.max(np.abs(block))))
        else:
            error = 0.0
            scale = 1.0
        budget = self.float32_error_budget * scale
        if not error <= budget:
            raise ValueError(
                f"float32 block mode exceeded its error budget: block "
                f"error {error:.3e} > {budget:.3e} "
                f"(float32_error_budget={self.float32_error_budget:g}); "
                "the kernel's values do not fit float32 — use float64"
            )
        with self._lock:
            self.counters.downcast_blocks += 1
        return cast

    def gram(self, kernel: Kernel, samples: Sequence,
             dtype=None) -> np.ndarray:
        """Symmetric Gram matrix ``K[i, j] = k(samples[i], samples[j])``.

        Always returns a freshly allocated array; mutating it cannot
        poison the cache.  *dtype* overrides the engine default
        (``float32`` enables the downcast block mode for this call).
        """
        with self._lock:
            self.counters.gram_calls += 1
        instrument.metrics_registry().increment("gram.gram_calls")
        dtype = self._resolve_dtype(dtype)
        store = _Samples(samples)
        n = len(store)
        K = np.empty((n, n), dtype=dtype)
        if n == 0:
            return K
        kernel_key = self._kernel_key(kernel)
        spans = _block_spans(n, self.block_size)
        fps = (
            [store.fingerprint(span) for span in spans]
            if kernel_key is not None
            else None
        )
        for bi, span_a in enumerate(spans):
            for bj in range(bi, len(spans)):
                span_b = spans[bj]
                diagonal = bi == bj
                key = None
                if kernel_key is not None:
                    kind = "sym" if diagonal else "rect"
                    # dtype is part of the block identity: a float32 run
                    # must never be served a cached float64 block (or
                    # vice versa), even on an otherwise warm cache
                    key = (kernel_key, kind, dtype.str, fps[bi], fps[bj])
                block = self._lookup(key)
                if block is None:
                    block_a = store.block(span_a)
                    start = time.perf_counter()
                    if diagonal:
                        block = self._sym_block(kernel, block_a)
                    else:
                        block = self._rect_block(
                            kernel, block_a, store.block(span_b)
                        )
                    self._account(block, time.perf_counter() - start)
                    block = self._finish_block(block, dtype)
                    self._store(key, block)
                a0, a1 = span_a
                b0, b1 = span_b
                K[a0:a1, b0:b1] = block
                if not diagonal:
                    K[b0:b1, a0:a1] = block.T
        return K

    def cross_gram(self, kernel: Kernel, samples_a: Sequence,
                   samples_b: Sequence, dtype=None) -> np.ndarray:
        """Rectangular matrix ``K[i, j] = k(samples_a[i], samples_b[j])``."""
        with self._lock:
            self.counters.cross_calls += 1
        instrument.metrics_registry().increment("gram.cross_calls")
        dtype = self._resolve_dtype(dtype)
        store_a = _Samples(samples_a)
        store_b = _Samples(samples_b)
        K = np.empty((len(store_a), len(store_b)), dtype=dtype)
        if K.size == 0:
            return K
        kernel_key = self._kernel_key(kernel)
        spans_a = _block_spans(len(store_a), self.block_size)
        spans_b = _block_spans(len(store_b), self.block_size)
        fps_a = fps_b = None
        if kernel_key is not None:
            fps_a = [store_a.fingerprint(span) for span in spans_a]
            fps_b = [store_b.fingerprint(span) for span in spans_b]
        for bi, span_a in enumerate(spans_a):
            for bj, span_b in enumerate(spans_b):
                key = None
                if kernel_key is not None:
                    key = (kernel_key, "rect", dtype.str, fps_a[bi],
                           fps_b[bj])
                block = self._lookup(key)
                if block is None:
                    start = time.perf_counter()
                    block = self._rect_block(
                        kernel, store_a.block(span_a), store_b.block(span_b)
                    )
                    self._account(block, time.perf_counter() - start)
                    block = self._finish_block(block, dtype)
                    self._store(key, block)
                K[span_a[0] : span_a[1], span_b[0] : span_b[1]] = block
        return K

    # -- introspection -------------------------------------------------
    def counters_snapshot(self) -> GramCounters:
        """A consistent point-in-time copy of the counters.

        Safe to call from any thread; pair two snapshots with
        :meth:`GramCounters.delta` to attribute engine work to a span
        of wall time (the instrumentation layer does exactly this).
        """
        with self._lock:
            return self.counters.copy()

    def stats(self) -> dict:
        """Counter snapshot plus cache occupancy, as one flat dict."""
        with self._lock:
            record = self.counters.as_dict()
            record["cache_entries"] = len(self._cache)
            record["cached_bytes"] = self._cached_bytes
            record["cache_budget_bytes"] = self.cache_bytes
        return record

    def cache_info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._cache),
                "bytes": self._cached_bytes,
                "budget_bytes": self.cache_bytes,
            }

    def warm(self, kernel: Kernel, samples: Sequence,
             dtype=None) -> dict:
        """Precompute and cache every block of ``gram(kernel, samples)``.

        The serving layer calls this once per endpoint at load time so
        the model's support-vector blocks are resident before the first
        request arrives — a cold cache pays its kernel evaluations on a
        user-visible request otherwise.  Warming an already-warm engine
        is cheap (every lookup hits).

        Returns a dict with the blocks computed fresh by this call, the
        blocks served from cache, and the resulting cache occupancy.
        """
        before = self.counters_snapshot()
        self.gram(kernel, samples, dtype=dtype)
        delta = self.counters_snapshot().delta(before)
        info = self.cache_info()
        info["blocks_computed"] = delta.blocks_computed
        info["blocks_hit"] = delta.cache_hits
        return info

    def reset_counters(self) -> None:
        with self._lock:
            self.counters.reset()

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0

    # ------------------------------------------------------------------
    # Block computation
    # ------------------------------------------------------------------
    def _workers(self) -> int:
        if self.n_jobs == -1:
            return max(os.cpu_count() or 1, 1)
        return self.n_jobs

    def _sym_block(self, kernel: Kernel, block) -> np.ndarray:
        fast = getattr(type(kernel), "matrix", None)
        if fast is not None and fast is not Kernel.matrix:
            return np.asarray(kernel.matrix(block), dtype=float)
        m = len(block)
        K = np.empty((m, m), dtype=float)

        def rows(start: int, stop: int):
            out = []
            for i in range(start, stop):
                row = np.empty(m - i, dtype=float)
                for offset, j in enumerate(range(i, m)):
                    row[offset] = float(kernel(block[i], block[j]))
                out.append((i, row))
            return out

        for i, row in self._run_chunks(rows, m):
            K[i, i:] = row
            K[i:, i] = row
        return K

    def _rect_block(self, kernel: Kernel, block_a, block_b) -> np.ndarray:
        fast = getattr(type(kernel), "cross_matrix", None)
        if fast is not None and fast is not Kernel.cross_matrix:
            return np.asarray(kernel.cross_matrix(block_a, block_b), dtype=float)
        m, n = len(block_a), len(block_b)
        K = np.empty((m, n), dtype=float)

        def rows(start: int, stop: int):
            out = []
            for i in range(start, stop):
                row = np.empty(n, dtype=float)
                for j in range(n):
                    row[j] = float(kernel(block_a[i], block_b[j]))
                out.append((i, row))
            return out

        for i, row in self._run_chunks(rows, m):
            K[i] = row
        return K

    def _run_chunks(self, rows, m: int):
        """Run ``rows(start, stop)`` over row chunks, serially or on a
        thread pool; the chunking and assembly order are identical in
        both modes, so results match bitwise."""
        chunks = _block_spans(m, self.chunk_size)
        workers = self._workers()
        if workers <= 1 or len(chunks) <= 1:
            for start, stop in chunks:
                yield from rows(start, stop)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for result in pool.map(lambda span: rows(*span), chunks):
                yield from result

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _kernel_key(self, kernel) -> Optional[tuple]:
        if self.cache_bytes <= 0:
            return None
        cache_key = getattr(kernel, "cache_key", None)
        if cache_key is None:
            return None
        return cache_key()

    def _lookup(self, key) -> Optional[np.ndarray]:
        if key is None:
            return None
        with self._lock:
            block = self._cache.get(key)
            if block is None:
                self.counters.cache_misses += 1
                instrument.metrics_registry().increment("gram.cache_misses")
                return None
            self._cache.move_to_end(key)
            self.counters.cache_hits += 1
            instrument.metrics_registry().increment("gram.cache_hits")
            return block

    def _store(self, key, block: np.ndarray) -> None:
        if key is None:
            with self._lock:
                self.counters.uncached_blocks += 1
            return
        if block.nbytes > self.cache_bytes:
            return
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                return
            self._cache[key] = block
            self._cached_bytes += block.nbytes
            while self._cached_bytes > self.cache_bytes:
                _, evicted = self._cache.popitem(last=False)
                self._cached_bytes -= evicted.nbytes
                self.counters.evictions += 1

    def _account(self, block: np.ndarray, seconds: float) -> None:
        with self._lock:
            self.counters.blocks_computed += 1
            self.counters.pair_evaluations += int(block.size)
            self.counters.compute_seconds += seconds
        metrics = instrument.metrics_registry()
        metrics.increment("gram.blocks_computed")
        metrics.increment("gram.pair_evaluations", int(block.size))
        metrics.observe("gram.block_seconds", seconds)


# ---------------------------------------------------------------------
# Process-wide default engine
# ---------------------------------------------------------------------

_default_engine: Optional[GramEngine] = None
_default_engine_lock = threading.Lock()


def default_engine() -> GramEngine:
    """The process-wide shared engine (created lazily)."""
    global _default_engine
    if _default_engine is None:
        with _default_engine_lock:
            if _default_engine is None:
                _default_engine = GramEngine()
    return _default_engine


def set_default_engine(engine: GramEngine) -> GramEngine:
    """Replace the shared engine; returns the previous one (or a fresh
    default if none had been created), so callers can restore it."""
    global _default_engine
    with _default_engine_lock:
        previous = _default_engine if _default_engine is not None else GramEngine()
        _default_engine = engine
    return previous
