"""Kernels over real vectors.

Includes the paper's worked example: the degree-2 polynomial kernel
``k(x, x') = <x, x'>^2`` whose implicit feature map
``Phi(x1, x2) = (x1^2, x2^2, sqrt(2) x1 x2)`` makes concentric classes
linearly separable (Fig. 3).
"""

from __future__ import annotations

import numpy as np

from .base import Kernel


def _as_matrix(samples) -> np.ndarray:
    X = np.asarray(samples, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    return X


class LinearKernel(Kernel):
    """Dot product: learning stays in the input space."""

    def __call__(self, x, z) -> float:
        return float(np.dot(np.asarray(x, float), np.asarray(z, float)))

    def matrix(self, samples) -> np.ndarray:
        X = _as_matrix(samples)
        return X @ X.T

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        return _as_matrix(samples_a) @ _as_matrix(samples_b).T


class PolynomialKernel(Kernel):
    """``k(x, z) = (gamma <x, z> + coef0)^degree``.

    ``PolynomialKernel(degree=2, gamma=1.0, coef0=0.0)`` is exactly the
    paper's ``<x, z>^2`` example.
    """

    def __init__(self, degree: int = 2, gamma: float = 1.0, coef0: float = 0.0):
        if degree < 1:
            raise ValueError("degree must be at least 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if coef0 < 0:
            raise ValueError("coef0 must be non-negative for a PSD kernel")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def __call__(self, x, z) -> float:
        dot = float(np.dot(np.asarray(x, float), np.asarray(z, float)))
        return (self.gamma * dot + self.coef0) ** self.degree

    def matrix(self, samples) -> np.ndarray:
        X = _as_matrix(samples)
        return (self.gamma * (X @ X.T) + self.coef0) ** self.degree

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = _as_matrix(samples_a)
        B = _as_matrix(samples_b)
        return (self.gamma * (A @ B.T) + self.coef0) ** self.degree


def explicit_degree2_map(x) -> np.ndarray:
    """The paper's explicit map Phi(x1, x2) = (x1^2, x2^2, sqrt(2) x1 x2).

    Provided so tests can verify the kernel trick identity
    ``k(x, z) = <Phi(x), Phi(z)>`` directly.
    """
    x = np.asarray(x, dtype=float)
    if x.shape != (2,):
        raise ValueError("the illustrated map is defined for 2-D inputs")
    return np.array([x[0] ** 2, x[1] ** 2, np.sqrt(2.0) * x[0] * x[1]])


class RBFKernel(Kernel):
    """Gaussian radial basis function ``exp(-gamma ||x - z||^2)``."""

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def __call__(self, x, z) -> float:
        diff = np.asarray(x, float) - np.asarray(z, float)
        return float(np.exp(-self.gamma * np.dot(diff, diff)))

    def _sq_dists(self, A, B) -> np.ndarray:
        sq_a = np.sum(A * A, axis=1)[:, None]
        sq_b = np.sum(B * B, axis=1)[None, :]
        d2 = sq_a + sq_b - 2.0 * (A @ B.T)
        return np.clip(d2, 0.0, None)

    def matrix(self, samples) -> np.ndarray:
        X = _as_matrix(samples)
        return np.exp(-self.gamma * self._sq_dists(X, X))

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = _as_matrix(samples_a)
        B = _as_matrix(samples_b)
        return np.exp(-self.gamma * self._sq_dists(A, B))


class LaplacianKernel(Kernel):
    """``exp(-gamma ||x - z||_1)``; heavier tails than the RBF."""

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def __call__(self, x, z) -> float:
        diff = np.asarray(x, float) - np.asarray(z, float)
        return float(np.exp(-self.gamma * np.sum(np.abs(diff))))

    def matrix(self, samples) -> np.ndarray:
        X = _as_matrix(samples)
        d1 = np.sum(np.abs(X[:, None, :] - X[None, :, :]), axis=2)
        return np.exp(-self.gamma * d1)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = _as_matrix(samples_a)
        B = _as_matrix(samples_b)
        d1 = np.sum(np.abs(A[:, None, :] - B[None, :, :]), axis=2)
        return np.exp(-self.gamma * d1)


class SigmoidKernel(Kernel):
    """``tanh(gamma <x, z> + coef0)``.

    Not PSD for all parameter choices (a classical caveat); included for
    completeness of the catalogue.
    """

    def __init__(self, gamma: float = 0.01, coef0: float = 0.0):
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def __call__(self, x, z) -> float:
        dot = float(np.dot(np.asarray(x, float), np.asarray(z, float)))
        return float(np.tanh(self.gamma * dot + self.coef0))

    def matrix(self, samples) -> np.ndarray:
        X = _as_matrix(samples)
        return np.tanh(self.gamma * (X @ X.T) + self.coef0)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        A = _as_matrix(samples_a)
        B = _as_matrix(samples_b)
        return np.tanh(self.gamma * (A @ B.T) + self.coef0)


def median_heuristic_gamma(X) -> float:
    """RBF bandwidth heuristic: ``gamma = 1 / (2 * median pairwise d^2)``."""
    X = _as_matrix(X)
    n = len(X)
    if n < 2:
        return 1.0
    sq = np.sum(X * X, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    upper = d2[np.triu_indices(n, k=1)]
    med = float(np.median(upper))
    if med <= 0:
        return 1.0
    return 1.0 / (2.0 * med)
