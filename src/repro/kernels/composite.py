"""Kernel combinators.

Sums, products, and positive scalings of PSD kernels are PSD, so complex
domain kernels can be assembled from the primitives — e.g. a layout
kernel mixing density histograms with geometry statistics, or a program
kernel mixing opcode spectra with operand spectra.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel


class SumKernel(Kernel):
    """Weighted sum of kernels; weights must be non-negative."""

    def __init__(self, kernels, weights=None):
        kernels = list(kernels)
        if not kernels:
            raise ValueError("need at least one kernel")
        if weights is None:
            weights = [1.0] * len(kernels)
        weights = [float(w) for w in weights]
        if len(weights) != len(kernels):
            raise ValueError("one weight per kernel required")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative to stay PSD")
        self.kernels = kernels
        self.weights = weights

    def __call__(self, x, z) -> float:
        return float(
            sum(w * k(x, z) for w, k in zip(self.weights, self.kernels))
        )

    def matrix(self, samples) -> np.ndarray:
        return sum(
            w * k.matrix(samples) for w, k in zip(self.weights, self.kernels)
        )

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        return sum(
            w * k.cross_matrix(samples_a, samples_b)
            for w, k in zip(self.weights, self.kernels)
        )


class ProductKernel(Kernel):
    """Elementwise product of kernels (PSD by the Schur product theorem)."""

    def __init__(self, kernels):
        kernels = list(kernels)
        if not kernels:
            raise ValueError("need at least one kernel")
        self.kernels = kernels

    def __call__(self, x, z) -> float:
        value = 1.0
        for k in self.kernels:
            value *= k(x, z)
        return float(value)

    def matrix(self, samples) -> np.ndarray:
        K = self.kernels[0].matrix(samples)
        for k in self.kernels[1:]:
            K = K * k.matrix(samples)
        return K

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        K = self.kernels[0].cross_matrix(samples_a, samples_b)
        for k in self.kernels[1:]:
            K = K * k.cross_matrix(samples_a, samples_b)
        return K


class ScaledKernel(Kernel):
    """``scale * k`` with ``scale >= 0``."""

    def __init__(self, kernel: Kernel, scale: float):
        if scale < 0:
            raise ValueError("scale must be non-negative to stay PSD")
        self.kernel = kernel
        self.scale = float(scale)

    def __call__(self, x, z) -> float:
        return self.scale * float(self.kernel(x, z))

    def matrix(self, samples) -> np.ndarray:
        return self.scale * self.kernel.matrix(samples)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        return self.scale * self.kernel.cross_matrix(samples_a, samples_b)


class NormalizedKernel(Kernel):
    """Cosine normalization ``k(x,z)/sqrt(k(x,x) k(z,z))``.

    Makes self-similarity 1 regardless of sample "size" (program length,
    clip area), which keeps one-class SVM radius estimates meaningful.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    def __call__(self, x, z) -> float:
        kxz = float(self.kernel(x, z))
        kxx = float(self.kernel(x, x))
        kzz = float(self.kernel(z, z))
        if kxx <= 0.0 or kzz <= 0.0:
            return 0.0
        return kxz / np.sqrt(kxx * kzz)

    def matrix(self, samples) -> np.ndarray:
        K = self.kernel.matrix(samples)
        diag = np.sqrt(np.clip(np.diag(K), 1e-300, None))
        return K / np.outer(diag, diag)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        K = self.kernel.cross_matrix(samples_a, samples_b)
        diag_a = np.array([max(float(self.kernel(s, s)), 1e-300)
                           for s in samples_a])
        diag_b = np.array([max(float(self.kernel(s, s)), 1e-300)
                           for s in samples_b])
        return K / np.sqrt(np.outer(diag_a, diag_b))
