"""Kernel functions: the learning-space half of Fig. 4's separation."""

from .base import (
    Kernel,
    PrecomputedKernel,
    center_gram,
    gram_matrix,
    is_positive_semidefinite,
    normalize_gram,
)
from .approx import (
    NystromApproximation,
    RandomFourierFeatures,
    resolve_feature_map,
)
from .composite import NormalizedKernel, ProductKernel, ScaledKernel, SumKernel
from .engine import GramCounters, GramEngine, default_engine, set_default_engine
from .histogram import ChiSquaredKernel, HistogramIntersectionKernel
from .sequence import (
    BlendedSpectrumKernel,
    SpectrumKernel,
    ngram_counts,
    spectrum_feature_map,
)
from .vector import (
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    explicit_degree2_map,
    median_heuristic_gamma,
)

__all__ = [
    "BlendedSpectrumKernel",
    "ChiSquaredKernel",
    "GramCounters",
    "GramEngine",
    "HistogramIntersectionKernel",
    "Kernel",
    "LaplacianKernel",
    "LinearKernel",
    "NormalizedKernel",
    "NystromApproximation",
    "PolynomialKernel",
    "PrecomputedKernel",
    "ProductKernel",
    "RBFKernel",
    "RandomFourierFeatures",
    "ScaledKernel",
    "SigmoidKernel",
    "SpectrumKernel",
    "SumKernel",
    "center_gram",
    "default_engine",
    "explicit_degree2_map",
    "gram_matrix",
    "is_positive_semidefinite",
    "median_heuristic_gamma",
    "ngram_counts",
    "normalize_gram",
    "resolve_feature_map",
    "set_default_engine",
    "spectrum_feature_map",
]
