"""Sequence kernels over assembly programs.

The paper's novel-test-selection case study ([14], Fig. 7) learns over
functional tests that *are assembly programs*; the "real challenge" it
reports was the kernel module that measures similarity between two
programs.  We implement the standard k-spectrum (n-gram) kernel family
over token sequences, which is the canonical string-kernel construction:
two programs are similar when they share many length-k token subsequences
(e.g. instruction-opcode chains), which is exactly the notion of
behavioural redundancy the selection flow needs.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence, Tuple

import numpy as np

from .base import Kernel


def ngram_counts(tokens: Sequence, k: int) -> Counter:
    """Count the length-*k* contiguous sub-sequences of *tokens*."""
    if k < 1:
        raise ValueError("k must be at least 1")
    tokens = tuple(tokens)
    return Counter(tokens[i : i + k] for i in range(len(tokens) - k + 1))


class SpectrumKernel(Kernel):
    """k-spectrum kernel: dot product of n-gram count profiles.

    Parameters
    ----------
    k:
        n-gram length.  ``k=1`` compares token (opcode) usage, ``k>=2``
        compares local instruction orderings.
    normalize:
        Cosine-normalize so self-similarity is 1, making programs of
        different lengths comparable.
    tokenizer:
        Optional callable mapping a raw sample to a token sequence.
        Defaults to the identity (samples already are token sequences).
    """

    def __init__(self, k: int = 2, normalize: bool = True, tokenizer=None):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.normalize = normalize
        self.tokenizer = tokenizer

    # ------------------------------------------------------------------
    def _profile(self, sample) -> Counter:
        tokens = self.tokenizer(sample) if self.tokenizer else sample
        return ngram_counts(tokens, self.k)

    @staticmethod
    def _dot(a: Counter, b: Counter) -> float:
        if len(b) < len(a):
            a, b = b, a
        return float(sum(count * b[gram] for gram, count in a.items()))

    def __call__(self, x, z) -> float:
        pa = self._profile(x)
        pb = self._profile(z)
        value = self._dot(pa, pb)
        if not self.normalize:
            return value
        na = self._dot(pa, pa)
        nb = self._dot(pb, pb)
        if na == 0.0 or nb == 0.0:
            return 0.0
        return value / np.sqrt(na * nb)

    # Collection-level evaluation caches the n-gram profiles.
    def matrix(self, samples) -> np.ndarray:
        profiles = [self._profile(s) for s in samples]
        return self._gram_from_profiles(profiles, profiles)

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        pa = [self._profile(s) for s in samples_a]
        pb = [self._profile(s) for s in samples_b]
        return self._gram_from_profiles(pa, pb)

    def _gram_from_profiles(self, pa, pb) -> np.ndarray:
        K = np.empty((len(pa), len(pb)), dtype=float)
        same = pa is pb
        for i, a in enumerate(pa):
            start = i if same else 0
            for j in range(start, len(pb)):
                K[i, j] = self._dot(a, pb[j])
                if same:
                    K[j, i] = K[i, j]
        if self.normalize:
            norms_a = np.array([max(self._dot(p, p), 0.0) for p in pa])
            norms_b = norms_a if same else np.array(
                [max(self._dot(p, p), 0.0) for p in pb]
            )
            denom = np.sqrt(np.outer(norms_a, norms_b))
            denom[denom == 0.0] = 1.0
            K = K / denom
        return K


class BlendedSpectrumKernel(Kernel):
    """Weighted sum of spectrum kernels for k = 1..max_k.

    Captures both global token usage and local orderings; the weights
    decay geometrically with k by default.
    """

    def __init__(self, max_k: int = 3, decay: float = 0.5, normalize: bool = True,
                 tokenizer=None):
        if max_k < 1:
            raise ValueError("max_k must be at least 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.max_k = int(max_k)
        self.decay = float(decay)
        self.normalize = normalize
        self.tokenizer = tokenizer

    def _components(self):
        return [
            (self.decay**(k - 1),
             SpectrumKernel(k=k, normalize=self.normalize,
                            tokenizer=self.tokenizer))
            for k in range(1, self.max_k + 1)
        ]

    def __call__(self, x, z) -> float:
        total = sum(w * kern(x, z) for w, kern in self._components())
        weight_sum = sum(w for w, _ in self._components())
        return float(total / weight_sum)

    def matrix(self, samples) -> np.ndarray:
        components = self._components()
        weight_sum = sum(w for w, _ in components)
        K = sum(w * kern.matrix(samples) for w, kern in components)
        return K / weight_sum

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        components = self._components()
        weight_sum = sum(w for w, _ in components)
        K = sum(
            w * kern.cross_matrix(samples_a, samples_b)
            for w, kern in components
        )
        return K / weight_sum


def spectrum_feature_map(samples: Iterable[Sequence], k: int) -> Tuple[np.ndarray, list]:
    """Explicit n-gram count features ``(matrix, vocabulary)``.

    The explicit counterpart of :class:`SpectrumKernel`; used by the
    ablation benches to compare kernel learning against feature-based
    learning on the same representation.
    """
    profiles = [ngram_counts(s, k) for s in samples]
    vocabulary = sorted({gram for profile in profiles for gram in profile})
    index = {gram: i for i, gram in enumerate(vocabulary)}
    X = np.zeros((len(profiles), len(vocabulary)), dtype=float)
    for row, profile in enumerate(profiles):
        for gram, count in profile.items():
            X[row, index[gram]] = count
    return X, vocabulary
