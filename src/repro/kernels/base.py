"""Kernel protocol and Gram-matrix utilities.

Section 2.2 of the paper separates the learning algorithm from the
learning space: a kernel ``k(x, x')`` supplies all the information an
algorithm sees (Fig. 4), so samples need not be vectors at all — layout
clips and assembly programs are first-class sample types here.

A :class:`Kernel` is any object with ``__call__(x, x') -> float``; the
:func:`gram_matrix` helper evaluates it over sample collections, and
vectorized kernels may override ``matrix``/``cross_matrix`` for speed.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from ..core.base import ParamsAPI


def _freeze(value):
    """Render *value* as a hashable structure for :meth:`Kernel.cache_key`.

    Mirrors the semantics of :meth:`Kernel.__eq__`: two values that
    compare equal there freeze to equal structures (so structurally
    equal kernels share hash and cache identity).
    """
    if isinstance(value, Kernel):
        return ("kernel", value.cache_key())
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return ("ndarray", repr(value.tolist()))
        contiguous = np.ascontiguousarray(value)
        digest = hashlib.blake2b(contiguous.tobytes(), digest_size=16)
        return ("ndarray", value.shape, value.dtype.str, digest.digest())
    if isinstance(value, dict):
        items = sorted(
            ((k, _freeze(v)) for k, v in value.items()),
            key=lambda kv: repr(kv[0]),
        )
        return ("dict", tuple(items))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((_freeze(v) for v in value), key=repr)))
    if value is None or isinstance(
        value, (bool, int, float, complex, str, bytes)
    ):
        return value
    if callable(value):
        # functions compare by identity in __eq__, so identity (plus a
        # readable qualname) is the right cache granularity
        return (
            "callable",
            getattr(value, "__module__", None),
            getattr(value, "__qualname__", repr(value)),
            id(value),
        )
    return ("repr", repr(value))


class Kernel(ParamsAPI):
    """Base class for similarity functions between arbitrary samples.

    Kernels share the estimator hyper-parameter API
    (``get_params``/``set_params`` with the nested ``a__b`` grammar), so
    an estimator's kernel configuration — ``svc__kernel__gamma`` — is
    addressable from grid search exactly like any other parameter.
    """

    def __call__(self, x, z) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Collection-level evaluation; subclasses override for vectorization.
    # ------------------------------------------------------------------
    def matrix(self, samples: Sequence) -> np.ndarray:
        """Symmetric Gram matrix ``K[i, j] = k(samples[i], samples[j])``."""
        n = len(samples)
        K = np.empty((n, n), dtype=float)
        for i in range(n):
            for j in range(i, n):
                value = float(self(samples[i], samples[j]))
                K[i, j] = value
                K[j, i] = value
        return K

    def cross_matrix(self, samples_a: Sequence, samples_b: Sequence) -> np.ndarray:
        """Rectangular matrix ``K[i, j] = k(samples_a[i], samples_b[j])``."""
        K = np.empty((len(samples_a), len(samples_b)), dtype=float)
        for i, a in enumerate(samples_a):
            for j, b in enumerate(samples_b):
                K[i, j] = float(self(a, b))
        return K

    def __eq__(self, other):
        """Structural equality: same type and same configuration.

        Lets cloned estimators compare equal on their kernel parameter
        and lets tests assert kernel round-trips.  Different kernel
        classes — including subclasses — compare unequal symmetrically;
        only non-kernels defer with ``NotImplemented``.
        """
        if not isinstance(other, Kernel):
            return NotImplemented
        if type(self) is not type(other):
            return False
        if set(self.__dict__) != set(other.__dict__):
            return False
        for key, value in self.__dict__.items():
            other_value = other.__dict__[key]
            if isinstance(value, np.ndarray) or isinstance(
                other_value, np.ndarray
            ):
                if not np.array_equal(value, other_value):
                    return False
            elif value != other_value:
                return False
        return True

    def cache_key(self) -> tuple:
        """Hashable structural identity: type plus frozen configuration.

        Equal kernels (per :meth:`__eq__`) produce equal keys, so any
        dict or cache keyed on kernels — in particular the
        :class:`~repro.kernels.engine.GramEngine` block cache — treats a
        reconstructed kernel with the same hyper-parameters as the same
        kernel.  The key reflects current state; mutating a kernel's
        parameters changes it.
        """
        return (
            type(self).__module__,
            type(self).__qualname__,
            _freeze(self.__dict__),
        )

    # hashing is structural and consistent with __eq__ (equal kernels
    # hash equal), so kernels work as dict/cache keys
    def __hash__(self):
        return hash(self.cache_key())

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`cache_key`.

        The checkpoint/shard key form of the kernel's structural
        identity — two kernels with equal configuration fingerprint
        identically across processes and runs.
        """
        from ..core.resilience import fingerprint

        return fingerprint(self)


def gram_matrix(kernel: Kernel, samples: Sequence, engine=None) -> np.ndarray:
    """Evaluate *kernel* over all pairs of *samples*.

    Thin shim over the shared :class:`~repro.kernels.engine.GramEngine`
    (blockwise evaluation + caching); pass *engine* to use a private
    one.  The historical call signature is unchanged.
    """
    if engine is None:
        from .engine import default_engine

        engine = default_engine()
    return engine.gram(kernel, samples)


def center_gram(K: np.ndarray) -> np.ndarray:
    """Center a Gram matrix in feature space.

    Equivalent to subtracting the feature-space mean from every mapped
    sample, a common preprocessing step for kernel PCA-style analyses.
    """
    K = np.asarray(K, dtype=float)
    n = K.shape[0]
    row_mean = K.mean(axis=0, keepdims=True)
    total_mean = K.mean()
    return K - row_mean - row_mean.T + total_mean


def normalize_gram(K: np.ndarray) -> np.ndarray:
    """Cosine-normalize a Gram matrix: ``K'[i,j] = K[i,j]/sqrt(K[i,i]K[j,j])``."""
    K = np.asarray(K, dtype=float)
    diag = np.sqrt(np.clip(np.diag(K), 1e-300, None))
    return K / np.outer(diag, diag)


def is_positive_semidefinite(K: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Check Mercer's condition numerically on a finite Gram matrix.

    A kernel is only admissible for SVM-family learners when every Gram
    matrix it produces is PSD; this check is used by property-based tests
    to validate all kernels in the library.
    """
    K = np.asarray(K, dtype=float)
    if not np.allclose(K, K.T, atol=1e-8):
        return False
    eigenvalues = np.linalg.eigvalsh((K + K.T) / 2.0)
    scale = max(1.0, float(np.max(np.abs(eigenvalues))))
    return bool(eigenvalues.min() >= -tolerance * scale)


class PrecomputedKernel(Kernel):
    """Kernel backed by an explicit sample-index Gram matrix.

    Samples are integer indices into the stored matrix.  Used when an
    expensive domain kernel (e.g. lithography image similarity) is
    evaluated once and cached.
    """

    def __init__(self, K: np.ndarray):
        K = np.asarray(K, dtype=float)
        if K.ndim != 2 or K.shape[0] != K.shape[1]:
            raise ValueError("K must be a square matrix")
        self.K = K

    def __call__(self, i, j) -> float:
        return float(self.K[int(i), int(j)])

    def matrix(self, samples) -> np.ndarray:
        idx = np.asarray(samples, dtype=int)
        return self.K[np.ix_(idx, idx)]

    def cross_matrix(self, samples_a, samples_b) -> np.ndarray:
        a = np.asarray(samples_a, dtype=int)
        b = np.asarray(samples_b, dtype=int)
        return self.K[np.ix_(a, b)]
