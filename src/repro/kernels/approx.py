"""Approximate kernel feature maps: Nyström and random Fourier features.

The exact Gram path of :class:`~repro.kernels.engine.GramEngine` is
quadratic in the sample count — fine for the paper's tutorial-scale
figures, a wall for production test floors (the scalability gap the
ML-for-EDA survey calls out).  This module adds the two classical
escape hatches as first-class transforms:

- :class:`NystromApproximation` — project the kernel feature map onto
  the span of ``n_components`` landmark samples.  Works for *any*
  :class:`~repro.kernels.base.Kernel` and any sample type (vectors,
  histograms, token programs): it only needs kernel evaluations against
  the landmarks, which it routes through the shared
  :class:`~repro.kernels.engine.GramEngine` (so landmark blocks are
  cached across refits).  The induced Gram ``Z Z^T`` is the textbook
  Nyström approximation ``C W^+ C^T``; with nested landmark sets its
  trace error is monotone non-increasing in the landmark count.
- :class:`RandomFourierFeatures` — Rahimi–Recht random features for
  shift-invariant vector kernels (RBF, Laplacian).  ``Z Z^T`` is an
  unbiased Monte-Carlo estimate of the Gram matrix with error
  ``O(1/sqrt(n_features))``.

Both are estimator-style transformers (``fit``/``transform``,
``get_params``/``set_params``, clone- and pickle-friendly) with
structural :meth:`cache_key`/:meth:`fingerprint` identities and
deterministic ``numpy.random.SeedSequence``-driven sampling, so a
rebuilt approximator with the same configuration produces bitwise the
same feature map.  Every kernel consumer accepts one through its
``approximation=`` parameter and then fits a linear-time model in the
approximated feature space instead of assembling the full Gram matrix.
"""

from __future__ import annotations

import numpy as np

from ..core.base import (
    Estimator,
    TransformerMixin,
    as_2d_array,
    as_kernel_samples,
    check_fitted,
    clone,
)
from .base import Kernel, _freeze

__all__ = [
    "NystromApproximation",
    "RandomFourierFeatures",
    "resolve_feature_map",
]


def resolve_feature_map(approximation, kernel=None, engine=None):
    """Clone *approximation*, filling unset kernel/engine from a consumer.

    Every estimator with an ``approximation=`` parameter routes through
    here: the user's approximator is cloned (hyper-parameters are never
    mutated), and when its ``kernel`` (or ``engine``, for approximators
    that take one) was left at ``None``, the consuming estimator's own
    kernel/engine is used — so ``SVC(kernel=k, approximation=
    NystromApproximation(n_components=50))`` approximates ``k``, not the
    approximator's fallback default.  Explicitly configured
    approximators pass through untouched.
    """
    feature_map = clone(approximation)
    params = feature_map.get_params(deep=False)
    overrides = {}
    if kernel is not None and params.get("kernel") is None:
        overrides["kernel"] = kernel
    if engine is not None and "engine" in params and params["engine"] is None:
        overrides["engine"] = engine
    if overrides:
        feature_map.set_params(**overrides)
    return feature_map


def _seed_sequence(random_state) -> np.random.SeedSequence:
    """A deterministic ``SeedSequence`` for *random_state*.

    ``None`` maps to seed 0 — approximators are deterministic by
    default, because their sampled landmarks/frequencies are part of
    the model's structural identity (two fits of the same recipe must
    agree bitwise for caches, conformance checks, and golden tests).
    """
    if random_state is None:
        return np.random.SeedSequence(0)
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.SeedSequence(int(random_state))
    if isinstance(random_state, np.random.Generator):
        # derive a fixed child seed from the generator's current state
        return np.random.SeedSequence(int(random_state.integers(2**63 - 1)))
    raise TypeError(
        "random_state must be None, an int, a SeedSequence, or a numpy "
        f"Generator, got {type(random_state).__name__}"
    )


class _FeatureMapApproximation(Estimator, TransformerMixin):
    """Shared machinery for kernel feature-map approximators.

    Underscore-prefixed by repo convention: abstract base, excluded
    from the conformance registry's completeness discovery.
    """

    def _kernel(self) -> Kernel:
        if self.kernel is not None:
            return self.kernel
        from .vector import RBFKernel

        return RBFKernel(gamma=1.0)

    # -- structural identity ------------------------------------------
    def cache_key(self) -> tuple:
        """Hashable structural identity: type plus frozen configuration.

        Mirrors :meth:`Kernel.cache_key` so Gram blocks, checkpoint
        fingerprints, and any approximator-keyed cache treat a rebuilt
        approximator with the same hyper-parameters as the same object.
        The engine is shared infrastructure, not identity, and is
        excluded.
        """
        params = {
            k: v
            for k, v in self.get_params(deep=False).items()
            if k != "engine"
        }
        return (
            type(self).__module__,
            type(self).__qualname__,
            _freeze(params),
        )

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`cache_key` (checkpoint-friendly)."""
        from ..core.resilience import fingerprint

        return fingerprint(self)

    # -- sizing --------------------------------------------------------
    @property
    def n_features_out_(self) -> int:
        raise NotImplementedError

    def approximate_gram(self, samples) -> np.ndarray:
        """``Z Z^T`` for fitted features — the approximated Gram matrix."""
        Z = self.transform(samples)
        return Z @ Z.T


class NystromApproximation(_FeatureMapApproximation):
    """Nyström low-rank kernel feature map over arbitrary sample types.

    ``fit`` draws ``n_components`` landmark samples with a
    ``SeedSequence``-seeded permutation (so landmark sets are *nested*
    across ranks for a fixed seed), assembles the landmark Gram block
    ``W = K(L, L)`` through the engine, and stores the pseudo-inverse
    square root ``W^{-1/2}`` with eigenvalue clipping.  ``transform``
    maps any sample ``x`` to ``K(x, L) W^{-1/2}``, so
    ``Z Z^T = C W^+ C^T`` — the Nyström approximation of the full Gram
    matrix.

    Parameters
    ----------
    kernel:
        Any :class:`~repro.kernels.base.Kernel`; defaults to RBF.
        Token-sequence and histogram kernels work unchanged — only
        kernel evaluations against landmarks are required.
    n_components:
        Number of landmarks (the rank of the approximation); capped at
        the training-sample count.
    random_state:
        Seed for landmark selection.  ``None`` behaves as ``0``
        (deterministic by default).
    engine:
        A :class:`~repro.kernels.engine.GramEngine`; ``None`` uses the
        shared default engine, so landmark cross-blocks are cached
        across refits and estimators.
    """

    def __init__(self, kernel=None, n_components: int = 100,
                 random_state=None, engine=None):
        self.kernel = kernel
        self.n_components = n_components
        self.random_state = random_state
        self.engine = engine

    def _engine(self):
        if self.engine is not None:
            return self.engine
        from .engine import default_engine

        return default_engine()

    def fit(self, X, y=None) -> "NystromApproximation":
        if self.n_components < 1:
            raise ValueError("n_components must be at least 1")
        X = as_kernel_samples(X)
        n = len(X)
        m = min(int(self.n_components), n)
        rng = np.random.default_rng(_seed_sequence(self.random_state))
        # full permutation, prefix of m: for one seed, the landmark set
        # at rank m is a subset of the set at any rank m' > m (the
        # nestedness behind the monotone-error property test)
        order = rng.permutation(n)
        idx = np.sort(order[:m])
        if isinstance(X, np.ndarray):
            landmarks = X[idx]
        else:
            landmarks = [X[int(i)] for i in idx]
        W = self._engine().gram(self._kernel(), landmarks)
        eigenvalues, eigenvectors = np.linalg.eigh((W + W.T) / 2.0)
        floor = max(float(eigenvalues.max()), 0.0) * 1e-12
        keep = eigenvalues > max(floor, 1e-300)
        if not keep.any():
            raise ValueError(
                "landmark Gram matrix has no positive eigenvalues; the "
                "kernel collapsed on the selected landmarks"
            )
        # Z(x) = K(x, L) U diag(lambda^-1/2)  =>  Z Z^T = C W^+ C^T
        self.normalization_ = (
            eigenvectors[:, keep] / np.sqrt(eigenvalues[keep])
        )
        self.landmark_indices_ = idx
        self.landmarks_ = landmarks
        self.kernel_ = self._kernel()
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "normalization_")
        X = as_kernel_samples(X)
        C = self._engine().cross_gram(self.kernel_, X, self.landmarks_)
        return C @ self.normalization_

    @property
    def n_features_out_(self) -> int:
        check_fitted(self, "normalization_")
        return self.normalization_.shape[1]


class RandomFourierFeatures(_FeatureMapApproximation):
    """Random Fourier feature map for shift-invariant vector kernels.

    Supports :class:`~repro.kernels.vector.RBFKernel`
    (``omega ~ Normal(0, sqrt(2 gamma))``) and
    :class:`~repro.kernels.vector.LaplacianKernel`
    (``omega ~ Cauchy(0, gamma)``, per Bochner's theorem).  The feature
    map is ``z(x) = sqrt(2 / D) cos(x W + b)`` with ``b ~ U[0, 2 pi)``,
    so ``E[z(x) . z(y)] = k(x, y)`` and the Gram error decays as
    ``O(1 / sqrt(n_features))``.

    Parameters
    ----------
    kernel:
        An :class:`RBFKernel` or :class:`LaplacianKernel`; defaults to
        ``RBFKernel(gamma=1.0)``.  Other kernels raise ``ValueError``
        at fit time — use :class:`NystromApproximation` for those.
    n_features:
        Number of random features ``D``.
    random_state:
        Seed for frequency/offset sampling; ``None`` behaves as ``0``.
    """

    def __init__(self, kernel=None, n_features: int = 100,
                 random_state=None):
        self.kernel = kernel
        self.n_features = n_features
        self.random_state = random_state

    def fit(self, X, y=None) -> "RandomFourierFeatures":
        if self.n_features < 1:
            raise ValueError("n_features must be at least 1")
        X = as_2d_array(X)
        d = X.shape[1]
        kernel = self._kernel()
        from .vector import LaplacianKernel, RBFKernel

        rng = np.random.default_rng(_seed_sequence(self.random_state))
        D = int(self.n_features)
        if isinstance(kernel, RBFKernel):
            scale = np.sqrt(2.0 * kernel.gamma)
            weights = rng.normal(0.0, scale, size=(d, D))
        elif isinstance(kernel, LaplacianKernel):
            weights = kernel.gamma * rng.standard_cauchy(size=(d, D))
        else:
            raise ValueError(
                "RandomFourierFeatures requires a shift-invariant vector "
                "kernel (RBFKernel or LaplacianKernel); got "
                f"{type(kernel).__name__}. Use NystromApproximation for "
                "arbitrary kernels and sample types."
            )
        self.weights_ = weights
        self.offsets_ = rng.uniform(0.0, 2.0 * np.pi, size=D)
        self.n_input_features_ = d
        self.kernel_ = kernel
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "weights_")
        X = as_2d_array(X)
        if X.shape[1] != self.n_input_features_:
            raise ValueError(
                f"X has {X.shape[1]} features; RandomFourierFeatures was "
                f"fitted on {self.n_input_features_}"
            )
        D = self.weights_.shape[1]
        projection = X @ self.weights_ + self.offsets_
        return np.sqrt(2.0 / D) * np.cos(projection)

    @property
    def n_features_out_(self) -> int:
        check_fitted(self, "weights_")
        return self.weights_.shape[1]
