"""Transformer/estimator pipelines.

The paper's usage-model principle: a mining flow should not cost its
user more effort than the problem itself.  A :class:`Pipeline` packages
the routine preprocessing (scaling, selection, projection) with the
final learner behind the standard estimator protocol, so flows and
cross-validation treat the whole chain as one model.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Estimator, check_fitted, clone


class Pipeline(Estimator):
    """A chain of transformers ending in a final estimator.

    Parameters
    ----------
    steps:
        ``[(name, transformer), ..., (name, estimator)]``.  Every step
        but the last must implement ``fit``/``transform``; the last may
        be any estimator (or another transformer).
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]):
        steps = list(steps)
        if not steps:
            raise ValueError("pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError("step names must be unique")
        self.steps = steps

    # ------------------------------------------------------------------
    @property
    def named_steps(self) -> dict:
        return dict(self.steps)

    @property
    def _final(self):
        return self.steps[-1][1]

    def _transform_through(self, X, fitted_steps):
        for _, transformer in fitted_steps:
            X = transformer.transform(X)
        return X

    def fit(self, X, y=None) -> "Pipeline":
        self.fitted_steps_: List[Tuple[str, object]] = []
        for name, step in self.steps[:-1]:
            fitted = clone(step)
            if y is None:
                fitted.fit(X)
            else:
                try:
                    fitted.fit(X, y)
                except TypeError:
                    fitted.fit(X)
            X = fitted.transform(X)
            self.fitted_steps_.append((name, fitted))
        final_name, final_step = self.steps[-1]
        final = clone(final_step)
        if y is None:
            final.fit(X)
        else:
            final.fit(X, y)
        self.final_estimator_ = final
        self.fitted_steps_.append((final_name, final))
        return self

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.predict(X)

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.predict_proba(X)

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.decision_function(X)

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        return self._transform_through(X, self.fitted_steps_)

    def score(self, X, y) -> float:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.score(X, y)

    @property
    def _estimator_kind(self):
        return getattr(self._final, "_estimator_kind", "estimator")
