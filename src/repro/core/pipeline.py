"""Transformer/estimator pipelines.

The paper's usage-model principle: a mining flow should not cost its
user more effort than the problem itself.  A :class:`Pipeline` packages
the routine preprocessing (scaling, selection, projection) with the
final learner behind the standard estimator protocol, so flows and
cross-validation treat the whole chain as one model.

Steps are addressable from model selection through the nested
parameter grammar: ``pipeline.set_params(svc__C=10)`` reconfigures the
step named ``svc``, ``svc__kernel__gamma`` reaches into that step's
kernel, and ``set_params(svc=other_estimator)`` swaps the step object
itself.  Step fits emit ``fit`` spans into the active
:mod:`~repro.core.instrument` log, so an instrumented sweep can see
where pipeline time goes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from . import instrument
from .base import Estimator, check_fitted, clone


class NamedSteps(dict):
    """Step mapping with attribute access: ``pipe.named_steps.svc``."""

    def __getattr__(self, name):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(f"no step named {name!r}") from None


class Pipeline(Estimator):
    """A chain of transformers ending in a final estimator.

    Parameters
    ----------
    steps:
        ``[(name, transformer), ..., (name, estimator)]``.  Every step
        but the last must implement ``fit``/``transform``; the last may
        be any estimator (or another transformer).
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]):
        steps = list(steps)
        if not steps:
            raise ValueError("pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError("step names must be unique")
        self.steps = steps

    # ------------------------------------------------------------------
    # parameter API: steps are nested targets, addressable by name
    # ------------------------------------------------------------------
    def _nested_targets(self) -> dict:
        return {name: step for name, step in self.steps}

    def get_params(self, deep: bool = True) -> dict:
        params = {"steps": self.steps}
        if deep:
            for name, step in self.steps:
                params[name] = step
                if hasattr(step, "get_params"):
                    for key, value in step.get_params(deep=True).items():
                        params[f"{name}__{key}"] = value
        return params

    def _set_simple_param(self, name: str, value) -> None:
        if name == "steps":
            setattr(self, name, list(value))
            return
        step_names = [step_name for step_name, _ in self.steps]
        if name in step_names:
            self.steps = [
                (step_name, value if step_name == name else step)
                for step_name, step in self.steps
            ]
            return
        raise ValueError(
            f"Pipeline has no parameter {name!r}; valid parameters are "
            f"['steps'] plus step names {step_names}"
        )

    # ------------------------------------------------------------------
    @property
    def named_steps(self) -> NamedSteps:
        return NamedSteps(self.steps)

    @property
    def _final(self):
        return self.steps[-1][1]

    def _transform_through(self, X, fitted_steps):
        for _, transformer in fitted_steps:
            X = transformer.transform(X)
        return X

    def _fit_transformers(self, X, y=None):
        """Fit the transformer prefix; returns the transformed data with
        ``fitted_steps_`` holding the fitted prefix."""
        self.fitted_steps_: List[Tuple[str, object]] = []
        for name, step in self.steps[:-1]:
            fitted = clone(step)
            with instrument.span(
                "fit", label=f"pipeline.{name}", n_samples=len(X)
            ):
                if y is None:
                    fitted.fit(X)
                else:
                    try:
                        fitted.fit(X, y)
                    except TypeError:
                        fitted.fit(X)
            X = fitted.transform(X)
            self.fitted_steps_.append((name, fitted))
        return X

    def fit(self, X, y=None) -> "Pipeline":
        X = self._fit_transformers(X, y)
        final_name, final_step = self.steps[-1]
        final = clone(final_step)
        with instrument.span(
            "fit", label=f"pipeline.{final_name}", n_samples=len(X)
        ):
            if y is None:
                final.fit(X)
            else:
                final.fit(X, y)
        self.final_estimator_ = final
        self.fitted_steps_.append((final_name, final))
        return self

    # ------------------------------------------------------------------
    # passthrough surface: delegate to the fitted final estimator
    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.predict(X)

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.predict_proba(X)

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.decision_function(X)

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "final_estimator_")
        return self._transform_through(X, self.fitted_steps_)

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit the whole chain, then transform *X* through it."""
        self.fit(X, y)
        return self.transform(X)

    def fit_predict(self, X, y=None) -> np.ndarray:
        """Fit the chain and predict the training data in one call.

        When the final step provides its own ``fit_predict`` (e.g. a
        clusterer), that is used on the transformed data; otherwise the
        pipeline is fit and then predicts.
        """
        X_transformed = self._fit_transformers(X, y)
        final_name, final_step = self.steps[-1]
        final = clone(final_step)
        fit_predict = getattr(final, "fit_predict", None)
        with instrument.span(
            "fit", label=f"pipeline.{final_name}",
            n_samples=len(X_transformed),
        ):
            if fit_predict is not None:
                labels = fit_predict(X_transformed)
            elif y is None:
                labels = final.fit(X_transformed).predict(X_transformed)
            else:
                labels = final.fit(
                    X_transformed, y
                ).predict(X_transformed)
        self.final_estimator_ = final
        self.fitted_steps_.append((final_name, final))
        return np.asarray(labels)

    def score(self, X, y) -> float:
        check_fitted(self, "final_estimator_")
        X = self._transform_through(X, self.fitted_steps_[:-1])
        return self.final_estimator_.score(X, y)

    @property
    def _estimator_kind(self):
        return getattr(self._final, "_estimator_kind", "estimator")
