"""Observability layer: structured spans for fit/predict/score work.

Section 1 of the paper insists a mining methodology must not cost its
user more than the problem itself — which, at production scale, means
the runtime has to *account* for where its time goes.  This module
provides that accounting:

- :class:`Span` — one timed unit of work (a fit, a predict, a score, a
  whole grid search) with wall time, sample counts, free-form metadata,
  and optionally the :class:`~repro.kernels.engine.GramEngine` counter
  delta attributed to it;
- :class:`EventLog` — a thread-safe, append-only collection of spans
  with aggregation helpers;
- module-level **hooks** (:func:`recording`, :func:`span`,
  :func:`emit`) through which *any* estimator can emit spans into
  whichever log is active, without holding a reference to it.  Code
  that emits when no log is active costs almost nothing.

``EventLog`` deliberately deep-copies and pickles as a no-op identity /
fresh log: like the Gram engine, a log is shared infrastructure, not a
hyper-parameter value, so ``clone()`` of an instrumented estimator must
not fork it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "EventLog",
    "recording",
    "current_log",
    "span",
    "emit",
]


@dataclass
class Span:
    """One structured unit of timed work."""

    name: str
    label: str = ""
    seconds: float = 0.0
    started_at: float = 0.0
    n_samples: Optional[int] = None
    meta: Dict = field(default_factory=dict)
    gram: Optional[Dict] = None

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "label": self.label,
            "seconds": self.seconds,
            "started_at": self.started_at,
            "n_samples": self.n_samples,
            "meta": dict(self.meta),
        }
        if self.gram is not None:
            record["gram"] = dict(self.gram)
        return record


class EventLog:
    """Thread-safe append-only log of :class:`Span` records."""

    def __init__(self):
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    # logs are shared infrastructure: cloning an estimator configured
    # with a log must keep emitting into the same log, and a log
    # crossing a process boundary starts empty (spans are shipped back
    # explicitly by the model-selection runtime, not via pickle)
    def __deepcopy__(self, memo) -> "EventLog":
        return self

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state) -> None:
        self.__init__()

    # ------------------------------------------------------------------
    def append(self, span: Span) -> Span:
        with self._lock:
            self._spans.append(span)
        return span

    def emit(self, name: str, seconds: float, label: str = "",
             n_samples: Optional[int] = None, gram: Optional[Dict] = None,
             started_at: Optional[float] = None, **meta) -> Span:
        """Record an already-timed span directly."""
        return self.append(
            Span(
                name=name,
                label=label,
                seconds=float(seconds),
                started_at=(
                    time.time() - seconds if started_at is None
                    else started_at
                ),
                n_samples=n_samples,
                meta=meta,
                gram=gram,
            )
        )

    @contextmanager
    def span(self, name: str, label: str = "",
             n_samples: Optional[int] = None, engine=None, **meta):
        """Time a block of work and record it as a span.

        When *engine* (a ``GramEngine``) is given, the span additionally
        captures the engine counter delta across the block — cache
        hits, fresh pair evaluations, kernel compute seconds — so cost
        can be attributed per candidate or per fold.
        """
        before = engine.counters_snapshot() if engine is not None else None
        started_at = time.time()
        start = time.perf_counter()
        record = Span(
            name=name, label=label, n_samples=n_samples,
            started_at=started_at, meta=meta,
        )
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - start
            if before is not None:
                record.gram = engine.counters_snapshot().delta(
                    before
                ).as_dict()
            self.append(record)

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            if name is None:
                return list(self._spans)
            return [s for s in self._spans if s.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def total_seconds(self, name: Optional[str] = None) -> float:
        return float(sum(s.seconds for s in self.spans(name)))

    def summary(self) -> Dict[str, dict]:
        """Aggregate spans by name: count, total/mean seconds, samples."""
        out: Dict[str, dict] = {}
        for s in self.spans():
            entry = out.setdefault(
                s.name,
                {"count": 0, "total_seconds": 0.0, "n_samples": 0},
            )
            entry["count"] += 1
            entry["total_seconds"] += s.seconds
            if s.n_samples:
                entry["n_samples"] += s.n_samples
        for entry in out.values():
            entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
        return out

    def as_records(self) -> List[dict]:
        return [s.as_dict() for s in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __repr__(self):
        return f"EventLog({len(self)} spans)"


# ---------------------------------------------------------------------
# Ambient hooks: estimators emit into whichever log is active
# ---------------------------------------------------------------------

_active = threading.local()


def _stack() -> List[EventLog]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    return stack


def current_log() -> Optional[EventLog]:
    """The innermost active :class:`EventLog` on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def recording(log: EventLog):
    """Make *log* the active log for the duration of the block.

    Nested ``recording`` blocks stack; estimators emitting through
    :func:`span`/:func:`emit` land in the innermost log.
    """
    stack = _stack()
    stack.append(log)
    try:
        yield log
    finally:
        stack.pop()


@contextmanager
def span(name: str, label: str = "", n_samples: Optional[int] = None,
         engine=None, **meta):
    """Emit a timed span into the active log; no-op without one.

    This is the hook estimator code uses: wrapping work in
    ``with instrument.span("fit", label=...)`` costs one attribute
    lookup when no log is active and records a full span when one is.
    """
    log = current_log()
    if log is None:
        yield None
        return
    with log.span(
        name, label=label, n_samples=n_samples, engine=engine, **meta
    ) as record:
        yield record


def emit(name: str, seconds: float, **kwargs) -> Optional[Span]:
    """Record a pre-timed span into the active log; no-op without one."""
    log = current_log()
    if log is None:
        return None
    return log.emit(name, seconds, **kwargs)
