"""Telemetry layer: structured spans, metrics, and trace export.

Section 1 of the paper insists a mining methodology must not cost its
user more than the problem itself — which, at production scale, means
the runtime has to *account* for where its time goes.  This module
provides that accounting:

- :class:`Span` — one timed unit of work (a fit, a predict, a score, a
  whole grid search) with wall time, sample counts, free-form metadata,
  and optionally the :class:`~repro.kernels.engine.GramEngine` counter
  delta attributed to it;
- :class:`EventLog` — a thread-safe, append-only collection of spans
  with aggregation helpers and exporters (Chrome-trace JSON loadable in
  ``chrome://tracing`` / Perfetto, JSONL records);
- :class:`MetricsRegistry` — process-wide counters, gauges, and
  streaming histograms (P²-quantile estimation, no sample retention)
  with a :func:`metrics_snapshot` / :meth:`MetricsSnapshot.delta` API
  mirroring ``GramCounters``;
- module-level **hooks** (:func:`recording`, :func:`span`,
  :func:`emit`) through which *any* estimator can emit spans into
  whichever log is active, without holding a reference to it.  Code
  that emits when no log is active costs almost nothing.

Timestamps are coherent by construction: every log captures one wall-
clock sample and one monotonic sample at creation, and every span's
``started_at`` is the wall anchor plus a *monotonic* offset.  An NTP
clock step mid-run therefore cannot reorder or skew a trace — the wall
clock is consulted exactly once per log.

``EventLog`` deliberately deep-copies and pickles as a no-op identity /
fresh log: like the Gram engine, a log is shared infrastructure, not a
hyper-parameter value, so ``clone()`` of an instrumented estimator must
not fork it.

Spans emitted inside :class:`~repro.core.parallel.ProcessBackend` (or
``ThreadBackend``) workers are captured in a fresh worker-local log and
shipped back with the task result; the driver merges them into the
ambient log tagged with ``task_index`` / ``backend`` / ``pid`` (see
``repro.core.parallel``), so accounting is complete on every backend.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "EventLog",
    "recording",
    "current_log",
    "span",
    "emit",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metrics_registry",
    "metrics_snapshot",
    "set_metrics_registry",
]


@dataclass
class Span:
    """One structured unit of timed work."""

    name: str
    label: str = ""
    seconds: float = 0.0
    started_at: float = 0.0
    n_samples: Optional[int] = None
    meta: Dict = field(default_factory=dict)
    gram: Optional[Dict] = None

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "label": self.label,
            "seconds": self.seconds,
            "started_at": self.started_at,
            "n_samples": self.n_samples,
            "meta": dict(self.meta),
        }
        if self.gram is not None:
            record["gram"] = dict(self.gram)
        return record


def _json_safe(value):
    """Best-effort JSON-encodable form of an arbitrary meta value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except Exception:  # noqa: BLE001 — fall through to repr
            pass
    return repr(value)


class EventLog:
    """Thread-safe append-only log of :class:`Span` records.

    Every log is anchored to a single timebase captured once at
    construction: one ``time.time()`` sample (the wall anchor) and one
    ``time.perf_counter()`` sample (the monotonic origin).  All span
    timestamps are derived as *wall anchor + monotonic offset*, so they
    order and subtract consistently even if the system clock steps.
    """

    def __init__(self):
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        # one wall sample, one monotonic sample: every timestamp this
        # log hands out is origin_wall + (perf_counter() - origin_perf)
        self.origin_wall = time.time()
        self.origin_perf = time.perf_counter()

    # logs are shared infrastructure: cloning an estimator configured
    # with a log must keep emitting into the same log, and a log
    # crossing a process boundary starts empty (spans are shipped back
    # explicitly by the execution runtime, not via pickle)
    def __deepcopy__(self, memo) -> "EventLog":
        return self

    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state) -> None:
        self.__init__()

    # ------------------------------------------------------------------
    def now(self, perf: Optional[float] = None) -> float:
        """This log's coherent clock: wall anchor + monotonic offset."""
        if perf is None:
            perf = time.perf_counter()
        return self.origin_wall + (perf - self.origin_perf)

    def append(self, span: Span) -> Span:
        with self._lock:
            self._spans.append(span)
        return span

    def extend(self, spans) -> None:
        with self._lock:
            self._spans.extend(spans)

    def emit(self, name: str, seconds: float, label: str = "",
             n_samples: Optional[int] = None, gram: Optional[Dict] = None,
             started_at: Optional[float] = None, **meta) -> Span:
        """Record an already-timed span directly.

        Without an explicit *started_at* the span is anchored to this
        log's monotonic timebase (``now() - seconds``), never to a
        fresh wall-clock sample.
        """
        return self.append(
            Span(
                name=name,
                label=label,
                seconds=float(seconds),
                started_at=(
                    self.now() - float(seconds) if started_at is None
                    else started_at
                ),
                n_samples=n_samples,
                meta=meta,
                gram=gram,
            )
        )

    @contextmanager
    def span(self, name: str, label: str = "",
             n_samples: Optional[int] = None, engine=None, **meta):
        """Time a block of work and record it as a span.

        When *engine* (a ``GramEngine``) is given, the span additionally
        captures the engine counter delta across the block — cache
        hits, fresh pair evaluations, kernel compute seconds — so cost
        can be attributed per candidate or per fold.
        """
        before = engine.counters_snapshot() if engine is not None else None
        start = time.perf_counter()
        record = Span(
            name=name, label=label, n_samples=n_samples,
            started_at=self.now(start), meta=meta,
        )
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - start
            if before is not None:
                record.gram = engine.counters_snapshot().delta(
                    before
                ).as_dict()
            self.append(record)

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            if name is None:
                return list(self._spans)
            return [s for s in self._spans if s.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def total_seconds(self, name: Optional[str] = None) -> float:
        return float(sum(s.seconds for s in self.spans(name)))

    def summary(self) -> Dict[str, dict]:
        """Aggregate spans by name: count, total/mean seconds, samples.

        ``n_samples`` distinguishes "unknown" from "zero": it is
        ``None`` until some span of that name reports a count, after
        which reported counts (including 0) accumulate.
        """
        out: Dict[str, dict] = {}
        for s in self.spans():
            entry = out.setdefault(
                s.name,
                {"count": 0, "total_seconds": 0.0, "n_samples": None},
            )
            entry["count"] += 1
            entry["total_seconds"] += s.seconds
            if s.n_samples is not None:
                entry["n_samples"] = (
                    (entry["n_samples"] or 0) + s.n_samples
                )
        for entry in out.values():
            entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
        return out

    def as_records(self) -> List[dict]:
        return [s.as_dict() for s in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The log as a Chrome-trace (``chrome://tracing`` / Perfetto)
        JSON document.

        Every span becomes one complete (``"ph": "X"``) event with
        microsecond ``ts``/``dur`` relative to the log origin; worker-
        merged spans keep their ``pid`` and are laned by ``task_index``.
        """
        spans = self.spans()
        base = self.origin_wall
        if spans:
            base = min(base, min(s.started_at for s in spans))
        own_pid = os.getpid()
        events = []
        for s in spans:
            args = {"label": s.label, **_json_safe(s.meta)}
            if s.n_samples is not None:
                args["n_samples"] = int(s.n_samples)
            if s.gram is not None:
                args["gram"] = _json_safe(s.gram)
            events.append(
                {
                    "name": s.name,
                    "cat": s.label or s.name,
                    "ph": "X",
                    "ts": (s.started_at - base) * 1e6,
                    "dur": s.seconds * 1e6,
                    "pid": int(s.meta.get("pid", own_pid)),
                    "tid": int(s.meta.get("task_index", 0)),
                    "args": args,
                }
            )
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> str:
        """Write :meth:`chrome_trace` to *path*; returns the path."""
        path = os.fspath(path)
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
            fh.write("\n")
        return path

    def export_jsonl(self, path) -> str:
        """Write one JSON record per span to *path*; returns the path."""
        path = os.fspath(path)
        with open(path, "w") as fh:
            for record in self.as_records():
                fh.write(json.dumps(_json_safe(record)))
                fh.write("\n")
        return path

    def __repr__(self):
        return f"EventLog({len(self)} spans)"


# ---------------------------------------------------------------------
# Ambient hooks: estimators emit into whichever log is active
# ---------------------------------------------------------------------

_active = threading.local()


def _stack() -> List[EventLog]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    return stack


def current_log() -> Optional[EventLog]:
    """The innermost active :class:`EventLog` on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def recording(log: EventLog):
    """Make *log* the active log for the duration of the block.

    Nested ``recording`` blocks stack; estimators emitting through
    :func:`span`/:func:`emit` land in the innermost log.
    """
    stack = _stack()
    stack.append(log)
    try:
        yield log
    finally:
        stack.pop()


@contextmanager
def span(name: str, label: str = "", n_samples: Optional[int] = None,
         engine=None, **meta):
    """Emit a timed span into the active log; no-op without one.

    This is the hook estimator code uses: wrapping work in
    ``with instrument.span("fit", label=...)`` costs one attribute
    lookup when no log is active and records a full span when one is.
    """
    log = current_log()
    if log is None:
        yield None
        return
    with log.span(
        name, label=label, n_samples=n_samples, engine=engine, **meta
    ) as record:
        yield record


def emit(name: str, seconds: float, **kwargs) -> Optional[Span]:
    """Record a pre-timed span into the active log; no-op without one."""
    log = current_log()
    if log is None:
        return None
    return log.emit(name, seconds, **kwargs)


# ---------------------------------------------------------------------
# Metrics: counters, gauges, streaming histograms
# ---------------------------------------------------------------------

class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (thread-safe last-write-wins)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Jain & Chlamtac (1985): five markers track the running quantile
    with O(1) memory — no samples are retained.  Estimates are exact
    until five observations have arrived, then approximate.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = float(p)
        self._count = 0
        self._heights: List[float] = []
        self._positions = [0, 1, 2, 3, 4]

    def observe(self, x: float) -> None:
        x = float(x)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        q, n = self._heights, self._positions
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x < q[i]:
                    break
                k = i
        for i in range(k + 1, 5):
            n[i] += 1
        count = self._count - 1
        desired = (
            0.0,
            count * self.p / 2.0,
            count * self.p,
            count * (1.0 + self.p) / 2.0,
            float(count),
        )
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (
                d <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if d >= 0 else -1
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        if not self._heights:
            return float("nan")
        if self._count <= 5:
            # exact small-sample quantile (nearest-rank interpolation)
            heights = sorted(self._heights)
            position = self.p * (len(heights) - 1)
            low = int(position)
            high = min(low + 1, len(heights) - 1)
            fraction = position - low
            return heights[low] * (1 - fraction) + heights[high] * fraction
        return self._heights[2]


class Histogram:
    """Streaming distribution summary: count, sum, min/max, quantiles.

    Quantiles (p50/p90/p99) come from per-quantile :class:`P2Quantile`
    estimators, so memory stays O(1) no matter how many observations
    arrive.
    """

    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = {p: P2Quantile(p) for p in self.QUANTILES}

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for estimator in self._quantiles.values():
                estimator.observe(value)

    def snapshot(self) -> dict:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "total": 0.0, "mean": 0.0,
                        "min": 0.0, "max": 0.0,
                        **{f"p{int(p * 100)}": 0.0 for p in self.QUANTILES}}
            record = {
                "count": self.count,
                "total": self.total,
                "mean": self.total / self.count,
                "min": self.min,
                "max": self.max,
            }
            for p, estimator in self._quantiles.items():
                record[f"p{int(p * 100)}"] = estimator.value
            return record


@dataclass
class MetricsSnapshot:
    """A consistent point-in-time copy of a :class:`MetricsRegistry`.

    Mirrors ``GramCounters``: pair two snapshots with :meth:`delta` to
    attribute metric movement to a window of wall time.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)

    def delta(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """Metric movement ``self - before``.

        Counters and histogram count/total subtract; gauges and
        histogram quantiles are point-in-time and keep this snapshot's
        values.
        """
        counters = {
            name: value - before.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, record in self.histograms.items():
            prior = before.histograms.get(name)
            if prior is None:
                histograms[name] = dict(record)
                continue
            merged = dict(record)
            merged["count"] = record["count"] - prior["count"]
            merged["total"] = record["total"] - prior["total"]
            merged["mean"] = (
                merged["total"] / merged["count"] if merged["count"] else 0.0
            )
            histograms[name] = merged
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges),
            histograms=histograms,
        )

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock-free-ish
    facade.

    Instruments are created on first use and live for the registry's
    lifetime; hot-path updates take only the instrument's own lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        return histogram

    # -- hot-path conveniences -----------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str):
        """Time a block and observe the elapsed seconds into histogram
        *name* — the serving layer's one-liner for latency SLOs."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- introspection -------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return MetricsSnapshot(
            counters={k: c.value for k, c in counters.items()},
            gauges={k: g.value for k, g in gauges.items()},
            histograms={k: h.snapshot() for k, h in histograms.items()},
        )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self):
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)"
            )


_metrics = MetricsRegistry()
_metrics_lock = threading.Lock()


def metrics_registry() -> MetricsRegistry:
    """The process-wide shared registry every subsystem reports into."""
    return _metrics


def metrics_snapshot() -> MetricsSnapshot:
    """Snapshot of the process-wide registry (see
    :meth:`MetricsSnapshot.delta`)."""
    return _metrics.snapshot()


def set_metrics_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one (so
    tests can isolate and restore it)."""
    global _metrics
    with _metrics_lock:
        previous = _metrics
        _metrics = registry
    return previous
