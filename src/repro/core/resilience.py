"""Resilience primitives for long-running mining campaigns.

The paper's industrial case studies — test-selection loops, grid
refinement, silicon correlation — are exactly the workloads that die at
hour three of a four-hour run: a license server blips, one worker
wedges, one pathological grid cell diverges.  Section 1's
"no extra engineering burden" principle means the runtime has to absorb
those failures without babysitting.  This module supplies the four
policies the execution layer composes:

- :class:`RetryPolicy` — exponential backoff with *deterministic*
  seeded jitter and a retryable-exception filter, replacing the bare
  resubmit-immediately counter;
- :class:`Deadline` — a run-level wall-clock budget shared across every
  batch of a campaign;
- :class:`ErrorPolicy` — what a fit/score failure means: raise, record
  an ``error_score`` and keep going, or substitute a fallback
  estimator;
- :class:`CheckpointStore` — an atomic write-then-rename store of task
  results keyed by content fingerprint, making searches and discovery
  loops resumable with bitwise-identical results;
- :class:`LeaseFile` — a single-owner, heartbeat-renewed claim on a
  filesystem path, the mutual-exclusion primitive under the
  :mod:`~repro.core.shard` work protocol (atomic acquisition, stale
  detection, and rename-based takeover);
- :class:`CircuitBreaker` — closed/open/half-open failure isolation
  with deterministic, seeded probe scheduling, the primitive the
  :mod:`repro.serve` scoring front end uses to keep a failing exact
  model from taking the whole endpoint down;
- :class:`AdmissionController` — token-bucket plus queue-depth load
  shedding under :class:`Deadline` budgets: a request the system
  cannot serve in time is rejected *typed and immediately*, never
  queued into a hang.

Everything here is plain picklable data: policies travel inside task
payloads to process workers, and a store is just a directory path plus
options.
"""

from __future__ import annotations

import base64
import json
import math
import os
import socket
import tempfile
import threading
import time
import uuid
from hashlib import blake2b
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from . import instrument
from .exceptions import CheckpointError, TaskTimeoutError

__all__ = [
    "RetryPolicy",
    "Deadline",
    "ErrorPolicy",
    "CheckpointStore",
    "LeaseFile",
    "CircuitBreaker",
    "AdmissionController",
    "fingerprint",
]


def _require_finite(name: str, value: float, *, positive: bool = False,
                    non_negative: bool = False,
                    allow_inf: bool = False) -> float:
    """A numeric policy parameter, validated loudly.

    NaN is rejected everywhere: every comparison against NaN is False,
    so an unchecked NaN builds a policy that silently never retries,
    never expires, or always sheds — the worst possible failure mode
    for code whose whole job is handling failure.
    """
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if not allow_inf and math.isinf(value):
        raise ValueError(f"{name} must be finite")
    if positive and not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    if non_negative and value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


# ---------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------

class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total times one task may run (first attempt included); the
        bare ``retries=k`` counter corresponds to ``max_attempts=k+1``.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Growth factor per further retry.
    max_delay:
        Cap on any single delay.
    jitter:
        Fraction of the delay randomized away: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  The draw is a
        pure function of ``(seed, task_index, attempt)``, so a rerun of
        the same campaign backs off identically — failure handling
        never breaks reproducibility.
    seed:
        Root of the jitter derivation.
    retryable:
        Either a tuple of exception types or a predicate
        ``retryable(error) -> bool``.  Non-matching errors fail fast.
    retry_timeouts:
        Whether :class:`TaskTimeoutError` counts as retryable.  Off by
        default: a hung task usually hangs again, and every retry costs
        a full timeout window.
    """

    def __init__(self, max_attempts: int = 2, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 5.0,
                 jitter: float = 0.5, seed: int = 0,
                 retryable: Union[Tuple, Callable] = (Exception,),
                 retry_timeouts: bool = False):
        max_attempts = int(
            _require_finite("max_attempts", max_attempts)
        )
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        base_delay = _require_finite(
            "base_delay", base_delay, non_negative=True
        )
        max_delay = _require_finite(
            "max_delay", max_delay, non_negative=True
        )
        multiplier = _require_finite("multiplier", multiplier)
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier!r}")
        jitter = _require_finite("jitter", jitter)
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter!r}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = int(seed)
        self.retryable = retryable
        self.retry_timeouts = bool(retry_timeouts)

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """The legacy ``retries`` counter: immediate resubmission,
        any exception, no backoff."""
        return cls(max_attempts=retries + 1, base_delay=0.0, jitter=0.0)

    # ------------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        if isinstance(error, TaskTimeoutError) and not self.retry_timeouts:
            return False
        if callable(self.retryable) and not isinstance(
            self.retryable, tuple
        ):
            return bool(self.retryable(error))
        return isinstance(error, tuple(self.retryable))

    def should_retry(self, error: BaseException, attempts: int) -> bool:
        """Whether a task that has now run *attempts* times and failed
        with *error* deserves another attempt."""
        return attempts < self.max_attempts and self.is_retryable(error)

    def delay(self, task_index: int, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based) of one task.

        Deterministic: depends only on the policy configuration and
        ``(task_index, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        metrics = instrument.metrics_registry()
        metrics.increment("retry.delays")
        if raw == 0.0 or self.jitter == 0.0:
            metrics.observe("retry.delay_seconds", raw)
            return raw
        entropy = np.random.SeedSequence(
            entropy=[self.seed, int(task_index) & 0xFFFFFFFF, int(attempt)]
        )
        fraction = np.random.default_rng(entropy).random()
        delay = raw * (1.0 - self.jitter * fraction)
        metrics.observe("retry.delay_seconds", delay)
        return delay

    # ------------------------------------------------------------------
    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )

    def __eq__(self, other):
        if not isinstance(other, RetryPolicy):
            return NotImplemented
        return (
            self.max_attempts, self.base_delay, self.multiplier,
            self.max_delay, self.jitter, self.seed, self.retry_timeouts,
        ) == (
            other.max_attempts, other.base_delay, other.multiplier,
            other.max_delay, other.jitter, other.seed, other.retry_timeouts,
        ) and self.retryable == other.retryable

    __hash__ = None


# ---------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------

class Deadline:
    """A wall-clock budget for a whole run.

    One :class:`Deadline` instance can be threaded through many ``map``
    calls (a whole grid search, a whole discovery loop): the clock
    starts at construction and never resets.  Passing a plain number of
    seconds to a backend instead creates a fresh deadline per ``map``.
    """

    def __init__(self, seconds: float):
        # NaN would build a deadline that is never expired *and* never
        # has positive remaining budget — reject it loudly (inf is a
        # legitimate "unbounded" budget and passes)
        self.seconds = _require_finite(
            "deadline seconds", seconds, positive=True, allow_inf=True
        )
        self.started_at = time.monotonic()

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.seconds - (time.monotonic() - self.started_at))

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    @staticmethod
    def resolve(value) -> Optional["Deadline"]:
        """``None`` | seconds | :class:`Deadline` -> optional deadline."""
        if value is None or isinstance(value, Deadline):
            return value
        return Deadline(float(value))

    def __repr__(self):
        return (
            f"Deadline({self.seconds}s, {self.remaining():.3f}s remaining)"
        )


# ---------------------------------------------------------------------
# ErrorPolicy
# ---------------------------------------------------------------------

class ErrorPolicy:
    """What a failing fit/score task means for the surrounding search.

    Modes
    -----
    ``"raise"``
        Propagate (after the backend's retry budget) — the default, and
        the pre-existing behaviour.
    ``"skip"``
        Record ``error_score`` for the failed cell and keep the
        campaign going; the failure text is preserved alongside the
        scores so nothing fails silently.
    ``"fallback"``
        Fit *fallback* (a fresh clone per cell) in place of the failed
        candidate and score that instead — the paper's "the flow must
        still tape out" stance: a diverging exotic model degrades to a
        trusted baseline rather than killing the sweep.
    """

    MODES = ("raise", "skip", "fallback")

    def __init__(self, on_error: str = "raise",
                 error_score: float = float("nan"), fallback=None):
        if on_error not in self.MODES:
            raise ValueError(
                f"on_error must be one of {self.MODES}, got {on_error!r}"
            )
        if on_error == "fallback" and fallback is None:
            raise ValueError("fallback mode requires a fallback estimator")
        self.on_error = on_error
        self.error_score = float(error_score)
        self.fallback = fallback

    def __repr__(self):
        return (
            f"ErrorPolicy(on_error={self.on_error!r}, "
            f"error_score={self.error_score!r}, fallback={self.fallback!r})"
        )


# ---------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------

def _feed(h, value) -> None:
    """Feed one value into a hash, structurally and stably.

    Arrays hash by dtype/shape/bytes; params-API objects (estimators,
    kernels, pipelines) hash by class plus their shallow params,
    recursively; callables by qualified name; containers element-wise.
    Reprs are used only for scalar builtins, whose reprs are stable.
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"nd:")
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"by:")
        h.update(bytes(value))
    elif isinstance(value, str):
        h.update(b"st:")
        h.update(value.encode())
    elif value is None or isinstance(value, (bool, int, float, complex,
                                             np.generic)):
        h.update(b"sc:")
        h.update(repr(value).encode())
    elif isinstance(value, dict):
        h.update(b"di:")
        for key in sorted(value, key=repr):
            _feed(h, key)
            _feed(h, value[key])
    elif isinstance(value, (list, tuple)):
        h.update(b"sq:")
        for item in value:
            _feed(h, item)
    elif hasattr(value, "cache_key") and callable(value.cache_key):
        h.update(b"ck:")
        _feed(h, value.cache_key())
    elif hasattr(value, "get_params") and not isinstance(value, type):
        h.update(b"es:")
        h.update(type(value).__qualname__.encode())
        _feed(h, value.get_params(deep=False))
    elif callable(value):
        h.update(b"fn:")
        h.update(getattr(value, "__module__", "?").encode())
        h.update(getattr(value, "__qualname__", repr(value)).encode())
    else:
        h.update(b"re:")
        h.update(type(value).__qualname__.encode())
        h.update(repr(value).encode())


def fingerprint(*parts, digest_size: int = 16) -> str:
    """Stable hex digest of arbitrarily nested task-describing values.

    Two calls agree exactly when the parts are structurally equal —
    across processes, across runs, across machines with the same data.
    This is the checkpoint key: (estimator, params, data, fold) in,
    one short hex string out.
    """
    h = blake2b(digest_size=digest_size)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


# ---------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------

def _encode(value, allow_pickle: bool):
    """JSON-encodable form of *value*; arrays keep exact bytes."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
    if isinstance(value, np.generic):
        return _encode(value.item(), allow_pickle)
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, float):
        # json rejects nan/inf under allow_nan=False; tag them so the
        # round-trip stays exact (error_score defaults to nan)
        if value != value:
            return {"__float__": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {key!r}"
                )
        return {k: _encode(v, allow_pickle) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v, allow_pickle) for v in value]
    if allow_pickle:
        import pickle

        return {
            "__pickle__": base64.b64encode(
                pickle.dumps(value)
            ).decode("ascii")
        }
    raise CheckpointError(
        f"cannot checkpoint a {type(value).__name__} without "
        f"allow_pickle=True"
    )


def _decode(value, allow_pickle: bool):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            return np.frombuffer(
                raw, dtype=np.dtype(value["dtype"])
            ).reshape(value["shape"]).copy()
        if "__float__" in value:
            return float(value["__float__"])
        if "__pickle__" in value:
            if not allow_pickle:
                raise CheckpointError(
                    "checkpoint contains pickled data but the store was "
                    "opened with allow_pickle=False"
                )
            import pickle

            return pickle.loads(base64.b64decode(value["__pickle__"]))
        return {k: _decode(v, allow_pickle) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v, allow_pickle) for v in value]
    return value


class CheckpointStore:
    """Atomic, content-addressed store of completed task results.

    One checkpoint is one ``<key>.json`` file in *path*, written to a
    temporary sibling first and moved into place with ``os.replace`` —
    so a reader (including a resumed run after SIGKILL) only ever sees
    absent or complete checkpoints, never torn ones.

    Values are JSON documents in which numpy arrays, NaN/inf floats,
    and (with ``allow_pickle=True``) arbitrary Python objects
    round-trip exactly: a float or float64 array read back is bitwise
    equal to the one written, which is what makes "resume equals
    uninterrupted run" an achievable contract rather than a tolerance.

    The store itself is just configuration (a path), so it pickles
    cheaply into task payloads and many workers — threads or processes
    — may write concurrently.
    """

    def __init__(self, path, allow_pickle: bool = False):
        self.path = os.fspath(path)
        self.allow_pickle = bool(allow_pickle)
        os.makedirs(self.path, exist_ok=True)

    def cache_key(self):
        """Structural identity: a store is its configuration, not its
        current contents.  Keeps :func:`fingerprint` over task payloads
        that carry a store (checkpointed grid cells under a sharded
        backend) stable across runs while entries accumulate."""
        return ("CheckpointStore", self.path, self.allow_pickle)

    # ------------------------------------------------------------------
    def _file(self, key: str) -> str:
        if not key or os.sep in key or key.startswith("."):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        return os.path.join(self.path, key + ".json")

    def put(self, key: str, value) -> str:
        """Persist *value* under *key* atomically; returns the path."""
        encoded = json.dumps(
            {"key": key, "value": _encode(value, self.allow_pickle)}
        )
        target = self._file(key)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(encoded)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        metrics = instrument.metrics_registry()
        metrics.increment("checkpoint.puts")
        metrics.observe("checkpoint.put_bytes", len(encoded))
        return target

    def get(self, key: str, default=None):
        """The stored value for *key*, or *default* when absent.

        A torn or corrupt file (which atomic replace should preclude,
        but disks lie) reads as absent rather than poisoning a resume.
        """
        metrics = instrument.metrics_registry()
        try:
            with open(self._file(key), "r") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            metrics.increment("checkpoint.misses")
            return default
        except (json.JSONDecodeError, OSError):
            metrics.increment("checkpoint.misses")
            return default
        metrics.increment("checkpoint.hits")
        return _decode(document["value"], self.allow_pickle)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._file(key))

    def keys(self) -> List[str]:
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.path)
            if name.endswith(".json") and not name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def discard(self, key: str) -> bool:
        """Remove one checkpoint; True when it existed."""
        try:
            os.unlink(self._file(key))
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every checkpoint; returns how many were removed."""
        removed = 0
        for key in self.keys():
            removed += self.discard(key)
        return removed

    def __repr__(self):
        return (
            f"CheckpointStore({self.path!r}, {len(self)} entries, "
            f"allow_pickle={self.allow_pickle})"
        )


# ---------------------------------------------------------------------
# LeaseFile
# ---------------------------------------------------------------------

class LeaseFile:
    """A single-owner, heartbeat-renewed claim on a filesystem path.

    This is the mutual-exclusion primitive under the
    :mod:`~repro.core.shard` work protocol: each work unit (shard) has
    one lease path, and whichever worker holds the lease executes the
    unit.  The protocol is safe on any filesystem with atomic
    ``link``/``rename`` (local disks, NFSv3+):

    - **Acquire** writes the owner record to a temporary sibling and
      atomically links it into place — creation *with content* is one
      atomic step, so a reader never observes a claimed-but-empty
      lease.
    - **Renew** (the heartbeat) re-reads the lease first and refuses to
      renew when the owner token is no longer ours, then replaces the
      record via ``mkstemp`` + ``os.replace``.
    - **Steal** takes over a lease whose heartbeat is older than *ttl*
      (the owner is presumed dead).  The steal renames the stale lease
      to a stealer-unique name: of any number of concurrent stealers,
      exactly one rename succeeds, so a stale lease has exactly one
      inheritor.

    Leases bound *liveness*, not correctness: the commit layer above
    (:class:`CheckpointStore`) is idempotent, so even the unavoidable
    window where a stale owner revives while its inheritor works only
    produces duplicate identical commits, never divergent results.
    """

    def __init__(self, path, owner: Optional[str] = None,
                 ttl: float = 30.0):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.path = os.fspath(path)
        self.ttl = float(ttl)
        self.owner = owner or (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        )

    # ------------------------------------------------------------------
    def _record(self, acquired_at: Optional[float] = None) -> dict:
        now = time.time()
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": acquired_at if acquired_at is not None else now,
            "heartbeat_at": now,
        }

    def _write_tmp(self, record: dict) -> str:
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(prefix=".lease.", dir=directory)
        with os.fdopen(fd, "w") as fh:
            json.dump(record, fh)
            fh.flush()
            os.fsync(fh.fileno())
        return tmp

    def read(self) -> Optional[dict]:
        """The current owner record, or ``None`` when absent/corrupt.

        Corruption cannot arise from this class's own writes (they are
        atomic), so an unreadable lease is treated like a crashed
        writer's: eligible for steal.
        """
        try:
            with open(self.path, "r") as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def is_stale(self, record: Optional[dict] = None) -> bool:
        """Whether the lease exists but its heartbeat has expired.

        A heartbeat is trusted only within a plausibility window: a
        non-finite value (corrupt record) or one more than one TTL in
        the *future* (cross-host clock skew, a stepped clock) would
        otherwise make ``now - heartbeat > ttl`` permanently False and
        leave a dead worker's lease unstealable forever.  Both count as
        stale so the shard run can make progress.
        """
        record = record if record is not None else self.read()
        if record is None:
            return os.path.exists(self.path)
        try:
            heartbeat = float(record["heartbeat_at"])
        except (KeyError, TypeError, ValueError):
            return True
        if not math.isfinite(heartbeat):
            return True
        age = time.time() - heartbeat
        # future-dated beyond one TTL: no renewal discipline could have
        # produced it, so the record is not evidence of a live owner
        if age < -self.ttl:
            return True
        return age > self.ttl

    def held(self) -> bool:
        """Whether this instance's owner token currently holds the lease."""
        record = self.read()
        return record is not None and record.get("owner") == self.owner

    # ------------------------------------------------------------------
    def acquire(self) -> bool:
        """Claim an unclaimed lease; False when someone already holds it."""
        tmp = self._write_tmp(self._record())
        try:
            os.link(tmp, self.path)
        except FileExistsError:
            return False
        except OSError:
            # filesystems without hard links: fall back to exclusive
            # create + replace (claim flag first, content right after)
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            os.close(fd)
            os.replace(tmp, self.path)
            tmp = None
            instrument.metrics_registry().increment("lease.acquired")
            return True
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        instrument.metrics_registry().increment("lease.acquired")
        return True

    def renew(self) -> bool:
        """Refresh the heartbeat; False when the lease is no longer ours
        (stolen after a stale period — stop working on the unit)."""
        record = self.read()
        if record is None or record.get("owner") != self.owner:
            instrument.metrics_registry().increment("lease.lost")
            return False
        fresh = self._record(acquired_at=record.get("acquired_at"))
        tmp = self._write_tmp(fresh)
        try:
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        instrument.metrics_registry().increment("lease.renewals")
        return True

    def steal(self) -> bool:
        """Take over a stale lease; False when it is fresh, absent, or a
        concurrent stealer won the race."""
        record = self.read()
        if record is None and not os.path.exists(self.path):
            return False
        if record is not None and not self.is_stale(record):
            return False
        # exactly one concurrent stealer's rename of the stale lease
        # succeeds; the winner then acquires a fresh lease of its own
        grave = f"{self.path}.stale.{self.owner.replace(os.sep, '_')}"
        try:
            os.rename(self.path, grave)
        except OSError:
            return False
        try:
            os.unlink(grave)
        except OSError:
            pass
        if not self.acquire():
            return False
        instrument.metrics_registry().increment("lease.steals")
        return True

    def release(self) -> bool:
        """Drop the lease if we still own it; False otherwise."""
        if not self.held():
            return False
        try:
            os.unlink(self.path)
        except OSError:
            return False
        return True

    def __repr__(self):
        return (
            f"LeaseFile({self.path!r}, owner={self.owner!r}, "
            f"ttl={self.ttl})"
        )


# ---------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------

class CircuitBreaker:
    """Closed/open/half-open failure isolation with deterministic,
    seeded probe scheduling.

    The classic serving-side pattern: while a dependency (here: a
    scorer) is healthy the breaker is **closed** and every call passes.
    After *failure_threshold* consecutive failures it **opens** — calls
    are refused instantly instead of queueing onto a dying dependency.
    Once the recovery window has elapsed the breaker goes
    **half-open**: at most *max_probes* concurrent probe calls are let
    through; *probe_successes* successful probes close it again, any
    probe failure re-opens it.

    Determinism
    -----------
    The recovery window for the *k*-th open is
    ``recovery_time * (1 + jitter * u)`` where ``u`` is a pure function
    of ``(seed, k)`` — the same derivation style as
    :meth:`RetryPolicy.delay`.  A breaker flap sequence therefore
    replays identically across runs with the same seed, which is what
    makes breaker behaviour chaos-testable rather than merely
    observable.  The clock is injectable (*clock*, default
    ``time.monotonic``) so state transitions can be unit-tested without
    sleeping.

    Thread safety: all methods take an internal lock; the breaker is
    shared between an asyncio event loop and executor threads in
    :mod:`repro.serve`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 1.0, probe_successes: int = 2,
                 max_probes: int = 1, jitter: float = 0.25, seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "", metrics_prefix: str = "breaker"):
        failure_threshold = int(
            _require_finite("failure_threshold", failure_threshold,
                            positive=True)
        )
        probe_successes = int(
            _require_finite("probe_successes", probe_successes,
                            positive=True)
        )
        max_probes = int(
            _require_finite("max_probes", max_probes, positive=True)
        )
        recovery_time = _require_finite(
            "recovery_time", recovery_time, positive=True
        )
        jitter = _require_finite("jitter", jitter)
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter!r}")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.probe_successes = probe_successes
        self.max_probes = max_probes
        self.jitter = jitter
        self.seed = int(seed)
        self.name = name
        self.metrics_prefix = metrics_prefix
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0          # consecutive, while closed
        self._opened_at = 0.0
        self._open_count = 0        # lifetime opens (probe-jitter input)
        self._probes_in_flight = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    def _metric(self, event: str) -> None:
        prefix = self.metrics_prefix
        if self.name:
            prefix = f"{prefix}.{self.name}"
        instrument.metrics_registry().increment(f"{prefix}.{event}")

    def recovery_window(self, open_count: Optional[int] = None) -> float:
        """The open-state dwell before probing, for the given (1-based)
        open ordinal — deterministic in ``(seed, open_count)``."""
        k = self._open_count if open_count is None else int(open_count)
        if self.jitter == 0.0:
            return self.recovery_time
        entropy = np.random.SeedSequence(
            entropy=[self.seed, k & 0xFFFFFFFF]
        )
        fraction = np.random.default_rng(entropy).random()
        return self.recovery_time * (1.0 + self.jitter * fraction)

    def _open(self, now: float) -> None:
        self._state = self.OPEN
        self._opened_at = now
        self._open_count += 1
        self._failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._metric("opened")

    def _close(self) -> None:
        self._state = self.CLOSED
        self._failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._metric("closed")

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when the recovery
        window has elapsed (reading the state *is* the scheduler)."""
        with self._lock:
            return self._advance()

    def _advance(self) -> str:
        if self._state == self.OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.recovery_window():
                self._state = self.HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0
                self._metric("half_open")
        return self._state

    @property
    def open_count(self) -> int:
        with self._lock:
            return self._open_count

    def allow(self) -> bool:
        """Whether one call may proceed right now.

        In half-open state a ``True`` reserves a probe slot: the caller
        **must** follow up with :meth:`record_success` or
        :meth:`record_failure`, which releases it.  Closed-state calls
        need no reservation (successes/failures are counted but not
        slotted).
        """
        with self._lock:
            state = self._advance()
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                self._metric("rejected")
                return False
            if self._probes_in_flight >= self.max_probes:
                self._metric("rejected")
                return False
            self._probes_in_flight += 1
            self._metric("probes")
            return True

    def record_success(self) -> None:
        with self._lock:
            state = self._advance()
            if state == self.CLOSED:
                self._failures = 0
                return
            if state == self.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.probe_successes:
                    self._close()

    def record_failure(self) -> None:
        with self._lock:
            state = self._advance()
            now = self._clock()
            if state == self.HALF_OPEN:
                # one failed probe is enough evidence: re-open
                self._open(now)
                return
            if state == self.OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._open(now)

    def trip(self) -> None:
        """Force the breaker open (operational kill switch / tests)."""
        with self._lock:
            self._open(self._clock())

    def reset(self) -> None:
        """Force the breaker closed, clearing all counters."""
        with self._lock:
            self._close()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._advance(),
                "failures": self._failures,
                "open_count": self._open_count,
                "probes_in_flight": self._probes_in_flight,
                "probe_successes": self._probe_successes,
            }

    def __repr__(self):
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failure_threshold={self.failure_threshold}, "
            f"recovery_time={self.recovery_time})"
        )


# ---------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------

class AdmissionController:
    """Token-bucket plus queue-depth load shedding under
    :class:`Deadline` budgets.

    A request is admitted only when (a) a token is available — tokens
    refill at *rate* per second up to *burst*, so sustained overload is
    clipped to the provisioned rate while short spikes ride the burst
    allowance; (b) the reported queue depth is below *max_queue_depth*
    — a queue the scorer cannot drain within the SLO is sheddable load,
    not backlog; and (c) the request's :class:`Deadline`, when given,
    has at least *min_slack* seconds remaining — work that is already
    doomed to miss its budget is refused before it costs anything.

    :meth:`try_admit` never blocks and never raises on overload: it
    returns ``(admitted, reason)`` and the caller converts a shed into
    a typed response (:mod:`repro.serve` returns ``status="overloaded"``
    — the contract is *shed, never hang*).

    ``rate=None`` disables rate limiting (queue/deadline checks still
    apply); ``max_queue_depth=None`` disables the depth check.  The
    clock is injectable for deterministic tests.
    """

    def __init__(self, rate: Optional[float] = None,
                 burst: Optional[int] = None,
                 max_queue_depth: Optional[int] = 256,
                 min_slack: float = 0.0,
                 clock: Callable[[], float] = time.monotonic,
                 metrics_prefix: str = "admission"):
        if rate is not None:
            rate = _require_finite("rate", rate, positive=True)
        if burst is None:
            burst = max(1, int(rate)) if rate is not None else 1
        burst = int(_require_finite("burst", burst, positive=True))
        if max_queue_depth is not None:
            max_queue_depth = int(
                _require_finite("max_queue_depth", max_queue_depth,
                                positive=True)
            )
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self.min_slack = _require_finite(
            "min_slack", min_slack, non_negative=True
        )
        self.metrics_prefix = metrics_prefix
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._refilled_at = clock()
        self.admitted_count = 0
        self.shed_count = 0

    # ------------------------------------------------------------------
    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate
            )
            self._refilled_at = now

    def tokens(self) -> float:
        """Current token balance (after refill) — for introspection."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens if self.rate is not None else math.inf

    def try_admit(self, queue_depth: int = 0,
                  deadline: Optional[Deadline] = None) -> Tuple[bool, str]:
        """Admit or shed one request; returns ``(admitted, reason)``.

        *reason* is ``""`` on admission, else one of ``"deadline"``,
        ``"queue"``, ``"rate"`` — the first check that failed, in that
        order (a doomed request is reported as doomed even when the
        queue is also full).
        """
        metrics = instrument.metrics_registry()
        with self._lock:
            now = self._clock()
            self._refill(now)
            reason = ""
            if deadline is not None and (
                deadline.expired() or deadline.remaining() < self.min_slack
            ):
                reason = "deadline"
            elif (self.max_queue_depth is not None
                    and queue_depth >= self.max_queue_depth):
                reason = "queue"
            elif self.rate is not None and self._tokens < 1.0:
                reason = "rate"
            if reason:
                self.shed_count += 1
                metrics.increment(f"{self.metrics_prefix}.shed")
                metrics.increment(
                    f"{self.metrics_prefix}.shed_{reason}"
                )
                return False, reason
            if self.rate is not None:
                self._tokens -= 1.0
            self.admitted_count += 1
        metrics.increment(f"{self.metrics_prefix}.admitted")
        return True, ""

    def snapshot(self) -> dict:
        with self._lock:
            self._refill(self._clock())
            return {
                "tokens": (
                    self._tokens if self.rate is not None else None
                ),
                "admitted": self.admitted_count,
                "shed": self.shed_count,
            }

    def __repr__(self):
        return (
            f"AdmissionController(rate={self.rate}, burst={self.burst}, "
            f"max_queue_depth={self.max_queue_depth}, "
            f"min_slack={self.min_slack})"
        )
