"""Resilience primitives for long-running mining campaigns.

The paper's industrial case studies — test-selection loops, grid
refinement, silicon correlation — are exactly the workloads that die at
hour three of a four-hour run: a license server blips, one worker
wedges, one pathological grid cell diverges.  Section 1's
"no extra engineering burden" principle means the runtime has to absorb
those failures without babysitting.  This module supplies the four
policies the execution layer composes:

- :class:`RetryPolicy` — exponential backoff with *deterministic*
  seeded jitter and a retryable-exception filter, replacing the bare
  resubmit-immediately counter;
- :class:`Deadline` — a run-level wall-clock budget shared across every
  batch of a campaign;
- :class:`ErrorPolicy` — what a fit/score failure means: raise, record
  an ``error_score`` and keep going, or substitute a fallback
  estimator;
- :class:`CheckpointStore` — an atomic write-then-rename store of task
  results keyed by content fingerprint, making searches and discovery
  loops resumable with bitwise-identical results;
- :class:`LeaseFile` — a single-owner, heartbeat-renewed claim on a
  filesystem path, the mutual-exclusion primitive under the
  :mod:`~repro.core.shard` work protocol (atomic acquisition, stale
  detection, and rename-based takeover).

Everything here is plain picklable data: policies travel inside task
payloads to process workers, and a store is just a directory path plus
options.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import tempfile
import time
import uuid
from hashlib import blake2b
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from . import instrument
from .exceptions import CheckpointError, TaskTimeoutError

__all__ = [
    "RetryPolicy",
    "Deadline",
    "ErrorPolicy",
    "CheckpointStore",
    "LeaseFile",
    "fingerprint",
]


# ---------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------

class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total times one task may run (first attempt included); the
        bare ``retries=k`` counter corresponds to ``max_attempts=k+1``.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Growth factor per further retry.
    max_delay:
        Cap on any single delay.
    jitter:
        Fraction of the delay randomized away: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  The draw is a
        pure function of ``(seed, task_index, attempt)``, so a rerun of
        the same campaign backs off identically — failure handling
        never breaks reproducibility.
    seed:
        Root of the jitter derivation.
    retryable:
        Either a tuple of exception types or a predicate
        ``retryable(error) -> bool``.  Non-matching errors fail fast.
    retry_timeouts:
        Whether :class:`TaskTimeoutError` counts as retryable.  Off by
        default: a hung task usually hangs again, and every retry costs
        a full timeout window.
    """

    def __init__(self, max_attempts: int = 2, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 5.0,
                 jitter: float = 0.5, seed: int = 0,
                 retryable: Union[Tuple, Callable] = (Exception,),
                 retry_timeouts: bool = False):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.retryable = retryable
        self.retry_timeouts = bool(retry_timeouts)

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """The legacy ``retries`` counter: immediate resubmission,
        any exception, no backoff."""
        return cls(max_attempts=retries + 1, base_delay=0.0, jitter=0.0)

    # ------------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        if isinstance(error, TaskTimeoutError) and not self.retry_timeouts:
            return False
        if callable(self.retryable) and not isinstance(
            self.retryable, tuple
        ):
            return bool(self.retryable(error))
        return isinstance(error, tuple(self.retryable))

    def should_retry(self, error: BaseException, attempts: int) -> bool:
        """Whether a task that has now run *attempts* times and failed
        with *error* deserves another attempt."""
        return attempts < self.max_attempts and self.is_retryable(error)

    def delay(self, task_index: int, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based) of one task.

        Deterministic: depends only on the policy configuration and
        ``(task_index, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        metrics = instrument.metrics_registry()
        metrics.increment("retry.delays")
        if raw == 0.0 or self.jitter == 0.0:
            metrics.observe("retry.delay_seconds", raw)
            return raw
        entropy = np.random.SeedSequence(
            entropy=[self.seed, int(task_index) & 0xFFFFFFFF, int(attempt)]
        )
        fraction = np.random.default_rng(entropy).random()
        delay = raw * (1.0 - self.jitter * fraction)
        metrics.observe("retry.delay_seconds", delay)
        return delay

    # ------------------------------------------------------------------
    def __repr__(self):
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )

    def __eq__(self, other):
        if not isinstance(other, RetryPolicy):
            return NotImplemented
        return (
            self.max_attempts, self.base_delay, self.multiplier,
            self.max_delay, self.jitter, self.seed, self.retry_timeouts,
        ) == (
            other.max_attempts, other.base_delay, other.multiplier,
            other.max_delay, other.jitter, other.seed, other.retry_timeouts,
        ) and self.retryable == other.retryable

    __hash__ = None


# ---------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------

class Deadline:
    """A wall-clock budget for a whole run.

    One :class:`Deadline` instance can be threaded through many ``map``
    calls (a whole grid search, a whole discovery loop): the clock
    starts at construction and never resets.  Passing a plain number of
    seconds to a backend instead creates a fresh deadline per ``map``.
    """

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = float(seconds)
        self.started_at = time.monotonic()

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.seconds - (time.monotonic() - self.started_at))

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    @staticmethod
    def resolve(value) -> Optional["Deadline"]:
        """``None`` | seconds | :class:`Deadline` -> optional deadline."""
        if value is None or isinstance(value, Deadline):
            return value
        return Deadline(float(value))

    def __repr__(self):
        return (
            f"Deadline({self.seconds}s, {self.remaining():.3f}s remaining)"
        )


# ---------------------------------------------------------------------
# ErrorPolicy
# ---------------------------------------------------------------------

class ErrorPolicy:
    """What a failing fit/score task means for the surrounding search.

    Modes
    -----
    ``"raise"``
        Propagate (after the backend's retry budget) — the default, and
        the pre-existing behaviour.
    ``"skip"``
        Record ``error_score`` for the failed cell and keep the
        campaign going; the failure text is preserved alongside the
        scores so nothing fails silently.
    ``"fallback"``
        Fit *fallback* (a fresh clone per cell) in place of the failed
        candidate and score that instead — the paper's "the flow must
        still tape out" stance: a diverging exotic model degrades to a
        trusted baseline rather than killing the sweep.
    """

    MODES = ("raise", "skip", "fallback")

    def __init__(self, on_error: str = "raise",
                 error_score: float = float("nan"), fallback=None):
        if on_error not in self.MODES:
            raise ValueError(
                f"on_error must be one of {self.MODES}, got {on_error!r}"
            )
        if on_error == "fallback" and fallback is None:
            raise ValueError("fallback mode requires a fallback estimator")
        self.on_error = on_error
        self.error_score = float(error_score)
        self.fallback = fallback

    def __repr__(self):
        return (
            f"ErrorPolicy(on_error={self.on_error!r}, "
            f"error_score={self.error_score!r}, fallback={self.fallback!r})"
        )


# ---------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------

def _feed(h, value) -> None:
    """Feed one value into a hash, structurally and stably.

    Arrays hash by dtype/shape/bytes; params-API objects (estimators,
    kernels, pipelines) hash by class plus their shallow params,
    recursively; callables by qualified name; containers element-wise.
    Reprs are used only for scalar builtins, whose reprs are stable.
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"nd:")
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"by:")
        h.update(bytes(value))
    elif isinstance(value, str):
        h.update(b"st:")
        h.update(value.encode())
    elif value is None or isinstance(value, (bool, int, float, complex,
                                             np.generic)):
        h.update(b"sc:")
        h.update(repr(value).encode())
    elif isinstance(value, dict):
        h.update(b"di:")
        for key in sorted(value, key=repr):
            _feed(h, key)
            _feed(h, value[key])
    elif isinstance(value, (list, tuple)):
        h.update(b"sq:")
        for item in value:
            _feed(h, item)
    elif hasattr(value, "cache_key") and callable(value.cache_key):
        h.update(b"ck:")
        _feed(h, value.cache_key())
    elif hasattr(value, "get_params") and not isinstance(value, type):
        h.update(b"es:")
        h.update(type(value).__qualname__.encode())
        _feed(h, value.get_params(deep=False))
    elif callable(value):
        h.update(b"fn:")
        h.update(getattr(value, "__module__", "?").encode())
        h.update(getattr(value, "__qualname__", repr(value)).encode())
    else:
        h.update(b"re:")
        h.update(type(value).__qualname__.encode())
        h.update(repr(value).encode())


def fingerprint(*parts, digest_size: int = 16) -> str:
    """Stable hex digest of arbitrarily nested task-describing values.

    Two calls agree exactly when the parts are structurally equal —
    across processes, across runs, across machines with the same data.
    This is the checkpoint key: (estimator, params, data, fold) in,
    one short hex string out.
    """
    h = blake2b(digest_size=digest_size)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


# ---------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------

def _encode(value, allow_pickle: bool):
    """JSON-encodable form of *value*; arrays keep exact bytes."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
    if isinstance(value, np.generic):
        return _encode(value.item(), allow_pickle)
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, float):
        # json rejects nan/inf under allow_nan=False; tag them so the
        # round-trip stays exact (error_score defaults to nan)
        if value != value:
            return {"__float__": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {key!r}"
                )
        return {k: _encode(v, allow_pickle) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v, allow_pickle) for v in value]
    if allow_pickle:
        import pickle

        return {
            "__pickle__": base64.b64encode(
                pickle.dumps(value)
            ).decode("ascii")
        }
    raise CheckpointError(
        f"cannot checkpoint a {type(value).__name__} without "
        f"allow_pickle=True"
    )


def _decode(value, allow_pickle: bool):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            return np.frombuffer(
                raw, dtype=np.dtype(value["dtype"])
            ).reshape(value["shape"]).copy()
        if "__float__" in value:
            return float(value["__float__"])
        if "__pickle__" in value:
            if not allow_pickle:
                raise CheckpointError(
                    "checkpoint contains pickled data but the store was "
                    "opened with allow_pickle=False"
                )
            import pickle

            return pickle.loads(base64.b64decode(value["__pickle__"]))
        return {k: _decode(v, allow_pickle) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v, allow_pickle) for v in value]
    return value


class CheckpointStore:
    """Atomic, content-addressed store of completed task results.

    One checkpoint is one ``<key>.json`` file in *path*, written to a
    temporary sibling first and moved into place with ``os.replace`` —
    so a reader (including a resumed run after SIGKILL) only ever sees
    absent or complete checkpoints, never torn ones.

    Values are JSON documents in which numpy arrays, NaN/inf floats,
    and (with ``allow_pickle=True``) arbitrary Python objects
    round-trip exactly: a float or float64 array read back is bitwise
    equal to the one written, which is what makes "resume equals
    uninterrupted run" an achievable contract rather than a tolerance.

    The store itself is just configuration (a path), so it pickles
    cheaply into task payloads and many workers — threads or processes
    — may write concurrently.
    """

    def __init__(self, path, allow_pickle: bool = False):
        self.path = os.fspath(path)
        self.allow_pickle = bool(allow_pickle)
        os.makedirs(self.path, exist_ok=True)

    def cache_key(self):
        """Structural identity: a store is its configuration, not its
        current contents.  Keeps :func:`fingerprint` over task payloads
        that carry a store (checkpointed grid cells under a sharded
        backend) stable across runs while entries accumulate."""
        return ("CheckpointStore", self.path, self.allow_pickle)

    # ------------------------------------------------------------------
    def _file(self, key: str) -> str:
        if not key or os.sep in key or key.startswith("."):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        return os.path.join(self.path, key + ".json")

    def put(self, key: str, value) -> str:
        """Persist *value* under *key* atomically; returns the path."""
        encoded = json.dumps(
            {"key": key, "value": _encode(value, self.allow_pickle)}
        )
        target = self._file(key)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(encoded)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        metrics = instrument.metrics_registry()
        metrics.increment("checkpoint.puts")
        metrics.observe("checkpoint.put_bytes", len(encoded))
        return target

    def get(self, key: str, default=None):
        """The stored value for *key*, or *default* when absent.

        A torn or corrupt file (which atomic replace should preclude,
        but disks lie) reads as absent rather than poisoning a resume.
        """
        metrics = instrument.metrics_registry()
        try:
            with open(self._file(key), "r") as fh:
                document = json.load(fh)
        except FileNotFoundError:
            metrics.increment("checkpoint.misses")
            return default
        except (json.JSONDecodeError, OSError):
            metrics.increment("checkpoint.misses")
            return default
        metrics.increment("checkpoint.hits")
        return _decode(document["value"], self.allow_pickle)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._file(key))

    def keys(self) -> List[str]:
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.path)
            if name.endswith(".json") and not name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def discard(self, key: str) -> bool:
        """Remove one checkpoint; True when it existed."""
        try:
            os.unlink(self._file(key))
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every checkpoint; returns how many were removed."""
        removed = 0
        for key in self.keys():
            removed += self.discard(key)
        return removed

    def __repr__(self):
        return (
            f"CheckpointStore({self.path!r}, {len(self)} entries, "
            f"allow_pickle={self.allow_pickle})"
        )


# ---------------------------------------------------------------------
# LeaseFile
# ---------------------------------------------------------------------

class LeaseFile:
    """A single-owner, heartbeat-renewed claim on a filesystem path.

    This is the mutual-exclusion primitive under the
    :mod:`~repro.core.shard` work protocol: each work unit (shard) has
    one lease path, and whichever worker holds the lease executes the
    unit.  The protocol is safe on any filesystem with atomic
    ``link``/``rename`` (local disks, NFSv3+):

    - **Acquire** writes the owner record to a temporary sibling and
      atomically links it into place — creation *with content* is one
      atomic step, so a reader never observes a claimed-but-empty
      lease.
    - **Renew** (the heartbeat) re-reads the lease first and refuses to
      renew when the owner token is no longer ours, then replaces the
      record via ``mkstemp`` + ``os.replace``.
    - **Steal** takes over a lease whose heartbeat is older than *ttl*
      (the owner is presumed dead).  The steal renames the stale lease
      to a stealer-unique name: of any number of concurrent stealers,
      exactly one rename succeeds, so a stale lease has exactly one
      inheritor.

    Leases bound *liveness*, not correctness: the commit layer above
    (:class:`CheckpointStore`) is idempotent, so even the unavoidable
    window where a stale owner revives while its inheritor works only
    produces duplicate identical commits, never divergent results.
    """

    def __init__(self, path, owner: Optional[str] = None,
                 ttl: float = 30.0):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.path = os.fspath(path)
        self.ttl = float(ttl)
        self.owner = owner or (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        )

    # ------------------------------------------------------------------
    def _record(self, acquired_at: Optional[float] = None) -> dict:
        now = time.time()
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": acquired_at if acquired_at is not None else now,
            "heartbeat_at": now,
        }

    def _write_tmp(self, record: dict) -> str:
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(prefix=".lease.", dir=directory)
        with os.fdopen(fd, "w") as fh:
            json.dump(record, fh)
            fh.flush()
            os.fsync(fh.fileno())
        return tmp

    def read(self) -> Optional[dict]:
        """The current owner record, or ``None`` when absent/corrupt.

        Corruption cannot arise from this class's own writes (they are
        atomic), so an unreadable lease is treated like a crashed
        writer's: eligible for steal.
        """
        try:
            with open(self.path, "r") as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def is_stale(self, record: Optional[dict] = None) -> bool:
        """Whether the lease exists but its heartbeat has expired."""
        record = record if record is not None else self.read()
        if record is None:
            return os.path.exists(self.path)
        try:
            heartbeat = float(record["heartbeat_at"])
        except (KeyError, TypeError, ValueError):
            return True
        return (time.time() - heartbeat) > self.ttl

    def held(self) -> bool:
        """Whether this instance's owner token currently holds the lease."""
        record = self.read()
        return record is not None and record.get("owner") == self.owner

    # ------------------------------------------------------------------
    def acquire(self) -> bool:
        """Claim an unclaimed lease; False when someone already holds it."""
        tmp = self._write_tmp(self._record())
        try:
            os.link(tmp, self.path)
        except FileExistsError:
            return False
        except OSError:
            # filesystems without hard links: fall back to exclusive
            # create + replace (claim flag first, content right after)
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            os.close(fd)
            os.replace(tmp, self.path)
            tmp = None
            instrument.metrics_registry().increment("lease.acquired")
            return True
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        instrument.metrics_registry().increment("lease.acquired")
        return True

    def renew(self) -> bool:
        """Refresh the heartbeat; False when the lease is no longer ours
        (stolen after a stale period — stop working on the unit)."""
        record = self.read()
        if record is None or record.get("owner") != self.owner:
            instrument.metrics_registry().increment("lease.lost")
            return False
        fresh = self._record(acquired_at=record.get("acquired_at"))
        tmp = self._write_tmp(fresh)
        try:
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        instrument.metrics_registry().increment("lease.renewals")
        return True

    def steal(self) -> bool:
        """Take over a stale lease; False when it is fresh, absent, or a
        concurrent stealer won the race."""
        record = self.read()
        if record is None and not os.path.exists(self.path):
            return False
        if record is not None and not self.is_stale(record):
            return False
        # exactly one concurrent stealer's rename of the stale lease
        # succeeds; the winner then acquires a fresh lease of its own
        grave = f"{self.path}.stale.{self.owner.replace(os.sep, '_')}"
        try:
            os.rename(self.path, grave)
        except OSError:
            return False
        try:
            os.unlink(grave)
        except OSError:
            pass
        if not self.acquire():
            return False
        instrument.metrics_registry().increment("lease.steals")
        return True

    def release(self) -> bool:
        """Drop the lease if we still own it; False otherwise."""
        if not self.held():
            return False
        try:
            os.unlink(self.path)
        except OSError:
            return False
        return True

    def __repr__(self):
        return (
            f"LeaseFile({self.path!r}, owner={self.owner!r}, "
            f"ttl={self.ttl})"
        )
