"""Core framework: datasets, estimator protocol, metrics, validation,
parallel execution, and instrumentation."""

from .base import (
    ClassifierMixin,
    ClusterMixin,
    Estimator,
    ParamsAPI,
    RegressorMixin,
    TransformerMixin,
    clone,
)
from .dataset import Dataset
from .exceptions import (
    ConvergenceWarning,
    DataShapeError,
    NotFittedError,
    ReproError,
    WorkerError,
)
from .instrument import EventLog, Span, recording
from .parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from .pipeline import Pipeline
from .preprocessing import (
    MinMaxScaler,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)
from .rng import ensure_rng, spawn_rng
from .validation import (
    ComplexityCurve,
    GridSearchCV,
    KFold,
    LearningCurve,
    ParameterGrid,
    StratifiedKFold,
    complexity_curve,
    cross_val_score,
    cross_validate,
    grid_search,
    learning_curve,
    train_test_split,
)

__all__ = [
    "ClassifierMixin",
    "ClusterMixin",
    "ComplexityCurve",
    "ConvergenceWarning",
    "DataShapeError",
    "Dataset",
    "Estimator",
    "EventLog",
    "ExecutionBackend",
    "GridSearchCV",
    "KFold",
    "LearningCurve",
    "MinMaxScaler",
    "NotFittedError",
    "ParameterGrid",
    "ParamsAPI",
    "Pipeline",
    "ProcessBackend",
    "RegressorMixin",
    "ReproError",
    "RobustScaler",
    "SerialBackend",
    "SimpleImputer",
    "Span",
    "StandardScaler",
    "StratifiedKFold",
    "ThreadBackend",
    "TransformerMixin",
    "WorkerError",
    "available_backends",
    "clone",
    "complexity_curve",
    "cross_val_score",
    "cross_validate",
    "ensure_rng",
    "get_backend",
    "grid_search",
    "learning_curve",
    "recording",
    "spawn_rng",
    "train_test_split",
]
