"""Core framework: datasets, estimator protocol, metrics, validation."""

from .base import (
    ClassifierMixin,
    ClusterMixin,
    Estimator,
    RegressorMixin,
    TransformerMixin,
    clone,
)
from .dataset import Dataset
from .exceptions import (
    ConvergenceWarning,
    DataShapeError,
    NotFittedError,
    ReproError,
)
from .pipeline import Pipeline
from .preprocessing import (
    MinMaxScaler,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)
from .rng import ensure_rng, spawn_rng
from .validation import (
    ComplexityCurve,
    KFold,
    LearningCurve,
    StratifiedKFold,
    complexity_curve,
    cross_val_score,
    grid_search,
    learning_curve,
    train_test_split,
)

__all__ = [
    "ClassifierMixin",
    "ClusterMixin",
    "ComplexityCurve",
    "ConvergenceWarning",
    "DataShapeError",
    "Dataset",
    "Estimator",
    "KFold",
    "LearningCurve",
    "MinMaxScaler",
    "NotFittedError",
    "Pipeline",
    "RegressorMixin",
    "ReproError",
    "RobustScaler",
    "SimpleImputer",
    "StandardScaler",
    "StratifiedKFold",
    "TransformerMixin",
    "clone",
    "complexity_curve",
    "cross_val_score",
    "ensure_rng",
    "grid_search",
    "learning_curve",
    "spawn_rng",
    "train_test_split",
]
