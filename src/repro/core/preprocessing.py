"""Feature scaling and cleaning transforms.

Parametric test data and EDA features arrive on wildly different scales
(currents in nA next to frequencies in GHz); distance- and kernel-based
learners need comparable scales, so scalers are the first stage of nearly
every flow in this library.
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, TransformerMixin, as_2d_array, check_fitted


class StandardScaler(Estimator, TransformerMixin):
    """Scale features to zero mean and unit variance.

    Constant features are left centered but not divided (their scale is
    set to 1) so the transform never produces NaNs.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, ["mean_", "scale_"])
        X = as_2d_array(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, ["mean_", "scale_"])
        X = as_2d_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(Estimator, TransformerMixin):
    """Scale features into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_min: float = 0.0, feature_max: float = 1.0):
        if feature_max <= feature_min:
            raise ValueError("feature_max must exceed feature_min")
        self.feature_min = feature_min
        self.feature_max = feature_max

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = as_2d_array(X)
        self.data_min_ = X.min(axis=0)
        span = X.max(axis=0) - self.data_min_
        span[span == 0.0] = 1.0
        self.data_range_ = span
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, ["data_min_", "data_range_"])
        X = as_2d_array(X)
        unit = (X - self.data_min_) / self.data_range_
        return unit * (self.feature_max - self.feature_min) + self.feature_min

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, ["data_min_", "data_range_"])
        X = as_2d_array(X)
        unit = (X - self.feature_min) / (self.feature_max - self.feature_min)
        return unit * self.data_range_ + self.data_min_


class RobustScaler(Estimator, TransformerMixin):
    """Scale by median and inter-quartile range.

    Preferred for test-floor data where outliers (the very parts we want
    to find) would distort mean/std estimates.
    """

    def __init__(self, quantile_low: float = 25.0, quantile_high: float = 75.0):
        if not 0.0 <= quantile_low < quantile_high <= 100.0:
            raise ValueError("quantiles must satisfy 0 <= low < high <= 100")
        self.quantile_low = quantile_low
        self.quantile_high = quantile_high

    def fit(self, X, y=None) -> "RobustScaler":
        X = as_2d_array(X)
        self.center_ = np.median(X, axis=0)
        low = np.percentile(X, self.quantile_low, axis=0)
        high = np.percentile(X, self.quantile_high, axis=0)
        iqr = high - low
        iqr[iqr == 0.0] = 1.0
        self.scale_ = iqr
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, ["center_", "scale_"])
        X = as_2d_array(X)
        return (X - self.center_) / self.scale_


class SimpleImputer(Estimator, TransformerMixin):
    """Replace NaNs with a per-feature statistic (mean/median/constant)."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "constant"):
            raise ValueError("strategy must be 'mean', 'median', or 'constant'")
        self.strategy = strategy
        self.fill_value = fill_value

    @staticmethod
    def _validate(X) -> np.ndarray:
        """NaN is data here (it marks a missing value), but everything
        else about the array must still be sound."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("X has no samples")
        if X.shape[1] == 0:
            raise ValueError("X has no features")
        if np.isinf(X).any():
            raise ValueError(
                "X contains infinite values; SimpleImputer only fills NaN"
            )
        return X

    def fit(self, X, y=None) -> "SimpleImputer":
        X = self._validate(X)
        import warnings

        if self.strategy == "constant":
            fill = np.full(X.shape[1], self.fill_value)
        else:
            with warnings.catch_warnings():
                # all-NaN columns are handled below via fill_value
                warnings.simplefilter("ignore", category=RuntimeWarning)
                if self.strategy == "mean":
                    fill = np.nanmean(X, axis=0)
                else:
                    fill = np.nanmedian(X, axis=0)
        fill = np.where(np.isnan(fill), self.fill_value, fill)
        self.fill_ = fill
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "fill_")
        X = np.array(self._validate(X), copy=True)
        mask = np.isnan(X)
        if mask.any():
            X[mask] = np.broadcast_to(self.fill_, X.shape)[mask]
        return X
