"""Pluggable execution backends for embarrassingly parallel work.

Model selection — grid search, cross-validation, complexity and
learning curves — reduces to running many independent ``fit``/``score``
tasks.  This module supplies the runtime those utilities fan tasks onto:

- :class:`SerialBackend` — in-process loop, zero overhead, the default;
- :class:`ThreadBackend` — a thread pool; effective whenever the work
  releases the GIL (NumPy linear algebra, the Gram engine's vectorized
  block paths);
- :class:`ProcessBackend` — a process pool for pure-Python hot loops
  (SMO, tree induction); task functions and payloads must be picklable.

All backends share one contract, built on :mod:`concurrent.futures`
only (no ``joblib``):

- **Deterministic ordering.**  ``map`` returns results in submission
  order no matter which worker finished first, so downstream
  aggregation (best-candidate selection, curve assembly) is identical
  across backends.
- **Per-task seeding.**  ``map(..., seed=s)`` derives one independent
  child seed per task from a single :class:`numpy.random.SeedSequence`,
  so stochastic tasks reproduce bit-for-bit on every backend and any
  worker count.
- **Retry on worker failure.**  A task that raises (or whose worker
  process dies) is resubmitted up to ``retries`` times; persistent
  failures raise :class:`~repro.core.exceptions.WorkerError` with the
  original exception chained.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

import numpy as np

from .exceptions import WorkerError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "get_backend",
    "spawn_seeds",
]


def spawn_seeds(seed, n: int) -> List[int]:
    """Derive *n* independent per-task seeds from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so sibling seeds
    are statistically independent and the derivation depends only on
    ``(seed, n)`` — never on worker scheduling.
    """
    root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in root.spawn(n)]


def _call_task(fn: Callable, payload, seed: Optional[int]):
    """Top-level task trampoline (picklable for the process backend)."""
    if seed is None:
        return fn(payload)
    return fn(payload, seed=seed)


class ExecutionBackend:
    """Base class: retry loop, ordering, and the ``map`` contract.

    Parameters
    ----------
    n_workers:
        Worker count; ``None`` picks a backend-specific default and
        ``-1`` uses ``os.cpu_count()``.  Ignored by the serial backend.
    retries:
        How many times a failed task is resubmitted before
        :class:`WorkerError` is raised.
    """

    name = "base"

    def __init__(self, n_workers: Optional[int] = None, retries: int = 1):
        if n_workers is not None and n_workers != -1 and n_workers < 1:
            raise ValueError("n_workers must be None, -1, or >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.n_workers = n_workers
        self.retries = int(retries)

    # ------------------------------------------------------------------
    def resolved_workers(self) -> int:
        if self.n_workers in (None, -1):
            return max(os.cpu_count() or 1, 1)
        return int(self.n_workers)

    def map(self, fn: Callable, payloads: Sequence, seed=None) -> list:
        """Run ``fn(payload)`` for every payload; results in order.

        When *seed* is given, each task instead receives
        ``fn(payload, seed=task_seed)`` with per-task seeds from
        :func:`spawn_seeds`.
        """
        payloads = list(payloads)
        n = len(payloads)
        if n == 0:
            return []
        seeds: List[Optional[int]] = (
            [None] * n if seed is None else spawn_seeds(seed, n)
        )
        results = [None] * n
        pending = list(range(n))
        attempt = 0
        while pending:
            outcomes = self._execute(
                fn, [(i, payloads[i], seeds[i]) for i in pending]
            )
            failed = [(i, err) for i, ok, err in outcomes if not ok]
            for i, ok, value in outcomes:
                if ok:
                    results[i] = value
            if not failed:
                break
            if attempt >= self.retries:
                index, error = failed[0]
                raise WorkerError(
                    f"task {index} failed on the {self.name} backend "
                    f"after {attempt + 1} attempt(s): {error!r}",
                    task_index=index,
                ) from error
            attempt += 1
            pending = sorted(i for i, _ in failed)
        return results

    # ------------------------------------------------------------------
    def _execute(self, fn, calls):
        """Run ``calls = [(index, payload, seed), ...]`` once each and
        return ``[(index, ok, result_or_exception), ...]``."""
        raise NotImplementedError

    def __repr__(self):
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"retries={self.retries})"
        )


class SerialBackend(ExecutionBackend):
    """Run tasks in the calling thread, one after another."""

    name = "serial"

    def resolved_workers(self) -> int:
        return 1

    def _execute(self, fn, calls):
        outcomes = []
        for index, payload, seed in calls:
            try:
                outcomes.append((index, True, _call_task(fn, payload, seed)))
            except Exception as error:  # noqa: BLE001 — retried by map()
                outcomes.append((index, False, error))
        return outcomes


class ThreadBackend(ExecutionBackend):
    """Run tasks on a thread pool (shared memory, GIL-bound Python)."""

    name = "thread"

    def _execute(self, fn, calls):
        outcomes = []
        with ThreadPoolExecutor(max_workers=self.resolved_workers()) as pool:
            futures = [
                (index, pool.submit(_call_task, fn, payload, seed))
                for index, payload, seed in calls
            ]
            for index, future in futures:
                try:
                    outcomes.append((index, True, future.result()))
                except Exception as error:  # noqa: BLE001
                    outcomes.append((index, False, error))
        return outcomes


class ProcessBackend(ExecutionBackend):
    """Run tasks on a process pool.

    Task functions, payloads, and results must be picklable.  A worker
    process dying (``BrokenProcessPool``) marks every task still in
    flight as failed; the retry pass runs them on a fresh pool.
    """

    name = "process"

    def resolved_workers(self) -> int:
        if self.n_workers is None:
            return max(min(os.cpu_count() or 1, 4), 2)
        return super().resolved_workers()

    def _execute(self, fn, calls):
        outcomes = []
        try:
            with ProcessPoolExecutor(
                max_workers=self.resolved_workers()
            ) as pool:
                futures = [
                    (index, pool.submit(_call_task, fn, payload, seed))
                    for index, payload, seed in calls
                ]
                for index, future in futures:
                    try:
                        outcomes.append((index, True, future.result()))
                    except Exception as error:  # noqa: BLE001
                        outcomes.append((index, False, error))
        except BrokenProcessPool as error:
            done = {index for index, _, _ in outcomes}
            outcomes.extend(
                (index, False, error)
                for index, _, _ in calls
                if index not in done
            )
        return outcomes


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "threads": ThreadBackend,
    "process": ProcessBackend,
    "processes": ProcessBackend,
}


def available_backends() -> List[str]:
    """Canonical backend names accepted by :func:`get_backend`."""
    return ["serial", "thread", "process"]


def get_backend(spec=None, n_workers: Optional[int] = None,
                retries: int = 1) -> ExecutionBackend:
    """Resolve a backend specification.

    ``None`` means serial; a string picks a registered backend; an
    :class:`ExecutionBackend` instance passes through unchanged (its own
    worker/retry configuration wins).
    """
    if spec is None:
        return SerialBackend(retries=retries)
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        backend_cls = _BACKENDS.get(spec.lower())
        if backend_cls is None:
            raise ValueError(
                f"unknown backend {spec!r}; available: "
                f"{available_backends()}"
            )
        return backend_cls(n_workers=n_workers, retries=retries)
    raise TypeError(
        f"backend must be None, a name, or an ExecutionBackend; "
        f"got {type(spec).__name__}"
    )
