"""Pluggable execution backends for embarrassingly parallel work.

Model selection — grid search, cross-validation, complexity and
learning curves — reduces to running many independent ``fit``/``score``
tasks.  This module supplies the runtime those utilities fan tasks onto:

- :class:`SerialBackend` — in-process loop, zero overhead, the default;
- :class:`ThreadBackend` — a thread pool; effective whenever the work
  releases the GIL (NumPy linear algebra, the Gram engine's vectorized
  block paths);
- :class:`ProcessBackend` — a process pool for pure-Python hot loops
  (SMO, tree induction); task functions and payloads must be picklable.

All backends share one contract, built on :mod:`concurrent.futures`
only (no ``joblib``):

- **Deterministic ordering.**  ``map`` returns results in submission
  order no matter which worker finished first, so downstream
  aggregation (best-candidate selection, curve assembly) is identical
  across backends.
- **Per-task seeding.**  ``map(..., seed=s)`` derives one independent
  child seed per task from a single :class:`numpy.random.SeedSequence`.
  Seeds are assigned by task *index*, so a retried task reruns with its
  original seed and stochastic campaigns reproduce bit-for-bit on every
  backend, any worker count, and any failure pattern.
- **Policy-driven resilience.**  A failing task is retried under a
  :class:`~repro.core.resilience.RetryPolicy` (exponential backoff,
  deterministic seeded jitter, retryable-exception filter); the legacy
  ``retries=k`` counter maps onto an immediate-resubmit policy.
  Persistent failures raise :class:`~repro.core.exceptions.WorkerError`
  carrying the worker's formatted traceback and the attempt count.
- **Timeouts and deadlines.**  A per-task ``timeout`` abandons hung
  workers (threads are orphaned, processes terminated) and surfaces
  :class:`~repro.core.exceptions.TaskTimeoutError` with the task index;
  a run-level :class:`~repro.core.resilience.Deadline` bounds the whole
  ``map`` (or a whole campaign, when one instance is shared) and raises
  :class:`~repro.core.exceptions.DeadlineExceededError` on expiry.
  The serial backend cannot preempt a running task, so per-task
  timeouts are not enforced there; deadlines are checked between tasks.

Retry sleeps and abandoned timeouts are emitted as ``retry`` /
``timeout`` spans into the ambient
:class:`~repro.core.instrument.EventLog` (when one is recording), so a
flaky campaign shows where its wall time actually went.

**Worker span propagation.**  When the driver has an ambient log
recording, every task runs under a fresh worker-local ``EventLog`` and
the trampoline ships the task's spans back alongside its result (or
stapled onto its exception).  ``map`` merges them into the ambient log
in deterministic task order, tagged with ``task_index`` / ``backend``
/ ``pid`` / ``attempt`` — so spans emitted inside process (or thread)
workers are no longer silently dropped, and span accounting is
identical across all three backends.  Without an ambient log the
trampoline takes its original zero-overhead path.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

import numpy as np

from . import instrument
from .exceptions import DeadlineExceededError, TaskTimeoutError, WorkerError
from .instrument import EventLog
from .resilience import Deadline, RetryPolicy

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "spawn_seeds",
]


def spawn_seeds(seed, n: int) -> List[int]:
    """Derive *n* independent per-task seeds from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so sibling seeds
    are statistically independent and the derivation depends only on
    ``(seed, n)`` — never on worker scheduling.
    """
    root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in root.spawn(n)]


class _TaskOutcome:
    """A task result plus the spans its worker-local log captured.

    Picklable: crosses the process boundary with the result, so the
    driver can merge worker telemetry into the ambient log.
    """

    def __init__(self, value, spans, pid):
        self.value = value
        self.spans = spans
        self.pid = pid


def _call_task(fn: Callable, payload, seed: Optional[int],
               collect: bool = False):
    """Top-level task trampoline (picklable for the process backend).

    Failures get the formatted traceback stapled onto the exception
    (``_repro_traceback``); exception ``__dict__`` survives pickling,
    so the text crosses the process boundary even though live traceback
    objects cannot.

    With ``collect=True`` (the driver has an ambient log recording) the
    task runs under a fresh worker-local :class:`EventLog`; its spans
    travel back inside a :class:`_TaskOutcome` — or, on failure,
    stapled onto the exception as ``_repro_spans`` — so no telemetry is
    lost on any backend.
    """
    if not collect:
        try:
            if seed is None:
                return fn(payload)
            return fn(payload, seed=seed)
        except Exception as error:  # noqa: BLE001 — re-raised for map()
            try:
                error._repro_traceback = traceback.format_exc()
            except Exception:  # noqa: BLE001 — immutable/slotted exceptions
                pass
            raise
    local = EventLog()
    try:
        with instrument.recording(local):
            if seed is None:
                result = fn(payload)
            else:
                result = fn(payload, seed=seed)
        return _TaskOutcome(result, local.spans(), os.getpid())
    except Exception as error:  # noqa: BLE001 — re-raised for map()
        try:
            error._repro_traceback = traceback.format_exc()
            error._repro_spans = local.spans()
            error._repro_pid = os.getpid()
        except Exception:  # noqa: BLE001 — immutable/slotted exceptions
            pass
        raise


def _format_traceback(error: BaseException) -> str:
    """The worker-side traceback of *error*, best effort."""
    remote = getattr(error, "_repro_traceback", None)
    if remote:
        return remote
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )


class ExecutionBackend:
    """Base class: retry loop, ordering, and the ``map`` contract.

    Parameters
    ----------
    n_workers:
        Worker count; ``None`` picks a backend-specific default and
        ``-1`` uses ``os.cpu_count()``.  Ignored by the serial backend.
    retries:
        How many times a failed task is resubmitted before
        :class:`WorkerError` is raised.  Shorthand for
        ``retry=RetryPolicy.from_retries(retries)`` (immediate
        resubmission, no backoff).
    retry:
        A :class:`~repro.core.resilience.RetryPolicy`; overrides
        *retries* when given.
    timeout:
        Per-task wall-clock budget in seconds; a task exceeding it is
        abandoned and raises :class:`TaskTimeoutError` (not enforced on
        the serial backend, which cannot preempt).
    deadline:
        Run-level budget: seconds (a fresh budget per ``map`` call) or
        a shared :class:`~repro.core.resilience.Deadline` instance.
    """

    name = "base"

    def __init__(self, n_workers: Optional[int] = None, retries: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None, deadline=None):
        if n_workers is not None and n_workers != -1 and n_workers < 1:
            raise ValueError("n_workers must be None, -1, or >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.n_workers = n_workers
        self.retries = int(retries)
        self.retry = retry
        self.timeout = None if timeout is None else float(timeout)
        self.deadline = deadline

    # ------------------------------------------------------------------
    def resolved_workers(self) -> int:
        if self.n_workers in (None, -1):
            return max(os.cpu_count() or 1, 1)
        return int(self.n_workers)

    def _policy(self) -> RetryPolicy:
        if self.retry is not None:
            return self.retry
        return RetryPolicy.from_retries(self.retries)

    def map(self, fn: Callable, payloads: Sequence, seed=None) -> list:
        """Run ``fn(payload)`` for every payload; results in order.

        When *seed* is given, each task instead receives
        ``fn(payload, seed=task_seed)`` with per-task seeds from
        :func:`spawn_seeds`, assigned by index (stable under retries).
        """
        payloads = list(payloads)
        n = len(payloads)
        if n == 0:
            return []
        seeds: List[Optional[int]] = (
            [None] * n if seed is None else spawn_seeds(seed, n)
        )
        policy = self._policy()
        deadline = Deadline.resolve(self.deadline)
        log = instrument.current_log()
        collect = log is not None
        metrics = instrument.metrics_registry()
        metrics.increment("parallel.tasks", n)
        metrics.increment(f"parallel.{self.name}.tasks", n)
        results = [None] * n
        pending = list(range(n))
        attempts = [0] * n
        merged: List = []
        try:
            while pending:
                if deadline is not None and deadline.expired():
                    raise DeadlineExceededError(
                        f"deadline of {deadline.seconds}s expired with "
                        f"{len(pending)} task(s) pending on the {self.name} "
                        f"backend",
                        pending=pending,
                    )
                for i in pending:
                    attempts[i] += 1
                outcomes = self._execute(
                    fn,
                    [(i, payloads[i], seeds[i]) for i in pending],
                    timeout=self.timeout,
                    deadline=deadline,
                    collect=collect,
                )
                failed = []
                # deterministic merge order: spans are gathered batch by
                # batch in ascending task index, not completion order
                for i, ok, value in sorted(outcomes, key=lambda o: o[0]):
                    if ok:
                        if isinstance(value, _TaskOutcome):
                            merged.extend(self._tag_spans(
                                value.spans, i, attempts[i], value.pid,
                            ))
                            results[i] = value.value
                        else:
                            results[i] = value
                    else:
                        merged.extend(self._tag_spans(
                            getattr(value, "_repro_spans", None) or (),
                            i, attempts[i],
                            getattr(value, "_repro_pid", None),
                        ))
                        failed.append((i, value))
                if not failed:
                    break
                metrics.increment("parallel.retries", len(failed))
                self._raise_if_exhausted(policy, failed, attempts, deadline)
                # every failure retryable: back off once (the longest of
                # the per-task deterministic delays) and resubmit the batch
                delay = max(
                    policy.delay(i, attempts[i]) for i, _ in failed
                )
                for i, error in failed:
                    instrument.emit(
                        "retry", delay, label=f"task[{i}]",
                        task=i, attempt=attempts[i], backend=self.name,
                        error=repr(error),
                    )
                if delay > 0.0:
                    time.sleep(delay)
                pending = sorted(i for i, _ in failed)
        finally:
            # worker spans survive even when the run ultimately raises:
            # a failed campaign still accounts for the work it burned
            if merged and log is not None:
                log.extend(merged)
        return results

    def _tag_spans(self, spans, index: int, attempt: int, pid) -> list:
        """Stamp worker-shipped spans with their provenance."""
        for record in spans:
            record.meta.setdefault("task_index", index)
            record.meta.setdefault("backend", self.name)
            record.meta.setdefault("attempt", attempt)
            if pid is not None:
                record.meta.setdefault("pid", pid)
        return list(spans)

    def _raise_if_exhausted(self, policy, failed, attempts,
                            deadline) -> None:
        """Raise for the most meaningful non-retryable failure, if any.

        Deadline expiry always wins; a genuine per-task timeout beats
        siblings that were merely abandoned with it; everything else
        surfaces in submission order.
        """
        for i, error in failed:
            if isinstance(error, DeadlineExceededError):
                raise error
        for i, error in failed:
            if isinstance(error, TaskTimeoutError) and not error.abandoned:
                instrument.metrics_registry().increment("parallel.timeouts")
                instrument.emit(
                    "timeout", error.timeout or 0.0, label=f"task[{i}]",
                    task=i, backend=self.name, attempt=attempts[i],
                )
        ordered = sorted(
            failed,
            key=lambda item: (
                not (isinstance(item[1], TaskTimeoutError)
                     and not item[1].abandoned),
                item[0],
            ),
        )
        for index, error in ordered:
            if policy.should_retry(error, attempts[index]):
                continue
            if isinstance(error, TaskTimeoutError):
                error.attempts = attempts[index]
                raise error
            raise WorkerError(
                f"task {index} failed on the {self.name} backend "
                f"after {attempts[index]} attempt(s): {error!r}",
                task_index=index,
                attempts=attempts[index],
                traceback_str=_format_traceback(error),
            ) from error

    # ------------------------------------------------------------------
    def _execute(self, fn, calls, timeout=None, deadline=None,
                 collect=False):
        """Run ``calls = [(index, payload, seed), ...]`` once each and
        return ``[(index, ok, result_or_exception), ...]``.

        With ``collect=True`` successful results arrive wrapped in
        :class:`_TaskOutcome` carrying the worker-local spans.
        """
        raise NotImplementedError

    def __repr__(self):
        extras = ""
        if self.retry is not None:
            extras += f", retry={self.retry!r}"
        if self.timeout is not None:
            extras += f", timeout={self.timeout}"
        if self.deadline is not None:
            extras += f", deadline={self.deadline!r}"
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"retries={self.retries}{extras})"
        )


class SerialBackend(ExecutionBackend):
    """Run tasks in the calling thread, one after another.

    No preemption is possible in-process, so per-task ``timeout`` is
    not enforced here; a run-level deadline is checked between tasks.
    """

    name = "serial"

    def resolved_workers(self) -> int:
        return 1

    def _execute(self, fn, calls, timeout=None, deadline=None,
                 collect=False):
        outcomes = []
        for index, payload, seed in calls:
            if deadline is not None and deadline.expired():
                outcomes.append((
                    index,
                    False,
                    DeadlineExceededError(
                        f"deadline of {deadline.seconds}s expired before "
                        f"task {index} could run",
                        pending=[index],
                    ),
                ))
                continue
            try:
                outcomes.append(
                    (index, True, _call_task(fn, payload, seed, collect))
                )
            except Exception as error:  # noqa: BLE001 — retried by map()
                outcomes.append((index, False, error))
        return outcomes


class _PoolBackend(ExecutionBackend):
    """Shared future-collection loop for the thread/process backends."""

    def _make_pool(self):
        raise NotImplementedError

    def _shutdown(self, pool, abandon: bool) -> None:
        if abandon:
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    def _execute(self, fn, calls, timeout=None, deadline=None,
                 collect=False):
        pool = self._make_pool()
        abandon = False
        outcomes = []
        try:
            futures = [
                (index, pool.submit(_call_task, fn, payload, seed, collect))
                for index, payload, seed in calls
            ]
            for position, (index, future) in enumerate(futures):
                budget, bound = None, None
                if timeout is not None:
                    budget, bound = float(timeout), "timeout"
                if deadline is not None:
                    remaining = deadline.remaining()
                    if budget is None or remaining < budget:
                        budget, bound = remaining, "deadline"
                try:
                    outcomes.append(
                        (index, True, future.result(timeout=budget))
                    )
                except FuturesTimeoutError:
                    abandon = True
                    if bound == "deadline":
                        error: Exception = DeadlineExceededError(
                            f"deadline of {deadline.seconds}s expired "
                            f"while waiting on task {index}",
                            pending=[i for i, _ in futures[position:]],
                        )
                    else:
                        error = TaskTimeoutError(
                            f"task {index} on the {self.name} backend "
                            f"exceeded its {timeout}s timeout and was "
                            f"abandoned",
                            task_index=index,
                            timeout=timeout,
                        )
                    outcomes.append((index, False, error))
                    outcomes.extend(
                        self._drain_after_abandon(
                            futures[position + 1:], timeout
                        )
                    )
                    break
                except CancelledError as error:
                    outcomes.append((index, False, error))
                except Exception as error:  # noqa: BLE001
                    outcomes.append((index, False, error))
        finally:
            self._shutdown(pool, abandon)
        return outcomes

    @staticmethod
    def _drain_after_abandon(remaining, timeout):
        """Salvage siblings that already finished; mark the rest
        abandoned (retryable only under ``retry_timeouts``)."""
        drained = []
        for index, future in remaining:
            if future.done() and not future.cancelled():
                try:
                    drained.append((index, True, future.result(timeout=0)))
                except Exception as error:  # noqa: BLE001
                    drained.append((index, False, error))
            else:
                future.cancel()
                drained.append((
                    index,
                    False,
                    TaskTimeoutError(
                        f"task {index} abandoned after a sibling task "
                        f"timed out",
                        task_index=index,
                        timeout=timeout,
                        abandoned=True,
                    ),
                ))
        return drained


class ThreadBackend(_PoolBackend):
    """Run tasks on a thread pool (shared memory, GIL-bound Python).

    A timed-out task's thread cannot be killed; it is orphaned (the
    pool is shut down without waiting) and its eventual result is
    discarded.
    """

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.resolved_workers())


class ProcessBackend(_PoolBackend):
    """Run tasks on a process pool.

    Task functions, payloads, and results must be picklable.  A worker
    process dying (``BrokenProcessPool``) marks every task still in
    flight as failed; the retry pass runs them on a fresh pool.  A
    timed-out task's worker process is terminated outright.
    """

    name = "process"

    def resolved_workers(self) -> int:
        if self.n_workers is None:
            return max(min(os.cpu_count() or 1, 4), 2)
        return super().resolved_workers()

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.resolved_workers())

    def _shutdown(self, pool, abandon: bool) -> None:
        if abandon:
            # snapshot the worker handles first: shutdown() clears the
            # pool's process table, and a hung worker never drains the
            # call queue on its own
            workers = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in workers:
                process.terminate()
        else:
            pool.shutdown(wait=True)

    def _execute(self, fn, calls, timeout=None, deadline=None,
                 collect=False):
        try:
            return super()._execute(
                fn, calls, timeout=timeout, deadline=deadline,
                collect=collect,
            )
        except BrokenProcessPool as error:
            # pool management itself broke before all futures resolved
            return [(index, False, error) for index, _, _ in calls]


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "threads": ThreadBackend,
    "process": ProcessBackend,
    "processes": ProcessBackend,
}

# specs resolved by importing a module that registers them on import —
# keeps heavyweight backends (the sharded file-protocol one) out of the
# import path of everything that only ever runs serial
_LAZY_BACKENDS = {
    "sharded": "repro.core.shard",
    "shards": "repro.core.shard",
}


def register_backend(name: str, backend_cls, aliases=()) -> None:
    """Register an :class:`ExecutionBackend` subclass under *name*.

    Extension point for backends living outside this module (e.g. the
    sharded multi-process backend in :mod:`repro.core.shard`); after
    registration ``get_backend(name)`` and every ``backend=`` seam that
    funnels through it resolve the new class.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("backend name must be a non-empty string")
    if not (isinstance(backend_cls, type)
            and issubclass(backend_cls, ExecutionBackend)):
        raise TypeError("backend_cls must subclass ExecutionBackend")
    for key in (name, *aliases):
        _BACKENDS[key.lower()] = backend_cls


def available_backends() -> List[str]:
    """Canonical backend names accepted by :func:`get_backend`."""
    return ["serial", "thread", "process", "sharded"]


def get_backend(spec=None, n_workers: Optional[int] = None,
                retries: int = 1, retry: Optional[RetryPolicy] = None,
                timeout: Optional[float] = None,
                deadline=None) -> ExecutionBackend:
    """Resolve a backend specification.

    ``None`` means serial; a string picks a registered backend; an
    :class:`ExecutionBackend` instance passes through unchanged (its own
    worker/retry/timeout configuration wins).
    """
    if spec is None:
        return SerialBackend(
            retries=retries, retry=retry, timeout=timeout, deadline=deadline
        )
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        backend_cls = _BACKENDS.get(spec.lower())
        if backend_cls is None and spec.lower() in _LAZY_BACKENDS:
            import importlib

            importlib.import_module(_LAZY_BACKENDS[spec.lower()])
            backend_cls = _BACKENDS.get(spec.lower())
        if backend_cls is None:
            raise ValueError(
                f"unknown backend {spec!r}; available: "
                f"{available_backends()}"
            )
        return backend_cls(
            n_workers=n_workers, retries=retries, retry=retry,
            timeout=timeout, deadline=deadline,
        )
    raise TypeError(
        f"backend must be None, a name, or an ExecutionBackend; "
        f"got {type(spec).__name__}"
    )
