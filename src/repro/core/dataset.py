"""The dataset abstraction of Fig. 1 of the paper.

A dataset as seen by a learning algorithm is a sample-by-feature matrix
``X`` with optional labels ``y`` (supervised), a label matrix ``Y``
(multivariate regression, PLS/CCA), or nothing (unsupervised).  The
:class:`Dataset` class carries names alongside the numbers so that mined
results (rules, selected features) can be reported in domain terms — a
usage-model concern the paper calls out in Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .base import as_2d_array
from .exceptions import DataShapeError
from .rng import ensure_rng


@dataclass
class Dataset:
    """A named sample-by-feature dataset.

    Parameters
    ----------
    X:
        Sample matrix of shape ``(n_samples, n_features)``.
    y:
        Optional label vector (classification or regression targets).
    feature_names:
        Optional names for the columns of ``X``; auto-generated as
        ``f0..f{n-1}`` when omitted (matching the paper's notation).
    sample_names:
        Optional names for the rows of ``X``.
    """

    X: np.ndarray
    y: Optional[np.ndarray] = None
    feature_names: List[str] = field(default_factory=list)
    sample_names: List[str] = field(default_factory=list)

    def __post_init__(self):
        self.X = as_2d_array(self.X)
        if self.y is not None:
            self.y = np.asarray(self.y)
            if len(self.y) != len(self.X):
                raise DataShapeError(
                    f"y has {len(self.y)} entries for {len(self.X)} samples"
                )
        if not self.feature_names:
            self.feature_names = [f"f{i}" for i in range(self.X.shape[1])]
        elif len(self.feature_names) != self.X.shape[1]:
            raise DataShapeError(
                f"{len(self.feature_names)} feature names for "
                f"{self.X.shape[1]} features"
            )
        if self.sample_names and len(self.sample_names) != len(self.X):
            raise DataShapeError(
                f"{len(self.sample_names)} sample names for "
                f"{len(self.X)} samples"
            )

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of rows (samples) in ``X``."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of columns (features) in ``X``."""
        return self.X.shape[1]

    @property
    def is_supervised(self) -> bool:
        """Whether the dataset carries labels."""
        return self.y is not None

    # ------------------------------------------------------------------
    def feature(self, name: str) -> np.ndarray:
        """Return the column named *name*."""
        try:
            idx = self.feature_names.index(name)
        except ValueError:
            raise KeyError(f"no feature named {name!r}") from None
        return self.X[:, idx]

    def select_features(self, names: Sequence[str]) -> "Dataset":
        """Return a new dataset restricted to the named features."""
        indices = [self.feature_names.index(n) for n in names]
        return Dataset(
            self.X[:, indices],
            None if self.y is None else self.y.copy(),
            list(names),
            list(self.sample_names),
        )

    def subset(self, indices) -> "Dataset":
        """Return a new dataset restricted to the given sample indices."""
        indices = np.asarray(indices)
        return Dataset(
            self.X[indices],
            None if self.y is None else self.y[indices],
            list(self.feature_names),
            [self.sample_names[i] for i in indices] if self.sample_names else [],
        )

    def shuffled(self, random_state=None) -> "Dataset":
        """Return a copy with samples in random order."""
        rng = ensure_rng(random_state)
        order = rng.permutation(self.n_samples)
        return self.subset(order)

    def split(self, test_fraction: float = 0.25, random_state=None):
        """Split into ``(train, test)`` datasets by random sampling."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = ensure_rng(random_state)
        order = rng.permutation(self.n_samples)
        n_test = max(1, int(round(self.n_samples * test_fraction)))
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    def class_counts(self) -> dict:
        """Return ``{label: count}`` for a supervised dataset."""
        if self.y is None:
            raise ValueError("dataset is unsupervised; no labels to count")
        labels, counts = np.unique(self.y, return_counts=True)
        return {label: int(count) for label, count in zip(labels, counts)}

    def imbalance_ratio(self) -> float:
        """Majority/minority class count ratio (Section 2.4 concern)."""
        counts = sorted(self.class_counts().values())
        if counts[0] == 0:
            return float("inf")
        return counts[-1] / counts[0]

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self):
        kind = "supervised" if self.is_supervised else "unsupervised"
        return (
            f"Dataset({self.n_samples} samples x {self.n_features} "
            f"features, {kind})"
        )
