"""Estimator base classes and the parameter API.

All learning machines in the library follow the same small protocol:

- construction takes only hyper-parameters and stores them verbatim;
- ``fit(X, y)`` learns state and stores it in attributes ending in ``_``;
- ``predict``/``transform`` consume the fitted state;
- ``get_params``/``set_params`` expose hyper-parameters so that model
  selection utilities (grid search, cross-validation) can clone and
  reconfigure estimators generically.

Parameters are addressable *through* composite objects with the
``outer__inner`` grammar: ``pipeline.set_params(svc__C=10)`` routes
``C=10`` to the pipeline step named ``svc``, and
``svc.set_params(kernel__gamma=0.5)`` routes ``gamma`` into the SVC's
kernel.  Any parameter value that itself exposes ``get_params`` /
``set_params`` (wrapper estimators, pipelines, kernels) participates,
to arbitrary depth.

This mirrors the separation Fig. 4 of the paper draws between a learning
algorithm and the data access path: the estimator object is the
algorithm; data only flows through ``fit``.
"""

from __future__ import annotations

import copy
import inspect

import numpy as np

from .exceptions import DataShapeError, NotFittedError

# sentinel distinguishing "attribute absent" from "attribute set to a
# falsy value" in check_fitted
_UNSET = object()


class ParamsAPI:
    """Shared hyper-parameter machinery for estimators and kernels.

    Subclasses must store every constructor argument on ``self`` under
    the same name and perform no work (beyond validation/coercion) in
    ``__init__``.
    """

    @classmethod
    def _param_names(cls):
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self"
            and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        ]

    def _nested_targets(self) -> dict:
        """Sub-objects addressable with the ``name__param`` grammar.

        The default exposes every parameter value that itself implements
        ``get_params``; composites (e.g. ``Pipeline``) override to add
        their own naming scheme.
        """
        targets = {}
        for name in self._param_names():
            value = getattr(self, name, None)
            if _has_params(value):
                targets[name] = value
        return targets

    def get_params(self, deep: bool = True) -> dict:
        """Return hyper-parameters as a ``{name: value}`` dict.

        With ``deep=True`` (the default) the dict additionally contains
        one ``target__subparam`` entry for every parameter of every
        nested target, recursively — the exact names ``set_params`` and
        grid-search specifications accept.
        """
        out = {name: getattr(self, name) for name in self._param_names()}
        if deep:
            for prefix, target in self._nested_targets().items():
                out.setdefault(prefix, target)
                for key, value in target.get_params(deep=True).items():
                    out[f"{prefix}__{key}"] = value
        return out

    def _set_simple_param(self, name: str, value) -> None:
        if name not in set(self._param_names()):
            raise ValueError(
                f"{type(self).__name__} has no parameter {name!r}; "
                f"valid parameters are {sorted(self._param_names())}"
            )
        setattr(self, name, value)

    def set_params(self, **params) -> "ParamsAPI":
        """Set hyper-parameters; unknown names raise ``ValueError``.

        Nested parameters use the ``target__param`` grammar and may be
        mixed freely with direct ones; direct assignments are applied
        first, so ``set_params(kernel=k, kernel__gamma=0.1)`` configures
        the *new* kernel.
        """
        if not params:
            return self
        nested: dict = {}
        for name in sorted(params, key=lambda key: "__" in key):
            value = params[name]
            head, delim, tail = name.partition("__")
            if delim:
                nested.setdefault(head, {})[tail] = value
            else:
                self._set_simple_param(name, value)
        if nested:
            targets = self._nested_targets()
            for head, sub in nested.items():
                target = targets.get(head)
                if target is None:
                    raise ValueError(
                        f"{type(self).__name__} has no nested parameter "
                        f"target {head!r}; valid targets are "
                        f"{sorted(targets)}"
                    )
                target.set_params(**sub)
        return self

    def __repr__(self):
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.get_params(deep=False).items()
        )
        return f"{type(self).__name__}({params})"


def _has_params(value) -> bool:
    """True for instances (not classes) exposing the parameter API."""
    return not isinstance(value, type) and hasattr(value, "get_params") \
        and hasattr(value, "set_params")


class Estimator(ParamsAPI):
    """Base class providing the hyper-parameter API for learners."""

    def __eq__(self, other):
        """Structural equality on hyper-parameters (not fitted state).

        Lets clones compare equal to their prototypes, including through
        nested estimators (wrappers) and kernels.  Instances of
        *different* estimator classes — including subclasses — compare
        unequal symmetrically; only non-estimators defer with
        ``NotImplemented``.
        """
        if not isinstance(other, Estimator):
            return NotImplemented
        if type(self) is not type(other):
            return False
        mine = self.get_params(deep=False)
        theirs = other.get_params(deep=False)
        if set(mine) != set(theirs):
            return False
        for key, value in mine.items():
            other_value = theirs[key]
            if isinstance(value, np.ndarray) or isinstance(
                other_value, np.ndarray
            ):
                if not np.array_equal(value, other_value):
                    return False
            elif value != other_value:
                return False
        return True

    # hyper-parameter equality is structural; hashing stays by identity
    __hash__ = object.__hash__


def _clone_value(value):
    """Clone one parameter value: recurse through the parameter API and
    common containers, deep-copy everything else."""
    if _has_params(value):
        return clone(value)
    if isinstance(value, (list, tuple)):
        return type(value)(_clone_value(item) for item in value)
    if isinstance(value, dict):
        return {k: _clone_value(v) for k, v in value.items()}
    return copy.deepcopy(value)


def clone(estimator):
    """Return an unfitted copy of *estimator* with identical parameters.

    Nested estimators, pipelines, and kernels held as parameter values
    are themselves cloned recursively (so no fitted state — and no
    shared mutable hyper-parameter — leaks between prototype and copy).
    """
    params = {
        k: _clone_value(v)
        for k, v in estimator.get_params(deep=False).items()
    }
    return type(estimator)(**params)


def check_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless all *attributes* are set.

    An attribute assigned any value by ``fit`` — including falsy ones
    such as ``0.0``, ``[]``, or ``None`` — counts as present; only a
    genuinely absent attribute marks the estimator unfitted.
    """
    if isinstance(attributes, str):
        attributes = [attributes]
    missing = [
        a for a in attributes if getattr(estimator, a, _UNSET) is _UNSET
    ]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet "
            f"(missing {missing}); call fit() first"
        )


def as_2d_array(X, name: str = "X") -> np.ndarray:
    """Validate and return *X* as a C-contiguous 2-D float array.

    The layout normalisation matters for reproducibility: BLAS picks
    different summation orders for C- and Fortran-ordered operands, so
    without it the same data could yield bitwise-different models
    depending on how the caller happened to lay out memory.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise DataShapeError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise DataShapeError(f"{name} has no samples")
    if X.shape[1] == 0:
        raise DataShapeError(f"{name} has no features")
    if not np.all(np.isfinite(X)):
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(X)


def as_kernel_samples(X, name: str = "X"):
    """Validate kernel-consumer input without forcing vector form.

    Kernel methods accept two sample shapes: numeric vectors (validated
    and normalised exactly like :func:`as_2d_array`) and structured
    samples — strings, token sequences, graphs — that only the kernel
    itself can interpret.  Numeric array-likes get the full 2-D/finite
    screen so NaN silicon data cannot slip into a Gram matrix silently;
    anything non-numeric passes through untouched apart from an
    emptiness check.
    """
    try:
        arr = np.asarray(X)
    except (TypeError, ValueError):
        arr = None  # ragged sequence-of-sequences; structured samples
    if arr is not None and arr.ndim != 0 and arr.dtype.kind in "fiub":
        # keep 1-D numeric input 1-D: precomputed kernels index their
        # Gram matrix with it, so a column reshape would change meaning
        if arr.ndim > 2:
            raise DataShapeError(
                f"{name} must be 1-D or 2-D, got shape {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise DataShapeError(f"{name} has no samples")
        if arr.ndim == 2 and arr.shape[1] == 0:
            raise DataShapeError(f"{name} has no features")
        if not np.all(np.isfinite(arr)):
            raise DataShapeError(f"{name} contains NaN or infinite values")
        return np.ascontiguousarray(arr)
    try:
        n = len(X)
    except TypeError:
        raise DataShapeError(
            f"{name} must be a sequence of samples, got {type(X).__name__}"
        ) from None
    if n == 0:
        raise DataShapeError(f"{name} has no samples")
    return X


def as_1d_array(y, name: str = "y", dtype=None) -> np.ndarray:
    """Validate and return *y* as a 1-D array."""
    y = np.asarray(y) if dtype is None else np.asarray(y, dtype=dtype)
    if y.ndim != 1:
        raise DataShapeError(f"{name} must be 1-D, got shape {y.shape}")
    return y


def check_paired(X, y) -> None:
    """Raise unless *X* and *y* agree on the number of samples."""
    if len(X) != len(y):
        raise DataShapeError(
            f"X and y disagree on sample count: {len(X)} != {len(y)}"
        )


def supports_partial_fit(estimator) -> bool:
    """Whether *estimator* implements the incremental-fit contract.

    The contract (see ``docs/streaming.md``): ``partial_fit(X, y,
    classes=...)`` (``partial_fit(X)`` for unsupervised estimators)
    consumes one micro-batch and updates fitted state in place.  The
    first call on a supervised estimator must receive ``classes=`` (the
    complete label vocabulary — a stream cannot be re-scanned); later
    calls must reject labels outside it.  Estimators that accumulate
    exact sufficient statistics additionally guarantee *batch
    equivalence*: any micro-batching (including any permutation of the
    batches) yields a model bitwise-identical to one ``fit`` on the
    concatenation.  SGD-style estimators guarantee only the seeded
    contract: the same stream in the same order reproduces the same
    model.
    """
    return callable(getattr(estimator, "partial_fit", None))


def resolve_partial_fit_classes(estimator, y, classes=None) -> np.ndarray:
    """Validate/initialize ``classes_`` for a supervised ``partial_fit``.

    First call: *classes* is required (it fixes the label vocabulary
    and the column order of every probability output for the rest of
    the stream) and must hold at least two distinct labels.  Later
    calls: *classes*, when given, must match the established
    vocabulary.  Every call checks that *y* only contains known labels
    — a streaming model cannot silently grow its output space
    mid-stream.  Returns the established class array.
    """
    y = np.asarray(y)
    known = getattr(estimator, "classes_", None)
    if known is None:
        if classes is None:
            raise ValueError(
                f"{type(estimator).__name__}.partial_fit requires "
                "classes= on the first call: a stream cannot be "
                "re-scanned to discover the label vocabulary"
            )
        known = np.unique(np.asarray(classes))
        if len(known) < 2:
            raise ValueError(
                "classes must contain at least two distinct labels"
            )
        estimator.classes_ = known
    elif classes is not None:
        offered = np.unique(np.asarray(classes))
        if len(offered) != len(known) or not np.array_equal(offered, known):
            raise ValueError(
                f"classes= changed mid-stream: established "
                f"{known.tolist()!r}, got {offered.tolist()!r}"
            )
    unseen = np.setdiff1d(y, known)
    if len(unseen):
        raise ValueError(
            f"y contains labels outside the declared classes: "
            f"{unseen.tolist()!r} not in {known.tolist()!r}"
        )
    return known


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) for classifiers."""

    _estimator_kind = "classifier"

    def score(self, X, y) -> float:
        """Mean accuracy of ``predict(X)`` against *y*."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class RegressorMixin:
    """Mixin adding ``score`` (R^2) for regressors."""

    _estimator_kind = "regressor"

    def score(self, X, y) -> float:
        """Coefficient of determination R^2 of ``predict(X)``."""
        y = np.asarray(y, dtype=float)
        pred = np.asarray(self.predict(X), dtype=float)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot


class TransformerMixin:
    """Mixin adding ``fit_transform`` for transformers."""

    _estimator_kind = "transformer"

    def fit_transform(self, X, y=None):
        """Fit to *X* then transform it in one call."""
        self.fit(X) if y is None else self.fit(X, y)
        return self.transform(X)


class ClusterMixin:
    """Mixin adding ``fit_predict`` for clusterers."""

    _estimator_kind = "clusterer"

    def fit_predict(self, X):
        """Fit to *X* and return the cluster labels."""
        self.fit(X)
        return self.labels_
