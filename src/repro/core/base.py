"""Estimator base classes and the parameter API.

All learning machines in the library follow the same small protocol:

- construction takes only hyper-parameters and stores them verbatim;
- ``fit(X, y)`` learns state and stores it in attributes ending in ``_``;
- ``predict``/``transform`` consume the fitted state;
- ``get_params``/``set_params`` expose hyper-parameters so that model
  selection utilities (grid search, cross-validation) can clone and
  reconfigure estimators generically.

This mirrors the separation Fig. 4 of the paper draws between a learning
algorithm and the data access path: the estimator object is the
algorithm; data only flows through ``fit``.
"""

from __future__ import annotations

import copy
import inspect

import numpy as np

from .exceptions import DataShapeError, NotFittedError


class Estimator:
    """Base class providing the hyper-parameter API.

    Subclasses must store every constructor argument on ``self`` under
    the same name and perform no work in ``__init__``.
    """

    @classmethod
    def _param_names(cls):
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self"
            and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        ]

    def get_params(self) -> dict:
        """Return hyper-parameters as a ``{name: value}`` dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "Estimator":
        """Set hyper-parameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self):
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"

    def __eq__(self, other):
        """Structural equality on hyper-parameters (not fitted state).

        Lets clones compare equal to their prototypes, including through
        nested estimators (wrappers) and kernels.
        """
        if type(self) is not type(other):
            return NotImplemented
        mine = self.get_params()
        theirs = other.get_params()
        if set(mine) != set(theirs):
            return False
        for key, value in mine.items():
            other_value = theirs[key]
            if isinstance(value, np.ndarray) or isinstance(
                other_value, np.ndarray
            ):
                if not np.array_equal(value, other_value):
                    return False
            elif value != other_value:
                return False
        return True

    # hyper-parameter equality is structural; hashing stays by identity
    __hash__ = object.__hash__


def clone(estimator: Estimator) -> Estimator:
    """Return an unfitted copy of *estimator* with identical parameters."""
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)


def check_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless all *attributes* exist."""
    if isinstance(attributes, str):
        attributes = [attributes]
    missing = [a for a in attributes if getattr(estimator, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet "
            f"(missing {missing}); call fit() first"
        )


def as_2d_array(X, name: str = "X") -> np.ndarray:
    """Validate and return *X* as a 2-D float array."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise DataShapeError(f"{name} must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise DataShapeError(f"{name} has no samples")
    if not np.all(np.isfinite(X)):
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return X


def as_1d_array(y, name: str = "y", dtype=None) -> np.ndarray:
    """Validate and return *y* as a 1-D array."""
    y = np.asarray(y) if dtype is None else np.asarray(y, dtype=dtype)
    if y.ndim != 1:
        raise DataShapeError(f"{name} must be 1-D, got shape {y.shape}")
    return y


def check_paired(X, y) -> None:
    """Raise unless *X* and *y* agree on the number of samples."""
    if len(X) != len(y):
        raise DataShapeError(
            f"X and y disagree on sample count: {len(X)} != {len(y)}"
        )


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) for classifiers."""

    _estimator_kind = "classifier"

    def score(self, X, y) -> float:
        """Mean accuracy of ``predict(X)`` against *y*."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class RegressorMixin:
    """Mixin adding ``score`` (R^2) for regressors."""

    _estimator_kind = "regressor"

    def score(self, X, y) -> float:
        """Coefficient of determination R^2 of ``predict(X)``."""
        y = np.asarray(y, dtype=float)
        pred = np.asarray(self.predict(X), dtype=float)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot


class TransformerMixin:
    """Mixin adding ``fit_transform`` for transformers."""

    _estimator_kind = "transformer"

    def fit_transform(self, X, y=None):
        """Fit to *X* then transform it in one call."""
        self.fit(X) if y is None else self.fit(X, y)
        return self.transform(X)


class ClusterMixin:
    """Mixin adding ``fit_predict`` for clusterers."""

    _estimator_kind = "clusterer"

    def fit_predict(self, X):
        """Fit to *X* and return the cluster labels."""
        self.fit(X)
        return self.labels_
