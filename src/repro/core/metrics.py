"""Evaluation metrics for classification, regression, and screening.

Besides the standard ML metrics, this module includes the quantities the
paper's case studies report: simulation-saving percentages (Fig. 7),
hotspot recall/precision (Fig. 9), and escape counts (Fig. 12).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly-matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have equal length")
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> Tuple[np.ndarray, list]:
    """Return ``(matrix, labels)`` with rows = true, columns = predicted."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix, list(labels)


def precision_recall_f1(y_true, y_pred, positive=1) -> Tuple[float, float, float]:
    """Precision, recall and F1 for the *positive* class.

    Empty denominators yield 0.0 rather than NaN, the convention for
    screening problems where a model may flag nothing.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean per-class recall; robust under class imbalance (Sec. 2.4)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    recalls = []
    for label in np.unique(y_true):
        mask = y_true == label
        recalls.append(float(np.mean(y_pred[mask] == label)))
    return float(np.mean(recalls))


def roc_curve(y_true, scores, positive=1):
    """Return ``(fpr, tpr, thresholds)`` sweeping the score threshold."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(-scores)
    y_sorted = (y_true[order] == positive).astype(int)
    n_pos = int(y_sorted.sum())
    n_neg = len(y_sorted) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both positive and negative samples")
    tps = np.cumsum(y_sorted)
    fps = np.cumsum(1 - y_sorted)
    # keep only threshold positions where the score actually changes
    distinct = np.where(np.diff(scores[order]))[0]
    idx = np.r_[distinct, len(y_sorted) - 1]
    tpr = np.r_[0.0, tps[idx] / n_pos]
    fpr = np.r_[0.0, fps[idx] / n_neg]
    thresholds = np.r_[np.inf, scores[order][idx]]
    return fpr, tpr, thresholds


def auc(x, y) -> float:
    """Trapezoidal area under a curve given by points ``(x, y)``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    order = np.argsort(x)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(y[order], x[order]))


def roc_auc(y_true, scores, positive=1) -> float:
    """Area under the ROC curve."""
    fpr, tpr, _ = roc_curve(y_true, scores, positive=positive)
    return auc(fpr, tpr)


def precision_recall_curve(y_true, scores, positive=1):
    """Return ``(precision, recall, thresholds)`` sweeping the score.

    Points are ordered by decreasing threshold; an initial
    ``(1.0, 0.0)`` anchor is prepended, matching the usual convention.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    positives = int(np.sum(y_true == positive))
    if positives == 0:
        raise ValueError("need at least one positive sample")
    order = np.argsort(-scores)
    hits = (y_true[order] == positive).astype(int)
    tps = np.cumsum(hits)
    flagged = np.arange(1, len(hits) + 1)
    distinct = np.where(np.diff(scores[order]))[0]
    idx = np.r_[distinct, len(hits) - 1]
    precision = np.r_[1.0, tps[idx] / flagged[idx]]
    recall = np.r_[0.0, tps[idx] / positives]
    thresholds = np.r_[np.inf, scores[order][idx]]
    # truncate once full recall is reached: lower thresholds only
    # degrade precision without finding anything new
    full = np.flatnonzero(recall >= 1.0)
    if len(full):
        cut = int(full[0]) + 1
        precision = precision[:cut]
        recall = recall[:cut]
        thresholds = thresholds[:cut]
    return precision, recall, thresholds


def average_precision(y_true, scores, positive=1) -> float:
    """Area under the precision-recall curve (step interpolation).

    The ranking metric of choice for screening problems where positives
    are rare and ROC-AUC is too forgiving.
    """
    precision, recall, _ = precision_recall_curve(
        y_true, scores, positive=positive
    )
    return float(np.sum(np.diff(recall) * precision[1:]))


# ----------------------------------------------------------------------
# regression
# ----------------------------------------------------------------------
def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 - SS_res / SS_tot)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient (the Fig. 12 test-similarity stat)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("arrays must have equal length")
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


# ----------------------------------------------------------------------
# case-study metrics
# ----------------------------------------------------------------------
def simulation_saving(n_without_selection: int, n_with_selection: int) -> float:
    """Fractional saving in simulated tests (Fig. 7's headline number)."""
    if n_without_selection <= 0:
        raise ValueError("baseline test count must be positive")
    return 1.0 - n_with_selection / n_without_selection


def screening_report(y_true, y_pred, positive=1) -> Dict[str, float]:
    """Precision/recall/F1 plus raw counts for a screening decision."""
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, positive)
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "n_flagged": int(np.sum(y_pred == positive)),
        "n_true_positive": int(
            np.sum((y_pred == positive) & (y_true == positive))
        ),
        "n_missed": int(np.sum((y_pred != positive) & (y_true == positive))),
    }


def escape_count(fails_dropped_test, caught_by_kept_tests) -> int:
    """Number of parts failing a dropped test but passing all kept tests.

    This is the yellow-dot count of Fig. 12: the quantity a
    guaranteed-result formulation would need to bound, and cannot.
    """
    fails = np.asarray(fails_dropped_test, dtype=bool)
    caught = np.asarray(caught_by_kept_tests, dtype=bool)
    if len(fails) != len(caught):
        raise ValueError("arrays must have equal length")
    return int(np.sum(fails & ~caught))
