"""Model selection: splits, cross-validation, search, complexity curves.

The complexity-curve utilities implement the machinery behind Fig. 5 of
the paper: sweep a capacity hyper-parameter, record training and
validation error, and locate the point past which validation error rises
while training error keeps falling (overfitting).

Everything that fits many clones of one estimator — cross-validation,
grid search, the Fig. 5 capacity sweep, the Section 1 learning curve —
runs through one parallel, instrumented runtime:

- candidate×fold tasks fan out onto a pluggable
  :mod:`~repro.core.parallel` backend (serial / thread / process, or
  the multi-process file-protocol ``"sharded"`` backend of
  :mod:`repro.core.shard`) with deterministic result ordering, so every
  backend returns bitwise identical scores;
- per-task wall times, sample counts, and Gram-engine counter deltas
  are recorded as :class:`~repro.core.instrument.EventLog` spans, so
  the cost of a sweep can be attributed per candidate and per fold;
- nested parameters (``svc__C``, ``svc__kernel__gamma``) address
  pipeline steps and kernel hyper-parameters directly from a grid.

:class:`GridSearchCV` and :func:`cross_validate` are the primary entry
points; the historical :func:`grid_search` / :func:`cross_val_score`
functions remain as thin delegating shims.
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from . import instrument
from .base import Estimator, check_fitted, clone
from .instrument import EventLog, recording
from .metrics import accuracy, mean_squared_error
from .parallel import get_backend
from .resilience import CheckpointStore, ErrorPolicy, fingerprint
from .rng import ensure_rng


def train_test_split(X, y=None, test_fraction: float = 0.25, random_state=None):
    """Randomly split arrays into train/test partitions.

    Returns ``(X_train, X_test)`` or ``(X_train, X_test, y_train, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if y is None:
        return X[train_idx], X[test_idx]
    y = np.asarray(y)
    if len(y) != len(X):
        raise ValueError("X and y must have equal length")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic (optionally shuffled) k-fold index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X):
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            ensure_rng(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        """Yield ``(train_indices, test_indices)`` stratified on *y*."""
        y = np.asarray(y)
        rng = ensure_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            if len(test) == 0:
                raise ValueError(
                    "a fold received no samples; reduce n_splits"
                )
            train = np.flatnonzero(fold_of != k)
            yield train, test


# ---------------------------------------------------------------------
# The shared fit/score task
# ---------------------------------------------------------------------

def _resolve_folds(cv, X, y) -> List:
    """Materialize the fold index pairs once, in the parent process.

    Materializing up front makes every backend see the identical folds
    (a shuffled splitter is only invoked once) and keeps the task
    payloads free of generator state.
    """
    cv = cv if cv is not None else KFold(n_splits=5)
    split_args = (X, y) if isinstance(cv, StratifiedKFold) else (X,)
    return [
        (np.asarray(train), np.asarray(test))
        for train, test in cv.split(*split_args)
    ]


def _task_engine(estimator):
    """The Gram engine a task's work is attributed to."""
    engine = getattr(estimator, "engine", None)
    if engine is not None:
        return engine
    from ..kernels.engine import default_engine

    return default_engine()


def _fit_and_score_once(payload: dict, estimator) -> dict:
    """Fit one clone of *estimator* on one fold and score it."""
    params = payload.get("params") or {}
    X, y = payload["X"], payload["y"]
    train, test = payload["train"], payload["test"]
    scorer = payload.get("scorer")
    engine = _task_engine(estimator)
    before = engine.counters_snapshot()

    model = clone(estimator)
    if params:
        model.set_params(**params)
    start = time.perf_counter()
    model.fit(X[train], y[train])
    fit_seconds = time.perf_counter() - start

    def _score(idx) -> float:
        if scorer is None:
            return float(model.score(X[idx], y[idx]))
        return float(scorer(y[idx], model.predict(X[idx])))

    start = time.perf_counter()
    test_score = _score(test)
    score_seconds = time.perf_counter() - start
    result = {
        "test_score": test_score,
        "fit_seconds": fit_seconds,
        "score_seconds": score_seconds,
        "n_train": int(len(train)),
        "n_test": int(len(test)),
        "gram": engine.counters_snapshot().delta(before).as_dict(),
    }
    if payload.get("return_train_score"):
        result["train_score"] = _score(train)
    return result


def _fit_and_score(payload: dict) -> dict:
    """Fit one cloned candidate on one fold and score it.

    Runs unchanged on every backend (module-level, picklable).  Gram
    counter deltas are exact on the serial and process backends and
    approximate under thread concurrency (counters are engine-global).

    Two resilience hooks ride in the payload:

    - ``checkpoint`` / ``checkpoint_key``: a completed result is read
      back instead of recomputed (``checkpoint_hit`` marks it), and a
      fresh result is persisted atomically *before* being returned, so
      a killed driver loses at most in-flight work;
    - ``error_policy``: an :class:`~repro.core.resilience.ErrorPolicy`
      deciding whether a fit/score failure raises, records
      ``error_score``, or falls back to a substitute estimator.  The
      failure text is kept under ``"error"`` either way.

    With ``"raise"`` (or no policy) a failure propagates and the
    *backend's* retry loop resubmits the task.  With ``"skip"`` /
    ``"fallback"`` the task never raises, so the retry budget is spent
    *in-task* (``payload["retry"]`` + ``payload["task_index"]``, same
    deterministic delays) before the policy records the cell as failed
    — a transient blip is retried, only a persistent failure is
    skipped or substituted.
    """
    store = payload.get("checkpoint")
    key = payload.get("checkpoint_key")
    if store is not None and key is not None:
        cached = store.get(key)
        if cached is not None:
            cached["checkpoint_hit"] = True
            return cached
    policy: Optional[ErrorPolicy] = payload.get("error_policy")
    retry = payload.get("retry")
    task_index = payload.get("task_index", 0)
    attempt = 0
    while True:
        attempt += 1
        try:
            result = _fit_and_score_once(payload, payload["estimator"])
            break
        except Exception as error:  # noqa: BLE001 — routed by policy
            if policy is None or policy.on_error == "raise":
                raise
            if retry is not None and retry.should_retry(error, attempt):
                delay = retry.delay(task_index, attempt)
                instrument.emit(
                    "retry", delay, label=f"task[{task_index}]",
                    task=task_index, attempt=attempt, error=repr(error),
                )
                if delay > 0.0:
                    time.sleep(delay)
                continue
            if policy.on_error == "fallback":
                # the fallback is fit exactly as configured: candidate
                # params are not forwarded (their names may not even
                # exist on the substitute estimator)
                result = _fit_and_score_once(
                    {**payload, "params": None}, policy.fallback
                )
                result["fallback"] = True
            else:
                result = {
                    "test_score": policy.error_score,
                    "fit_seconds": 0.0,
                    "score_seconds": 0.0,
                    "n_train": int(len(payload["train"])),
                    "n_test": int(len(payload["test"])),
                    "gram": {},
                }
                if payload.get("return_train_score"):
                    result["train_score"] = policy.error_score
            result["error"] = f"{type(error).__name__}: {error}"
            break
    if attempt > 1:
        result["attempts"] = attempt
    if store is not None and key is not None:
        store.put(key, result)
        result["checkpoint_hit"] = False
    return result


def _record_task_metrics(results: Sequence[dict]) -> None:
    """Report completed fit/score tasks into the process-wide metrics
    registry (checkpoint-served cells count separately: they did no
    fitting this run)."""
    metrics = instrument.metrics_registry()
    for result in results:
        if result.get("checkpoint_hit"):
            metrics.increment("model_selection.checkpoint_hits")
            continue
        metrics.increment("model_selection.fits")
        metrics.observe("model_selection.fit_seconds",
                        result["fit_seconds"])
        metrics.observe("model_selection.score_seconds",
                        result["score_seconds"])
        if result.get("error") is not None:
            metrics.increment("model_selection.task_errors")


def _resolve_store(checkpoint) -> Optional[CheckpointStore]:
    """``None`` | path | :class:`CheckpointStore` -> optional store."""
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def _emit_task_spans(event_log: Optional[EventLog], results: Sequence[dict],
                     labels: Sequence[str], metas: Sequence[dict]) -> None:
    """Record one fit span and one score span per completed task.

    A task served from a checkpoint did no work this run: it emits a
    single ``checkpoint`` span (zero seconds) instead of replaying the
    stored fit/score timings, so the trace accounts for *this* run's
    wall time and ``recording()`` shows how much a resume skipped.
    """
    if event_log is None:
        return
    for result, label, meta in zip(results, labels, metas):
        if result.get("checkpoint_hit"):
            event_log.emit(
                "checkpoint", 0.0, label=label,
                n_samples=result["n_train"],
                saved_fit_seconds=result["fit_seconds"], **meta,
            )
            continue
        if result.get("error") is not None:
            meta = dict(meta, error=result["error"])
        if result.get("attempts"):
            meta = dict(meta, attempts=result["attempts"])
        event_log.emit(
            "fit", result["fit_seconds"], label=label,
            n_samples=result["n_train"], gram=result["gram"], **meta,
        )
        event_log.emit(
            "score", result["score_seconds"], label=label,
            n_samples=result["n_test"], **meta,
        )


def cross_validate(
    estimator,
    X,
    y,
    cv=None,
    scorer: Callable = None,
    *,
    backend=None,
    n_workers: int = None,
    retries: int = 1,
    retry=None,
    timeout: float = None,
    deadline=None,
    error_policy: ErrorPolicy = None,
    checkpoint=None,
    return_train_score: bool = False,
    event_log: EventLog = None,
) -> Dict[str, np.ndarray]:
    """Fit/score *estimator* over CV folds on an execution backend.

    Parameters
    ----------
    backend:
        ``None``/"serial", "thread", "process", or an
        :class:`~repro.core.parallel.ExecutionBackend` instance.  All
        backends produce identical scores; fold tasks are independent.
    retry / timeout / deadline:
        Resilience configuration forwarded to
        :func:`~repro.core.parallel.get_backend` (ignored when
        *backend* is already an instance).
    error_policy:
        An :class:`~repro.core.resilience.ErrorPolicy`; with
        ``"skip"``/``"fallback"`` a failing fold records its error in
        the returned ``errors`` list instead of raising.
    checkpoint:
        A :class:`~repro.core.resilience.CheckpointStore` (or a
        directory path).  Completed folds are persisted atomically and
        skipped on a rerun; scores round-trip bitwise.
    event_log:
        An :class:`~repro.core.instrument.EventLog` receiving one
        ``fit`` and one ``score`` span per fold (or a ``checkpoint``
        span for folds served from the store).

    Returns
    -------
    dict with ``test_score``, ``fit_seconds``, ``score_seconds`` arrays
    (one entry per fold), plus ``train_score`` when requested and
    ``errors`` when an *error_policy* is given.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    folds = _resolve_folds(cv, X, y)
    runner = get_backend(
        backend, n_workers=n_workers, retries=retries, retry=retry,
        timeout=timeout, deadline=deadline,
    )
    store = _resolve_store(checkpoint)
    run_fp = (
        fingerprint("cv", estimator, X, y, scorer, return_train_score)
        if store is not None else None
    )
    payloads = [
        {
            "estimator": estimator,
            "X": X,
            "y": y,
            "train": train,
            "test": test,
            "scorer": scorer,
            "return_train_score": return_train_score,
            "error_policy": error_policy,
            "retry": (
                runner._policy() if error_policy is not None else None
            ),
            "task_index": k,
            "checkpoint": store,
            "checkpoint_key": (
                fingerprint(run_fp, train, test)
                if store is not None else None
            ),
        }
        for k, (train, test) in enumerate(folds)
    ]
    instrument.metrics_registry().increment("model_selection.cv_runs")
    with recording(event_log) if event_log is not None else nullcontext():
        results = runner.map(_fit_and_score, payloads)
    _record_task_metrics(results)
    _emit_task_spans(
        event_log,
        results,
        labels=[f"fold[{k}]" for k in range(len(folds))],
        metas=[{"fold": k} for k in range(len(folds))],
    )
    out = {
        "test_score": np.array([r["test_score"] for r in results]),
        "fit_seconds": np.array([r["fit_seconds"] for r in results]),
        "score_seconds": np.array([r["score_seconds"] for r in results]),
        "n_train": np.array([r["n_train"] for r in results]),
        "n_test": np.array([r["n_test"] for r in results]),
    }
    if return_train_score:
        out["train_score"] = np.array([r["train_score"] for r in results])
    if error_policy is not None:
        out["errors"] = [r.get("error") for r in results]
    if store is not None:
        out["checkpoint_hits"] = int(
            sum(bool(r.get("checkpoint_hit")) for r in results)
        )
    return out


def cross_val_score(estimator, X, y, cv=None, scorer: Callable = None,
                    backend=None) -> np.ndarray:
    """Per-fold scores of *estimator* (shim over :func:`cross_validate`).

    The estimator is :func:`~repro.core.base.clone`\\ d for every fold so
    state never leaks across folds.
    """
    return cross_validate(
        estimator, X, y, cv=cv, scorer=scorer, backend=backend
    )["test_score"]


# ---------------------------------------------------------------------
# Grid search
# ---------------------------------------------------------------------

class ParameterGrid:
    """Iterate parameter dicts from a grid specification.

    A specification is a ``{name: values}`` mapping (the cartesian
    product is enumerated, last key varying fastest) or a list of such
    mappings (enumerated in order, products concatenated).  Names may
    use the nested ``step__param`` grammar.
    """

    def __init__(self, grid):
        if isinstance(grid, Mapping):
            grid = [grid]
        self.grid = [dict(g) for g in grid]
        for g in self.grid:
            for name, values in g.items():
                if isinstance(values, str) or not isinstance(
                    values, (Sequence, np.ndarray)
                ):
                    raise ValueError(
                        f"grid values for {name!r} must be a sequence"
                    )

    def __iter__(self):
        for g in self.grid:
            if not g:
                yield {}
                continue
            names = list(g)
            for combo in itertools.product(*(g[name] for name in names)):
                yield dict(zip(names, combo))

    def __len__(self):
        total = 0
        for g in self.grid:
            size = 1
            for values in g.values():
                size *= len(values)
            total += size
        return total


class GridSearchCV(Estimator):
    """Exhaustive search over a parameter grid, run as an estimator.

    Candidate×fold tasks fan out onto the configured backend; results
    are aggregated in deterministic candidate order, so
    ``best_params_`` and every score are identical on the serial,
    thread, process, and sharded backends (``backend="sharded"``
    spreads the sweep over independent worker processes that survive
    SIGKILL mid-shard; see docs/sharding.md).  After :meth:`fit` the winning
    configuration is refit on the full data (``refit=True``) and the
    search object behaves like the fitted winner (``predict``,
    ``predict_proba``, ``decision_function``, ``transform``, ``score``).

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every task.
    param_grid:
        Grid specification (see :class:`ParameterGrid`); names may
        address nested parameters (``svc__C``, ``svc__kernel__gamma``).
    cv:
        Fold generator; defaults to ``KFold(5)``.
    scorer:
        ``scorer(y_true, y_pred) -> float`` (higher is better);
        defaults to the estimator's own ``score``.
    backend / n_workers / retries / retry / timeout / deadline:
        Execution backend configuration (see
        :func:`~repro.core.parallel.get_backend`): worker fan-out, the
        :class:`~repro.core.resilience.RetryPolicy`, the per-task
        timeout, and the run-level deadline.
    error_policy:
        An :class:`~repro.core.resilience.ErrorPolicy`.  With
        ``"skip"`` a failing cell records ``error_score`` (NaN by
        default) instead of killing the sweep; with ``"fallback"`` the
        policy's substitute estimator is fit in its place.  Failure
        text lands in ``cv_results_["fold_errors"]``.
    checkpoint:
        A :class:`~repro.core.resilience.CheckpointStore` (or directory
        path).  Every completed cell is persisted atomically as it
        finishes; a rerun with the same store, data, and grid skips the
        completed cells and reproduces the uninterrupted ``cv_results_``
        scores bitwise.  ``checkpoint_hits_`` counts the skipped cells.
    refit:
        Refit the best configuration on the full data after the search.
    event_log:
        Receives per-task ``fit``/``score`` spans, ``checkpoint`` spans
        for cells served from the store, ``retry``/``timeout`` spans
        from the backend, a ``refit`` span, and one ``search`` span for
        the whole sweep (with the Gram engine delta attributed to it).

    Attributes
    ----------
    best_params_, best_score_, best_index_:
        Winning parameter dict, its mean CV score, its candidate index.
        Candidates whose mean score is NaN (skipped cells) never win.
    best_estimator_:
        The refit winner (when ``refit=True``).
    cv_results_:
        Dict of per-candidate arrays: ``params``, ``fold_test_scores``,
        ``mean_test_score``, ``std_test_score``, ``rank_test_score``,
        ``mean_fit_seconds``, ``mean_score_seconds``; plus
        ``fold_errors`` when an *error_policy* is configured.
    checkpoint_hits_:
        Number of cells served from the checkpoint store (0 without
        one).
    """

    def __init__(self, estimator, param_grid, cv=None,
                 scorer: Callable = None, backend=None,
                 n_workers: int = None, retries: int = 1,
                 retry=None, timeout: float = None, deadline=None,
                 error_policy: ErrorPolicy = None, checkpoint=None,
                 refit: bool = True, return_train_score: bool = False,
                 event_log: EventLog = None):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scorer = scorer
        self.backend = backend
        self.n_workers = n_workers
        self.retries = retries
        self.retry = retry
        self.timeout = timeout
        self.deadline = deadline
        self.error_policy = error_policy
        self.checkpoint = checkpoint
        self.refit = refit
        self.return_train_score = return_train_score
        self.event_log = event_log

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y)
        candidates = list(ParameterGrid(self.param_grid))
        if not candidates:
            raise ValueError("param_grid yields no candidates")
        folds = _resolve_folds(self.cv, X, y)
        runner = get_backend(
            self.backend, n_workers=self.n_workers, retries=self.retries,
            retry=self.retry, timeout=self.timeout, deadline=self.deadline,
        )
        engine = _task_engine(self.estimator)
        log = self.event_log
        store = _resolve_store(self.checkpoint)
        instrument.metrics_registry().increment("model_selection.searches")
        # one fingerprint pins everything every cell shares; per-cell
        # keys add only the candidate params and the fold indices, so a
        # rerun with identical inputs maps onto identical keys
        run_fp = (
            fingerprint(
                "grid_search", self.estimator, X, y, self.scorer,
                self.return_train_score,
            )
            if store is not None else None
        )

        def _run_search():
            payloads = []
            labels, metas = [], []
            for c, params in enumerate(candidates):
                for k, (train, test) in enumerate(folds):
                    payloads.append(
                        {
                            "estimator": self.estimator,
                            "params": params,
                            "X": X,
                            "y": y,
                            "train": train,
                            "test": test,
                            "scorer": self.scorer,
                            "return_train_score": self.return_train_score,
                            "error_policy": self.error_policy,
                            "retry": (
                                runner._policy()
                                if self.error_policy is not None else None
                            ),
                            "task_index": len(payloads),
                            "checkpoint": store,
                            "checkpoint_key": (
                                fingerprint(run_fp, params, train, test)
                                if store is not None else None
                            ),
                        }
                    )
                    labels.append(f"candidate[{c}] fold[{k}]")
                    metas.append(
                        {"candidate": c, "fold": k, "params": dict(params)}
                    )
            with recording(log) if log is not None else nullcontext():
                results = runner.map(_fit_and_score, payloads)
            _record_task_metrics(results)
            _emit_task_spans(log, results, labels, metas)
            return results

        if log is not None:
            with log.span(
                "search", label=f"grid[{len(candidates)}x{len(folds)}]",
                n_samples=len(X), engine=engine,
                backend=runner.name, n_candidates=len(candidates),
                n_folds=len(folds),
            ):
                results = _run_search()
        else:
            results = _run_search()

        n_folds = len(folds)
        fold_scores = np.array(
            [r["test_score"] for r in results]
        ).reshape(len(candidates), n_folds)
        means = fold_scores.mean(axis=1)
        # candidates with NaN means (skipped cells under an ErrorPolicy)
        # rank last and can never win; an all-failed sweep is an error,
        # not a silent NaN winner
        comparable = np.where(np.isfinite(means), means, -np.inf)
        if not np.isfinite(means).any():
            failures = sorted(
                {
                    r["error"] for r in results
                    if r.get("error") is not None
                }
            )
            raise ValueError(
                f"every candidate failed; distinct failures: {failures}"
            )
        # rank 1 = best; argmax tie-breaks on the lowest candidate index
        order = np.argsort(-comparable, kind="stable")
        ranks = np.empty(len(candidates), dtype=int)
        ranks[order] = np.arange(1, len(candidates) + 1)
        self.cv_results_ = {
            "params": candidates,
            "fold_test_scores": fold_scores,
            "mean_test_score": means,
            "std_test_score": fold_scores.std(axis=1),
            "rank_test_score": ranks,
            "mean_fit_seconds": np.array(
                [r["fit_seconds"] for r in results]
            ).reshape(len(candidates), n_folds).mean(axis=1),
            "mean_score_seconds": np.array(
                [r["score_seconds"] for r in results]
            ).reshape(len(candidates), n_folds).mean(axis=1),
        }
        if self.return_train_score:
            self.cv_results_["fold_train_scores"] = np.array(
                [r["train_score"] for r in results]
            ).reshape(len(candidates), n_folds)
        if self.error_policy is not None:
            errors = [r.get("error") for r in results]
            self.cv_results_["fold_errors"] = [
                errors[c * n_folds:(c + 1) * n_folds]
                for c in range(len(candidates))
            ]
        self.checkpoint_hits_ = int(
            sum(bool(r.get("checkpoint_hit")) for r in results)
        )
        self.n_tasks_ = len(results)
        self.best_index_ = int(np.argmax(comparable))
        self.best_params_ = dict(candidates[self.best_index_])
        self.best_score_ = float(means[self.best_index_])
        self.n_splits_ = n_folds
        self.backend_name_ = runner.name

        if self.refit:
            # the refit gets the same retry treatment as the search
            # tasks: a transient failure here must not discard the sweep
            policy = runner._policy()
            refit_index = len(results)
            attempt = 0
            start = time.perf_counter()
            while True:
                attempt += 1
                winner = clone(self.estimator).set_params(
                    **self.best_params_
                )
                try:
                    if log is not None:
                        with recording(log):
                            winner.fit(X, y)
                    else:
                        winner.fit(X, y)
                    break
                except Exception as error:  # noqa: BLE001 — policy-routed
                    if not policy.should_retry(error, attempt):
                        raise
                    delay = policy.delay(refit_index, attempt)
                    if log is not None:
                        log.emit(
                            "retry", delay, label="refit",
                            attempt=attempt, error=repr(error),
                        )
                    if delay > 0.0:
                        time.sleep(delay)
            if log is not None:
                log.emit(
                    "refit", time.perf_counter() - start,
                    label="best_estimator", n_samples=len(X),
                    params=dict(self.best_params_), attempts=attempt,
                )
            self.best_estimator_ = winner
        return self

    # ------------------------------------------------------------------
    # fitted-winner passthrough
    # ------------------------------------------------------------------
    def _winner(self):
        check_fitted(self, "best_estimator_")
        return self.best_estimator_

    def predict(self, X):
        return self._winner().predict(X)

    def predict_proba(self, X):
        return self._winner().predict_proba(X)

    def decision_function(self, X):
        return self._winner().decision_function(X)

    def transform(self, X):
        return self._winner().transform(X)

    def score(self, X, y) -> float:
        return self._winner().score(X, y)

    @property
    def _estimator_kind(self):
        return getattr(self.estimator, "_estimator_kind", "estimator")


def grid_search(
    estimator,
    param_grid: Dict[str, Sequence],
    X,
    y,
    cv=None,
    scorer: Callable = None,
    backend=None,
):
    """Exhaustive hyper-parameter search (shim over :class:`GridSearchCV`).

    Returns ``(best_params, best_score, all_results)`` where
    ``all_results`` is a list of ``(params, mean_score)`` pairs and higher
    scores are better.
    """
    search = GridSearchCV(
        estimator, param_grid, cv=cv, scorer=scorer, backend=backend,
        refit=False,
    ).fit(X, y)
    results = list(
        zip(
            search.cv_results_["params"],
            [float(m) for m in search.cv_results_["mean_test_score"]],
        )
    )
    return search.best_params_, search.best_score_, results


# ---------------------------------------------------------------------
# Capacity and data-availability sweeps
# ---------------------------------------------------------------------

@dataclass
class ComplexityCurve:
    """Result of a Fig. 5 style capacity sweep."""

    parameter: str
    values: List = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def best_index(self) -> int:
        """Index of the complexity value with minimal validation error."""
        return int(np.argmin(self.validation_errors))

    def best_value(self):
        """Complexity value minimizing validation error."""
        return self.values[self.best_index()]

    def overfitting_detected(self) -> bool:
        """True when validation error rises past its minimum while
        training error keeps (weakly) falling — the Fig. 5 shape."""
        best = self.best_index()
        if best == len(self.values) - 1:
            return False
        after = self.validation_errors[best + 1 :]
        train_after = self.train_errors[best:]
        validation_rises = max(after) > self.validation_errors[best] + 1e-12
        train_not_rising = train_after[-1] <= self.train_errors[best] + 1e-9
        return bool(validation_rises and train_not_rising)

    def rows(self):
        """Rows ``(value, train_error, validation_error)`` for reporting."""
        return list(zip(self.values, self.train_errors, self.validation_errors))


def _default_error(model) -> Callable:
    kind = getattr(model, "_estimator_kind", "classifier")
    if kind == "regressor":
        return mean_squared_error
    return lambda t, p: 1.0 - accuracy(t, p)


def _curve_point(payload: dict) -> dict:
    """Fit one sweep point and return its train/validation errors."""
    model = payload["model"]
    model.fit(payload["X_train"], payload["y_train"])
    error = payload.get("error") or _default_error(model)
    return {
        "train": float(
            error(payload["y_train"], model.predict(payload["X_train"]))
        ),
        "validation": float(
            error(payload["y_val"], model.predict(payload["X_val"]))
        ),
    }


def complexity_curve(
    estimator_factory: Callable,
    parameter: str,
    values: Sequence,
    X_train,
    y_train,
    X_val,
    y_val,
    error: Callable = None,
    backend=None,
    n_workers: int = None,
) -> ComplexityCurve:
    """Sweep a capacity parameter and record train/validation error.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh estimator.
    parameter:
        Hyper-parameter name to sweep via ``set_params`` (nested names
        such as ``svc__C`` are supported).
    values:
        Capacity values, ordered from simplest to most complex.
    error:
        ``error(y_true, y_pred) -> float``; defaults to misclassification
        rate for classifiers and MSE for regressors.
    backend:
        Execution backend for the sweep points (see
        :func:`~repro.core.parallel.get_backend`); each point is an
        independent fit, so the sweep parallelizes candidate-wise.
    """
    curve = ComplexityCurve(parameter=parameter)
    payloads = [
        {
            "model": estimator_factory().set_params(**{parameter: value}),
            "X_train": X_train,
            "y_train": y_train,
            "X_val": X_val,
            "y_val": y_val,
            "error": error,
        }
        for value in values
    ]
    runner = get_backend(backend, n_workers=n_workers)
    for value, point in zip(values, runner.map(_curve_point, payloads)):
        curve.values.append(value)
        curve.train_errors.append(point["train"])
        curve.validation_errors.append(point["validation"])
    return curve


@dataclass
class LearningCurve:
    """Result of a data-availability sweep (Section 1's principle 2).

    How much data does the learning need before the result shows
    statistical significance?  The curve records validation error as a
    function of training-set size; the knee is where collecting more
    data stops paying.
    """

    sizes: List[int] = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def rows(self):
        return list(zip(self.sizes, self.train_errors,
                        self.validation_errors))

    def knee_size(self, tolerance: float = 0.02) -> int:
        """Smallest size whose validation error is within *tolerance*
        of the best achieved — the data budget actually needed."""
        best = min(self.validation_errors)
        for size, error in zip(self.sizes, self.validation_errors):
            if error <= best + tolerance:
                return size
        return self.sizes[-1]


def learning_curve(
    estimator,
    X,
    y,
    sizes: Sequence[int],
    X_val,
    y_val,
    error: Callable = None,
    random_state=None,
    backend=None,
    n_workers: int = None,
) -> LearningCurve:
    """Fit clones of *estimator* on growing prefixes of shuffled data.

    Parameters
    ----------
    sizes:
        Training-set sizes to probe (each must be <= len(X)).
    error:
        ``error(y_true, y_pred) -> float``; defaults to
        misclassification rate / MSE by estimator kind.
    backend:
        Execution backend; sizes are independent fits and parallelize.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    curve = LearningCurve()
    payloads = []
    resolved_sizes = []
    for size in sizes:
        size = int(size)
        if not 1 <= size <= len(X):
            raise ValueError(f"size {size} out of range [1, {len(X)}]")
        subset = order[:size]
        payloads.append(
            {
                "model": clone(estimator),
                "X_train": X[subset],
                "y_train": y[subset],
                "X_val": X_val,
                "y_val": y_val,
                "error": error,
            }
        )
        resolved_sizes.append(size)
    runner = get_backend(backend, n_workers=n_workers)
    for size, point in zip(
        resolved_sizes, runner.map(_curve_point, payloads)
    ):
        curve.sizes.append(size)
        curve.train_errors.append(point["train"])
        curve.validation_errors.append(point["validation"])
    return curve
