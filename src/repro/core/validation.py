"""Model selection: splits, cross-validation, and complexity curves.

The complexity-curve utilities implement the machinery behind Fig. 5 of
the paper: sweep a capacity hyper-parameter, record training and
validation error, and locate the point past which validation error rises
while training error keeps falling (overfitting).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from .base import clone
from .metrics import accuracy, mean_squared_error
from .rng import ensure_rng


def train_test_split(X, y=None, test_fraction: float = 0.25, random_state=None):
    """Randomly split arrays into train/test partitions.

    Returns ``(X_train, X_test)`` or ``(X_train, X_test, y_train, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if y is None:
        return X[train_idx], X[test_idx]
    y = np.asarray(y)
    if len(y) != len(X):
        raise ValueError("X and y must have equal length")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic (optionally shuffled) k-fold index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X):
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            ensure_rng(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        """Yield ``(train_indices, test_indices)`` stratified on *y*."""
        y = np.asarray(y)
        rng = ensure_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            if len(test) == 0:
                raise ValueError(
                    "a fold received no samples; reduce n_splits"
                )
            train = np.flatnonzero(fold_of != k)
            yield train, test


def cross_val_score(estimator, X, y, cv=None, scorer: Callable = None) -> np.ndarray:
    """Fit/score *estimator* over the folds of *cv* and return the scores.

    The estimator is :func:`~repro.core.base.clone`\\ d for every fold so
    state never leaks across folds.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    cv = cv if cv is not None else KFold(n_splits=5)
    scores = []
    split_args = (X, y) if isinstance(cv, StratifiedKFold) else (X,)
    for train_idx, test_idx in cv.split(*split_args):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        if scorer is None:
            scores.append(model.score(X[test_idx], y[test_idx]))
        else:
            scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores, dtype=float)


@dataclass
class ComplexityCurve:
    """Result of a Fig. 5 style capacity sweep."""

    parameter: str
    values: List = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def best_index(self) -> int:
        """Index of the complexity value with minimal validation error."""
        return int(np.argmin(self.validation_errors))

    def best_value(self):
        """Complexity value minimizing validation error."""
        return self.values[self.best_index()]

    def overfitting_detected(self) -> bool:
        """True when validation error rises past its minimum while
        training error keeps (weakly) falling — the Fig. 5 shape."""
        best = self.best_index()
        if best == len(self.values) - 1:
            return False
        after = self.validation_errors[best + 1 :]
        train_after = self.train_errors[best:]
        validation_rises = max(after) > self.validation_errors[best] + 1e-12
        train_not_rising = train_after[-1] <= self.train_errors[best] + 1e-9
        return bool(validation_rises and train_not_rising)

    def rows(self):
        """Rows ``(value, train_error, validation_error)`` for reporting."""
        return list(zip(self.values, self.train_errors, self.validation_errors))


def complexity_curve(
    estimator_factory: Callable,
    parameter: str,
    values: Sequence,
    X_train,
    y_train,
    X_val,
    y_val,
    error: Callable = None,
) -> ComplexityCurve:
    """Sweep a capacity parameter and record train/validation error.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh estimator.
    parameter:
        Hyper-parameter name to sweep via ``set_params``.
    values:
        Capacity values, ordered from simplest to most complex.
    error:
        ``error(y_true, y_pred) -> float``; defaults to misclassification
        rate for classifiers and MSE for regressors.
    """
    curve = ComplexityCurve(parameter=parameter)
    for value in values:
        model = estimator_factory()
        model.set_params(**{parameter: value})
        model.fit(X_train, y_train)
        if error is None:
            kind = getattr(model, "_estimator_kind", "classifier")
            if kind == "regressor":
                err = lambda t, p: mean_squared_error(t, p)  # noqa: E731
            else:
                err = lambda t, p: 1.0 - accuracy(t, p)  # noqa: E731
        else:
            err = error
        curve.values.append(value)
        curve.train_errors.append(float(err(y_train, model.predict(X_train))))
        curve.validation_errors.append(float(err(y_val, model.predict(X_val))))
    return curve


@dataclass
class LearningCurve:
    """Result of a data-availability sweep (Section 1's principle 2).

    How much data does the learning need before the result shows
    statistical significance?  The curve records validation error as a
    function of training-set size; the knee is where collecting more
    data stops paying.
    """

    sizes: List[int] = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def rows(self):
        return list(zip(self.sizes, self.train_errors,
                        self.validation_errors))

    def knee_size(self, tolerance: float = 0.02) -> int:
        """Smallest size whose validation error is within *tolerance*
        of the best achieved — the data budget actually needed."""
        best = min(self.validation_errors)
        for size, error in zip(self.sizes, self.validation_errors):
            if error <= best + tolerance:
                return size
        return self.sizes[-1]


def learning_curve(
    estimator,
    X,
    y,
    sizes: Sequence[int],
    X_val,
    y_val,
    error: Callable = None,
    random_state=None,
) -> LearningCurve:
    """Fit clones of *estimator* on growing prefixes of shuffled data.

    Parameters
    ----------
    sizes:
        Training-set sizes to probe (each must be <= len(X)).
    error:
        ``error(y_true, y_pred) -> float``; defaults to
        misclassification rate / MSE by estimator kind.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    curve = LearningCurve()
    for size in sizes:
        size = int(size)
        if not 1 <= size <= len(X):
            raise ValueError(f"size {size} out of range [1, {len(X)}]")
        subset = order[:size]
        model = clone(estimator)
        model.fit(X[subset], y[subset])
        if error is None:
            kind = getattr(model, "_estimator_kind", "classifier")
            if kind == "regressor":
                err = mean_squared_error
            else:
                err = lambda t, p: 1.0 - accuracy(t, p)  # noqa: E731
        else:
            err = error
        curve.sizes.append(size)
        curve.train_errors.append(
            float(err(y[subset], model.predict(X[subset])))
        )
        curve.validation_errors.append(
            float(err(y_val, model.predict(X_val)))
        )
    return curve


def grid_search(
    estimator,
    param_grid: Dict[str, Sequence],
    X,
    y,
    cv=None,
    scorer: Callable = None,
):
    """Exhaustive hyper-parameter search by cross-validation.

    Returns ``(best_params, best_score, all_results)`` where
    ``all_results`` is a list of ``(params, mean_score)`` pairs and higher
    scores are better.
    """
    names = list(param_grid)
    results = []
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        model = clone(estimator).set_params(**params)
        scores = cross_val_score(model, X, y, cv=cv, scorer=scorer)
        results.append((params, float(scores.mean())))
    best_params, best_score = max(results, key=lambda item: item[1])
    return best_params, best_score, results
