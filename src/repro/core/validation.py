"""Model selection: splits, cross-validation, search, complexity curves.

The complexity-curve utilities implement the machinery behind Fig. 5 of
the paper: sweep a capacity hyper-parameter, record training and
validation error, and locate the point past which validation error rises
while training error keeps falling (overfitting).

Everything that fits many clones of one estimator — cross-validation,
grid search, the Fig. 5 capacity sweep, the Section 1 learning curve —
runs through one parallel, instrumented runtime:

- candidate×fold tasks fan out onto a pluggable
  :mod:`~repro.core.parallel` backend (serial / thread / process) with
  deterministic result ordering, so every backend returns bitwise
  identical scores;
- per-task wall times, sample counts, and Gram-engine counter deltas
  are recorded as :class:`~repro.core.instrument.EventLog` spans, so
  the cost of a sweep can be attributed per candidate and per fold;
- nested parameters (``svc__C``, ``svc__kernel__gamma``) address
  pipeline steps and kernel hyper-parameters directly from a grid.

:class:`GridSearchCV` and :func:`cross_validate` are the primary entry
points; the historical :func:`grid_search` / :func:`cross_val_score`
functions remain as thin delegating shims.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .base import Estimator, check_fitted, clone
from .instrument import EventLog, recording
from .metrics import accuracy, mean_squared_error
from .parallel import get_backend
from .rng import ensure_rng


def train_test_split(X, y=None, test_fraction: float = 0.25, random_state=None):
    """Randomly split arrays into train/test partitions.

    Returns ``(X_train, X_test)`` or ``(X_train, X_test, y_train, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if y is None:
        return X[train_idx], X[test_idx]
    y = np.asarray(y)
    if len(y) != len(X):
        raise ValueError("X and y must have equal length")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic (optionally shuffled) k-fold index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X):
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            ensure_rng(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        """Yield ``(train_indices, test_indices)`` stratified on *y*."""
        y = np.asarray(y)
        rng = ensure_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            if len(test) == 0:
                raise ValueError(
                    "a fold received no samples; reduce n_splits"
                )
            train = np.flatnonzero(fold_of != k)
            yield train, test


# ---------------------------------------------------------------------
# The shared fit/score task
# ---------------------------------------------------------------------

def _resolve_folds(cv, X, y) -> List:
    """Materialize the fold index pairs once, in the parent process.

    Materializing up front makes every backend see the identical folds
    (a shuffled splitter is only invoked once) and keeps the task
    payloads free of generator state.
    """
    cv = cv if cv is not None else KFold(n_splits=5)
    split_args = (X, y) if isinstance(cv, StratifiedKFold) else (X,)
    return [
        (np.asarray(train), np.asarray(test))
        for train, test in cv.split(*split_args)
    ]


def _task_engine(estimator):
    """The Gram engine a task's work is attributed to."""
    engine = getattr(estimator, "engine", None)
    if engine is not None:
        return engine
    from ..kernels.engine import default_engine

    return default_engine()


def _fit_and_score(payload: dict) -> dict:
    """Fit one cloned candidate on one fold and score it.

    Runs unchanged on every backend (module-level, picklable).  Gram
    counter deltas are exact on the serial and process backends and
    approximate under thread concurrency (counters are engine-global).
    """
    estimator = payload["estimator"]
    params = payload.get("params") or {}
    X, y = payload["X"], payload["y"]
    train, test = payload["train"], payload["test"]
    scorer = payload.get("scorer")
    engine = _task_engine(estimator)
    before = engine.counters_snapshot()

    model = clone(estimator)
    if params:
        model.set_params(**params)
    start = time.perf_counter()
    model.fit(X[train], y[train])
    fit_seconds = time.perf_counter() - start

    def _score(idx) -> float:
        if scorer is None:
            return float(model.score(X[idx], y[idx]))
        return float(scorer(y[idx], model.predict(X[idx])))

    start = time.perf_counter()
    test_score = _score(test)
    score_seconds = time.perf_counter() - start
    result = {
        "test_score": test_score,
        "fit_seconds": fit_seconds,
        "score_seconds": score_seconds,
        "n_train": int(len(train)),
        "n_test": int(len(test)),
        "gram": engine.counters_snapshot().delta(before).as_dict(),
    }
    if payload.get("return_train_score"):
        result["train_score"] = _score(train)
    return result


def _emit_task_spans(event_log: Optional[EventLog], results: Sequence[dict],
                     labels: Sequence[str], metas: Sequence[dict]) -> None:
    """Record one fit span and one score span per completed task."""
    if event_log is None:
        return
    for result, label, meta in zip(results, labels, metas):
        event_log.emit(
            "fit", result["fit_seconds"], label=label,
            n_samples=result["n_train"], gram=result["gram"], **meta,
        )
        event_log.emit(
            "score", result["score_seconds"], label=label,
            n_samples=result["n_test"], **meta,
        )


def cross_validate(
    estimator,
    X,
    y,
    cv=None,
    scorer: Callable = None,
    *,
    backend=None,
    n_workers: int = None,
    retries: int = 1,
    return_train_score: bool = False,
    event_log: EventLog = None,
) -> Dict[str, np.ndarray]:
    """Fit/score *estimator* over CV folds on an execution backend.

    Parameters
    ----------
    backend:
        ``None``/"serial", "thread", "process", or an
        :class:`~repro.core.parallel.ExecutionBackend` instance.  All
        backends produce identical scores; fold tasks are independent.
    event_log:
        An :class:`~repro.core.instrument.EventLog` receiving one
        ``fit`` and one ``score`` span per fold.

    Returns
    -------
    dict with ``test_score``, ``fit_seconds``, ``score_seconds`` arrays
    (one entry per fold), plus ``train_score`` when requested.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    folds = _resolve_folds(cv, X, y)
    runner = get_backend(backend, n_workers=n_workers, retries=retries)
    payloads = [
        {
            "estimator": estimator,
            "X": X,
            "y": y,
            "train": train,
            "test": test,
            "scorer": scorer,
            "return_train_score": return_train_score,
        }
        for train, test in folds
    ]
    results = runner.map(_fit_and_score, payloads)
    _emit_task_spans(
        event_log,
        results,
        labels=[f"fold[{k}]" for k in range(len(folds))],
        metas=[{"fold": k} for k in range(len(folds))],
    )
    out = {
        "test_score": np.array([r["test_score"] for r in results]),
        "fit_seconds": np.array([r["fit_seconds"] for r in results]),
        "score_seconds": np.array([r["score_seconds"] for r in results]),
        "n_train": np.array([r["n_train"] for r in results]),
        "n_test": np.array([r["n_test"] for r in results]),
    }
    if return_train_score:
        out["train_score"] = np.array([r["train_score"] for r in results])
    return out


def cross_val_score(estimator, X, y, cv=None, scorer: Callable = None,
                    backend=None) -> np.ndarray:
    """Per-fold scores of *estimator* (shim over :func:`cross_validate`).

    The estimator is :func:`~repro.core.base.clone`\\ d for every fold so
    state never leaks across folds.
    """
    return cross_validate(
        estimator, X, y, cv=cv, scorer=scorer, backend=backend
    )["test_score"]


# ---------------------------------------------------------------------
# Grid search
# ---------------------------------------------------------------------

class ParameterGrid:
    """Iterate parameter dicts from a grid specification.

    A specification is a ``{name: values}`` mapping (the cartesian
    product is enumerated, last key varying fastest) or a list of such
    mappings (enumerated in order, products concatenated).  Names may
    use the nested ``step__param`` grammar.
    """

    def __init__(self, grid):
        if isinstance(grid, Mapping):
            grid = [grid]
        self.grid = [dict(g) for g in grid]
        for g in self.grid:
            for name, values in g.items():
                if isinstance(values, str) or not isinstance(
                    values, (Sequence, np.ndarray)
                ):
                    raise ValueError(
                        f"grid values for {name!r} must be a sequence"
                    )

    def __iter__(self):
        for g in self.grid:
            if not g:
                yield {}
                continue
            names = list(g)
            for combo in itertools.product(*(g[name] for name in names)):
                yield dict(zip(names, combo))

    def __len__(self):
        total = 0
        for g in self.grid:
            size = 1
            for values in g.values():
                size *= len(values)
            total += size
        return total


class GridSearchCV(Estimator):
    """Exhaustive search over a parameter grid, run as an estimator.

    Candidate×fold tasks fan out onto the configured backend; results
    are aggregated in deterministic candidate order, so
    ``best_params_`` and every score are identical on the serial,
    thread, and process backends.  After :meth:`fit` the winning
    configuration is refit on the full data (``refit=True``) and the
    search object behaves like the fitted winner (``predict``,
    ``predict_proba``, ``decision_function``, ``transform``, ``score``).

    Parameters
    ----------
    estimator:
        Prototype estimator; cloned for every task.
    param_grid:
        Grid specification (see :class:`ParameterGrid`); names may
        address nested parameters (``svc__C``, ``svc__kernel__gamma``).
    cv:
        Fold generator; defaults to ``KFold(5)``.
    scorer:
        ``scorer(y_true, y_pred) -> float`` (higher is better);
        defaults to the estimator's own ``score``.
    backend / n_workers / retries:
        Execution backend configuration (see
        :func:`~repro.core.parallel.get_backend`).
    refit:
        Refit the best configuration on the full data after the search.
    event_log:
        Receives per-task ``fit``/``score`` spans, a ``refit`` span,
        and one ``search`` span for the whole sweep (with the Gram
        engine delta attributed to it).

    Attributes
    ----------
    best_params_, best_score_, best_index_:
        Winning parameter dict, its mean CV score, its candidate index.
    best_estimator_:
        The refit winner (when ``refit=True``).
    cv_results_:
        Dict of per-candidate arrays: ``params``, ``fold_test_scores``,
        ``mean_test_score``, ``std_test_score``, ``rank_test_score``,
        ``mean_fit_seconds``, ``mean_score_seconds``.
    """

    def __init__(self, estimator, param_grid, cv=None,
                 scorer: Callable = None, backend=None,
                 n_workers: int = None, retries: int = 1,
                 refit: bool = True, return_train_score: bool = False,
                 event_log: EventLog = None):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scorer = scorer
        self.backend = backend
        self.n_workers = n_workers
        self.retries = retries
        self.refit = refit
        self.return_train_score = return_train_score
        self.event_log = event_log

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y)
        candidates = list(ParameterGrid(self.param_grid))
        if not candidates:
            raise ValueError("param_grid yields no candidates")
        folds = _resolve_folds(self.cv, X, y)
        runner = get_backend(
            self.backend, n_workers=self.n_workers, retries=self.retries
        )
        engine = _task_engine(self.estimator)
        log = self.event_log

        def _run_search():
            payloads = []
            labels, metas = [], []
            for c, params in enumerate(candidates):
                for k, (train, test) in enumerate(folds):
                    payloads.append(
                        {
                            "estimator": self.estimator,
                            "params": params,
                            "X": X,
                            "y": y,
                            "train": train,
                            "test": test,
                            "scorer": self.scorer,
                            "return_train_score": self.return_train_score,
                        }
                    )
                    labels.append(f"candidate[{c}] fold[{k}]")
                    metas.append(
                        {"candidate": c, "fold": k, "params": dict(params)}
                    )
            results = runner.map(_fit_and_score, payloads)
            _emit_task_spans(log, results, labels, metas)
            return results

        if log is not None:
            with log.span(
                "search", label=f"grid[{len(candidates)}x{len(folds)}]",
                n_samples=len(X), engine=engine,
                backend=runner.name, n_candidates=len(candidates),
                n_folds=len(folds),
            ):
                results = _run_search()
        else:
            results = _run_search()

        n_folds = len(folds)
        fold_scores = np.array(
            [r["test_score"] for r in results]
        ).reshape(len(candidates), n_folds)
        means = fold_scores.mean(axis=1)
        # rank 1 = best; argmax tie-breaks on the lowest candidate index
        order = np.argsort(-means, kind="stable")
        ranks = np.empty(len(candidates), dtype=int)
        ranks[order] = np.arange(1, len(candidates) + 1)
        self.cv_results_ = {
            "params": candidates,
            "fold_test_scores": fold_scores,
            "mean_test_score": means,
            "std_test_score": fold_scores.std(axis=1),
            "rank_test_score": ranks,
            "mean_fit_seconds": np.array(
                [r["fit_seconds"] for r in results]
            ).reshape(len(candidates), n_folds).mean(axis=1),
            "mean_score_seconds": np.array(
                [r["score_seconds"] for r in results]
            ).reshape(len(candidates), n_folds).mean(axis=1),
        }
        if self.return_train_score:
            self.cv_results_["fold_train_scores"] = np.array(
                [r["train_score"] for r in results]
            ).reshape(len(candidates), n_folds)
        self.best_index_ = int(np.argmax(means))
        self.best_params_ = dict(candidates[self.best_index_])
        self.best_score_ = float(means[self.best_index_])
        self.n_splits_ = n_folds
        self.backend_name_ = runner.name

        if self.refit:
            winner = clone(self.estimator).set_params(**self.best_params_)
            start = time.perf_counter()
            if log is not None:
                with recording(log):
                    winner.fit(X, y)
                log.emit(
                    "refit", time.perf_counter() - start,
                    label="best_estimator", n_samples=len(X),
                    params=dict(self.best_params_),
                )
            else:
                winner.fit(X, y)
            self.best_estimator_ = winner
        return self

    # ------------------------------------------------------------------
    # fitted-winner passthrough
    # ------------------------------------------------------------------
    def _winner(self):
        check_fitted(self, "best_estimator_")
        return self.best_estimator_

    def predict(self, X):
        return self._winner().predict(X)

    def predict_proba(self, X):
        return self._winner().predict_proba(X)

    def decision_function(self, X):
        return self._winner().decision_function(X)

    def transform(self, X):
        return self._winner().transform(X)

    def score(self, X, y) -> float:
        return self._winner().score(X, y)

    @property
    def _estimator_kind(self):
        return getattr(self.estimator, "_estimator_kind", "estimator")


def grid_search(
    estimator,
    param_grid: Dict[str, Sequence],
    X,
    y,
    cv=None,
    scorer: Callable = None,
    backend=None,
):
    """Exhaustive hyper-parameter search (shim over :class:`GridSearchCV`).

    Returns ``(best_params, best_score, all_results)`` where
    ``all_results`` is a list of ``(params, mean_score)`` pairs and higher
    scores are better.
    """
    search = GridSearchCV(
        estimator, param_grid, cv=cv, scorer=scorer, backend=backend,
        refit=False,
    ).fit(X, y)
    results = list(
        zip(
            search.cv_results_["params"],
            [float(m) for m in search.cv_results_["mean_test_score"]],
        )
    )
    return search.best_params_, search.best_score_, results


# ---------------------------------------------------------------------
# Capacity and data-availability sweeps
# ---------------------------------------------------------------------

@dataclass
class ComplexityCurve:
    """Result of a Fig. 5 style capacity sweep."""

    parameter: str
    values: List = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def best_index(self) -> int:
        """Index of the complexity value with minimal validation error."""
        return int(np.argmin(self.validation_errors))

    def best_value(self):
        """Complexity value minimizing validation error."""
        return self.values[self.best_index()]

    def overfitting_detected(self) -> bool:
        """True when validation error rises past its minimum while
        training error keeps (weakly) falling — the Fig. 5 shape."""
        best = self.best_index()
        if best == len(self.values) - 1:
            return False
        after = self.validation_errors[best + 1 :]
        train_after = self.train_errors[best:]
        validation_rises = max(after) > self.validation_errors[best] + 1e-12
        train_not_rising = train_after[-1] <= self.train_errors[best] + 1e-9
        return bool(validation_rises and train_not_rising)

    def rows(self):
        """Rows ``(value, train_error, validation_error)`` for reporting."""
        return list(zip(self.values, self.train_errors, self.validation_errors))


def _default_error(model) -> Callable:
    kind = getattr(model, "_estimator_kind", "classifier")
    if kind == "regressor":
        return mean_squared_error
    return lambda t, p: 1.0 - accuracy(t, p)


def _curve_point(payload: dict) -> dict:
    """Fit one sweep point and return its train/validation errors."""
    model = payload["model"]
    model.fit(payload["X_train"], payload["y_train"])
    error = payload.get("error") or _default_error(model)
    return {
        "train": float(
            error(payload["y_train"], model.predict(payload["X_train"]))
        ),
        "validation": float(
            error(payload["y_val"], model.predict(payload["X_val"]))
        ),
    }


def complexity_curve(
    estimator_factory: Callable,
    parameter: str,
    values: Sequence,
    X_train,
    y_train,
    X_val,
    y_val,
    error: Callable = None,
    backend=None,
    n_workers: int = None,
) -> ComplexityCurve:
    """Sweep a capacity parameter and record train/validation error.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh estimator.
    parameter:
        Hyper-parameter name to sweep via ``set_params`` (nested names
        such as ``svc__C`` are supported).
    values:
        Capacity values, ordered from simplest to most complex.
    error:
        ``error(y_true, y_pred) -> float``; defaults to misclassification
        rate for classifiers and MSE for regressors.
    backend:
        Execution backend for the sweep points (see
        :func:`~repro.core.parallel.get_backend`); each point is an
        independent fit, so the sweep parallelizes candidate-wise.
    """
    curve = ComplexityCurve(parameter=parameter)
    payloads = [
        {
            "model": estimator_factory().set_params(**{parameter: value}),
            "X_train": X_train,
            "y_train": y_train,
            "X_val": X_val,
            "y_val": y_val,
            "error": error,
        }
        for value in values
    ]
    runner = get_backend(backend, n_workers=n_workers)
    for value, point in zip(values, runner.map(_curve_point, payloads)):
        curve.values.append(value)
        curve.train_errors.append(point["train"])
        curve.validation_errors.append(point["validation"])
    return curve


@dataclass
class LearningCurve:
    """Result of a data-availability sweep (Section 1's principle 2).

    How much data does the learning need before the result shows
    statistical significance?  The curve records validation error as a
    function of training-set size; the knee is where collecting more
    data stops paying.
    """

    sizes: List[int] = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    validation_errors: List[float] = field(default_factory=list)

    def rows(self):
        return list(zip(self.sizes, self.train_errors,
                        self.validation_errors))

    def knee_size(self, tolerance: float = 0.02) -> int:
        """Smallest size whose validation error is within *tolerance*
        of the best achieved — the data budget actually needed."""
        best = min(self.validation_errors)
        for size, error in zip(self.sizes, self.validation_errors):
            if error <= best + tolerance:
                return size
        return self.sizes[-1]


def learning_curve(
    estimator,
    X,
    y,
    sizes: Sequence[int],
    X_val,
    y_val,
    error: Callable = None,
    random_state=None,
    backend=None,
    n_workers: int = None,
) -> LearningCurve:
    """Fit clones of *estimator* on growing prefixes of shuffled data.

    Parameters
    ----------
    sizes:
        Training-set sizes to probe (each must be <= len(X)).
    error:
        ``error(y_true, y_pred) -> float``; defaults to
        misclassification rate / MSE by estimator kind.
    backend:
        Execution backend; sizes are independent fits and parallelize.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    rng = ensure_rng(random_state)
    order = rng.permutation(len(X))
    curve = LearningCurve()
    payloads = []
    resolved_sizes = []
    for size in sizes:
        size = int(size)
        if not 1 <= size <= len(X):
            raise ValueError(f"size {size} out of range [1, {len(X)}]")
        subset = order[:size]
        payloads.append(
            {
                "model": clone(estimator),
                "X_train": X[subset],
                "y_train": y[subset],
                "X_val": X_val,
                "y_val": y_val,
                "error": error,
            }
        )
        resolved_sizes.append(size)
    runner = get_backend(backend, n_workers=n_workers)
    for size, point in zip(
        resolved_sizes, runner.map(_curve_point, payloads)
    ):
        curve.sizes.append(size)
        curve.train_errors.append(point["train"])
        curve.validation_errors.append(point["validation"])
    return curve
