"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """Warning category for optimizers that stop before converging."""


class DataShapeError(ReproError, ValueError):
    """Raised when input arrays have inconsistent or invalid shapes."""


class WorkerError(ReproError):
    """Raised when a parallel task keeps failing after its retry budget.

    The original exception is chained as ``__cause__`` (where the
    process boundary allows); ``task_index`` identifies the failing task
    in submission order, ``attempts`` counts how many times it ran, and
    ``traceback_str`` carries the formatted traceback from the worker
    that last executed it — including remote workers, whose live
    traceback objects cannot cross the process boundary.

    Instances pickle faithfully (``__reduce__``) so the error itself can
    travel between processes, e.g. out of a nested backend.  The reduce
    tuple carries ``__dict__`` as explicit state: attributes stapled on
    after construction — the trampoline's ``_repro_traceback`` /
    ``_repro_spans``, a shard worker's provenance tags — survive not
    just one hop but a *second* round-trip, e.g. when a shard worker
    re-raises a pickled WorkerError into the driver's CheckpointStore
    merge.
    """

    def __init__(self, message: str, task_index: int = -1,
                 attempts: int = 1, traceback_str: str = ""):
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts
        self.traceback_str = traceback_str

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.task_index, self.attempts,
             self.traceback_str),
            dict(self.__dict__),
        )


class TaskTimeoutError(WorkerError):
    """Raised when a task exceeds its per-task ``timeout``.

    The hung worker is *abandoned*, not interrupted: the thread or
    process keeps running (process workers are additionally terminated)
    but its result is discarded.  ``abandoned`` distinguishes the task
    that actually overran its budget (``False``) from siblings that were
    still in flight when the batch was torn down (``True``).
    """

    def __init__(self, message: str, task_index: int = -1,
                 timeout: float = None, abandoned: bool = False,
                 attempts: int = 1, traceback_str: str = ""):
        super().__init__(message, task_index=task_index, attempts=attempts,
                         traceback_str=traceback_str)
        self.timeout = timeout
        self.abandoned = abandoned

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.task_index, self.timeout, self.abandoned,
             self.attempts, self.traceback_str),
            dict(self.__dict__),
        )


class DeadlineExceededError(ReproError):
    """Raised when a run-level :class:`~repro.core.resilience.Deadline`
    expires with tasks still pending.

    Unlike a per-task timeout, a deadline is never retried: it bounds
    the whole ``map`` call (or a whole search), so expiry aborts
    everything still in flight.
    """

    def __init__(self, message: str, pending=()):
        super().__init__(message)
        self.pending = tuple(pending)

    def __reduce__(self):
        return (type(self), (self.args[0], self.pending),
                dict(self.__dict__))


class CheckpointError(ReproError):
    """Raised when a checkpoint value cannot be encoded or decoded."""


class ServeError(ReproError):
    """Base class for online-scoring (``repro.serve``) failures.

    The scoring front end itself answers every request with a *typed
    response* rather than an exception; these classes exist for the
    programmatic surface (``ScoreResponse.raise_for_status()``, registry
    lookups) so callers who prefer exceptions get precise ones.
    """


class OverloadedError(ServeError):
    """A request was shed by admission control (token bucket, queue
    depth, or an already-doomed deadline) — the typed alternative to
    queueing work the service cannot finish in budget."""

    def __init__(self, message: str, reason: str = ""):
        super().__init__(message)
        self.reason = reason


class CircuitOpenError(ServeError):
    """The endpoint's circuit breaker is open and no degraded fallback
    is registered, so the request cannot be served right now."""


class RegistryError(ServeError):
    """A model registry lookup failed: unknown model name, unknown
    version, or a registry directory that is not one."""


class ShardError(ReproError):
    """Raised when a sharded run cannot be planned, executed to
    completion, or merged (missing shards, incomplete results, a run
    directory that does not match the submitted task list)."""
