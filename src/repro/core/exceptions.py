"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """Warning category for optimizers that stop before converging."""


class DataShapeError(ReproError, ValueError):
    """Raised when input arrays have inconsistent or invalid shapes."""
