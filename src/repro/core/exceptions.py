"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """Warning category for optimizers that stop before converging."""


class DataShapeError(ReproError, ValueError):
    """Raised when input arrays have inconsistent or invalid shapes."""


class WorkerError(ReproError):
    """Raised when a parallel task keeps failing after its retry budget.

    The original exception is chained as ``__cause__``; ``task_index``
    identifies the failing task in submission order.
    """

    def __init__(self, message: str, task_index: int = -1):
        super().__init__(message)
        self.task_index = task_index
