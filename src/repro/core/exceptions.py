"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """Warning category for optimizers that stop before converging."""


class DataShapeError(ReproError, ValueError):
    """Raised when input arrays have inconsistent or invalid shapes."""


class WorkerError(ReproError):
    """Raised when a parallel task keeps failing after its retry budget.

    The original exception is chained as ``__cause__`` (where the
    process boundary allows); ``task_index`` identifies the failing task
    in submission order, ``attempts`` counts how many times it ran, and
    ``traceback_str`` carries the formatted traceback from the worker
    that last executed it — including remote workers, whose live
    traceback objects cannot cross the process boundary.

    Instances pickle faithfully (``__reduce__``) so the error itself can
    travel between processes, e.g. out of a nested backend.
    """

    def __init__(self, message: str, task_index: int = -1,
                 attempts: int = 1, traceback_str: str = ""):
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts
        self.traceback_str = traceback_str

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.task_index, self.attempts,
             self.traceback_str),
        )


class TaskTimeoutError(WorkerError):
    """Raised when a task exceeds its per-task ``timeout``.

    The hung worker is *abandoned*, not interrupted: the thread or
    process keeps running (process workers are additionally terminated)
    but its result is discarded.  ``abandoned`` distinguishes the task
    that actually overran its budget (``False``) from siblings that were
    still in flight when the batch was torn down (``True``).
    """

    def __init__(self, message: str, task_index: int = -1,
                 timeout: float = None, abandoned: bool = False,
                 attempts: int = 1, traceback_str: str = ""):
        super().__init__(message, task_index=task_index, attempts=attempts,
                         traceback_str=traceback_str)
        self.timeout = timeout
        self.abandoned = abandoned

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.task_index, self.timeout, self.abandoned,
             self.attempts, self.traceback_str),
        )


class DeadlineExceededError(ReproError):
    """Raised when a run-level :class:`~repro.core.resilience.Deadline`
    expires with tasks still pending.

    Unlike a per-task timeout, a deadline is never retried: it bounds
    the whole ``map`` call (or a whole search), so expiry aborts
    everything still in flight.
    """

    def __init__(self, message: str, pending=()):
        super().__init__(message)
        self.pending = tuple(pending)

    def __reduce__(self):
        return (type(self), (self.args[0], self.pending))


class CheckpointError(ReproError):
    """Raised when a checkpoint value cannot be encoded or decoded."""
