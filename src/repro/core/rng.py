"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a ready-made
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three
into a ``Generator`` so downstream code never branches on the type.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(random_state=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *random_state*.

    Parameters
    ----------
    random_state:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from *rng*.

    Used when a component needs to hand reproducible-but-independent
    streams to sub-components (e.g. each tree in a random forest).
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
