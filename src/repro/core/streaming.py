"""Exact streaming moment accumulators for ``partial_fit`` paths.

The streaming contract for the sufficient-statistics estimators (naive
Bayes, nearest-centroid, streaming Mahalanobis) promises *bitwise*
batch-equivalence: feeding a dataset through ``partial_fit`` in any
micro-batching — including any permutation of the batches — yields the
same model, bit for bit, as one-shot ``fit`` on the concatenation.

Naive float accumulation cannot deliver that: float addition is not
associative, so sum order (which batching changes) perturbs the last
bits.  :class:`ExactMoments` eliminates the problem at the source.
Every IEEE-754 double is a dyadic rational, so ``Fraction(x)`` is exact;
sums and products of ``Fraction`` are exact and therefore independent of
accumulation order; and the final ``float(Fraction)`` conversion is
correctly rounded, hence deterministic.  The price is Python-object
arithmetic instead of vectorized numpy — acceptable for the micro-batch
sizes the test floor produces (see ``benchmarks/bench_perf_streaming.py``
for the throughput floor that keeps this honest).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

import numpy as np

from .base import as_2d_array

__all__ = ["ExactMoments"]

_ZERO = Fraction(0)


class ExactMoments:
    """Order-independent exact accumulator of per-feature moments.

    Accumulates the count, per-feature sums, optionally per-feature sums
    of squares, and optionally the full cross-product matrix, all as
    exact rationals.  Derived quantities (mean, variance, covariance)
    are computed in exact arithmetic and rounded to float once, at the
    very end — so they depend only on the *set* of rows seen, never on
    how those rows were batched or ordered.

    Parameters
    ----------
    n_features:
        Width of the rows this accumulator accepts.
    track_squares:
        Also accumulate per-feature sums of squares (needed for
        :meth:`variance`).
    track_cross:
        Also accumulate the symmetric cross-product matrix (needed for
        :meth:`covariance`).  Costs ``O(n_features^2)`` per row.
    """

    def __init__(self, n_features: int, track_squares: bool = False,
                 track_cross: bool = False):
        if n_features < 1:
            raise ValueError("n_features must be positive")
        self.n_features = int(n_features)
        self.count = 0
        self._sum: List[Fraction] = [_ZERO] * self.n_features
        self._sumsq: Optional[List[Fraction]] = (
            [_ZERO] * self.n_features if track_squares else None
        )
        # upper triangle only (j >= i); the matrix is symmetric
        self._cross: Optional[List[List[Fraction]]] = (
            [[_ZERO] * (self.n_features - i) for i in range(self.n_features)]
            if track_cross else None
        )

    # ------------------------------------------------------------------
    def update(self, X) -> "ExactMoments":
        """Fold a batch of rows into the accumulator, exactly."""
        X = as_2d_array(X)
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        columns = [list(map(Fraction, column.tolist())) for column in X.T]
        for j, values in enumerate(columns):
            self._sum[j] += sum(values, _ZERO)
            if self._sumsq is not None:
                self._sumsq[j] += sum((v * v for v in values), _ZERO)
        if self._cross is not None:
            for i in range(self.n_features):
                row = self._cross[i]
                left = columns[i]
                for j in range(i, self.n_features):
                    row[j - i] += sum(
                        (a * b for a, b in zip(left, columns[j])), _ZERO
                    )
        self.count += len(X)
        return self

    def merge(self, other: "ExactMoments") -> "ExactMoments":
        """Fold another accumulator's totals into this one, exactly."""
        if other.n_features != self.n_features:
            raise ValueError("cannot merge accumulators of different width")
        self._sum = [a + b for a, b in zip(self._sum, other._sum)]
        if self._sumsq is not None and other._sumsq is not None:
            self._sumsq = [a + b for a, b in zip(self._sumsq, other._sumsq)]
        if self._cross is not None and other._cross is not None:
            self._cross = [
                [a + b for a, b in zip(mine, theirs)]
                for mine, theirs in zip(self._cross, other._cross)
            ]
        self.count += other.count
        return self

    # ------------------------------------------------------------------
    def mean(self) -> np.ndarray:
        """Exact per-feature mean, rounded to float once."""
        if self.count == 0:
            raise ValueError("no rows accumulated")
        n = self.count
        return np.array([float(s / n) for s in self._sum])

    def variance(self, ddof: int = 0) -> np.ndarray:
        """Exact per-feature variance (``(n*S2 - S^2) / (n*(n-ddof))``).

        Returns zeros when ``count <= ddof`` (undefined denominator).
        """
        if self._sumsq is None:
            raise ValueError("accumulator was built without track_squares")
        if self.count == 0:
            raise ValueError("no rows accumulated")
        n = self.count
        if n <= ddof:
            return np.zeros(self.n_features)
        denominator = n * (n - ddof)
        return np.array([
            float((n * s2 - s * s) / denominator)
            for s, s2 in zip(self._sum, self._sumsq)
        ])

    def variance_exact(self, ddof: int = 0) -> List[Fraction]:
        """Per-feature variance as exact rationals (no float rounding)."""
        if self._sumsq is None:
            raise ValueError("accumulator was built without track_squares")
        if self.count == 0:
            raise ValueError("no rows accumulated")
        n = self.count
        if n <= ddof:
            return [_ZERO] * self.n_features
        denominator = n * (n - ddof)
        return [
            (n * s2 - s * s) / denominator
            for s, s2 in zip(self._sum, self._sumsq)
        ]

    def covariance(self, ddof: int = 1) -> np.ndarray:
        """Exact covariance matrix, rounded to float per entry.

        Returns zeros when ``count <= ddof``.
        """
        if self._cross is None:
            raise ValueError("accumulator was built without track_cross")
        if self.count == 0:
            raise ValueError("no rows accumulated")
        n = self.count
        d = self.n_features
        out = np.zeros((d, d))
        if n <= ddof:
            return out
        denominator = n * (n - ddof)
        for i in range(d):
            for j in range(i, d):
                value = float(
                    (n * self._cross[i][j - i] - self._sum[i] * self._sum[j])
                    / denominator
                )
                out[i, j] = value
                out[j, i] = value
        return out
