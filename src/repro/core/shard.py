"""Distributed sharded execution: a file-protocol backend for grids.

Everything the paper's campaigns fan out — grid search candidates,
the estimator×check conformance matrix, closure-campaign seeds — is a
list of independent tasks.  :mod:`repro.core.parallel` runs such lists
on one host; this module takes the same ``map`` contract across
*processes that share nothing but a filesystem*: N worker processes
(local children, ``repro workers`` on other machines, or both) claim
disjoint shards of the task list, execute them, and commit results
exactly once, while the driver merges everything back in deterministic
task order.

The protocol is four directories under one run directory:

- ``shards/shard-NNNNN.pkl`` — the work units.  Tasks are partitioned
  by their structural :func:`~repro.core.resilience.fingerprint`
  (``int(key, 16) % n_shards``), so the assignment depends only on task
  *content*, never on list order or worker scheduling, and a resumed
  run maps onto the identical shards.
- ``leases/shard-NNNNN.lease`` — mutual exclusion via
  :class:`~repro.core.resilience.LeaseFile`: atomic acquisition,
  heartbeat renewal on a background thread, and rename-based takeover
  of stale leases, so a SIGKILLed worker's shard is inherited by
  exactly one survivor.
- ``results/<task-key>.json`` — one atomic
  :class:`~repro.core.resilience.CheckpointStore` commit per task, made
  *as the task finishes*: a killed worker loses only in-flight work,
  and its inheritor skips the committed prefix.  Commits are keyed on
  the task fingerprint and idempotent, so even a duplicate-claim race
  (a stale owner reviving beside its inheritor) produces byte-identical
  commits, never divergent results.
- ``done/shard-NNNNN.json`` — per-shard completion markers with worker
  accounting, written after the shard's last commit.

The driver (:class:`ShardedBackend`) plans the run, optionally spawns
local workers, waits for completion (draining any orphaned shards
in-process if every worker dies), and merges results by task index —
so a grid, conformance matrix, or closure campaign run sharded is
bitwise-identical to the serial path and resumable after any worker
(or the driver itself) is SIGKILLed.

Telemetry: the driver emits ``shard.plan`` / ``shard.wait`` /
``shard.merge`` spans into the ambient EventLog and ``shard.*``
counters (runs, tasks, shards, claims, steals, commits,
duplicate_commits, resumed_tasks, worker_deaths, drains) into the
metrics registry; worker-local spans ship back inside the committed
records and merge into the driver's log tagged with their provenance,
exactly like the in-process backends.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import instrument
from .exceptions import (
    DeadlineExceededError,
    ShardError,
    TaskTimeoutError,
    WorkerError,
)
from .instrument import EventLog
from .parallel import (
    ExecutionBackend,
    _call_task,
    _format_traceback,
    _TaskOutcome,
    get_backend,
    register_backend,
    spawn_seeds,
)
from .resilience import CheckpointStore, Deadline, LeaseFile, RetryPolicy
from .resilience import fingerprint

__all__ = [
    "SHARD_WORKER_ENV",
    "ShardRecord",
    "ShardRun",
    "ShardedBackend",
    "create_run",
    "default_shard_root",
    "in_shard_worker",
    "partition_tasks",
    "run_worker",
    "shard_of_key",
    "spawn_local_workers",
    "task_keys",
]

SHARD_WORKER_ENV = "REPRO_SHARD_WORKER"
MANIFEST_NAME = "run.json"
CONFIG_NAME = "config.pkl"
DEFAULT_LEASE_TTL = 30.0


def in_shard_worker() -> bool:
    """Whether this process is a shard worker (set by the launchers)."""
    return os.environ.get(SHARD_WORKER_ENV) == "1"


def default_shard_root() -> str:
    """Default parent directory for auto-created run directories."""
    uid = getattr(os, "getuid", lambda: "u")()
    return os.path.join(tempfile.gettempdir(), f"repro-shard-runs-{uid}")


# ---------------------------------------------------------------------
# Deterministic partitioning
# ---------------------------------------------------------------------

def task_keys(fn: Callable, payloads: Sequence,
              seeds: Sequence) -> List[str]:
    """One structural fingerprint per task.

    The key pins everything that determines the task's result — the
    function, the payload, and the per-task seed — so it doubles as the
    exactly-once commit key and stays stable across runs, drivers, and
    machines.
    """
    return [
        fingerprint("shard-task", fn, payload, seed)
        for payload, seed in zip(payloads, seeds)
    ]


def shard_of_key(key: str, n_shards: int) -> int:
    """The shard a task key belongs to: ``int(key, 16) % n_shards``."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return int(key, 16) % n_shards


def partition_tasks(keys: Sequence[str],
                    n_shards: int) -> Dict[int, List[int]]:
    """Partition task indices into shards keyed on their fingerprints.

    Every index lands in exactly one shard; which shard depends only on
    the task's key, so permuting the task list permutes the *indices*
    inside shards but never moves a task between shards.  Empty shards
    are omitted.
    """
    shards: Dict[int, List[int]] = {}
    for index, key in enumerate(keys):
        shards.setdefault(shard_of_key(key, n_shards), []).append(index)
    return shards


# ---------------------------------------------------------------------
# Atomic small-file helpers
# ---------------------------------------------------------------------

def _atomic_write_bytes(path: str, payload: bytes) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp.", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_write_json(path: str, document: dict) -> None:
    import json

    _atomic_write_bytes(path, json.dumps(document, sort_keys=True).encode())


def _read_json(path: str) -> Optional[dict]:
    import json

    try:
        with open(path, "r") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None


# ---------------------------------------------------------------------
# The run directory
# ---------------------------------------------------------------------

class ShardRun:
    """Handle on a planned run directory (driver- and worker-side)."""

    def __init__(self, run_dir):
        self.run_dir = os.fspath(run_dir)
        manifest = _read_json(os.path.join(self.run_dir, MANIFEST_NAME))
        if manifest is None:
            raise ShardError(
                f"{self.run_dir} is not a shard run directory "
                f"(no readable {MANIFEST_NAME})"
            )
        self.manifest = manifest
        self._config = None

    # -- layout --------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self.manifest["run_id"]

    @property
    def n_tasks(self) -> int:
        return int(self.manifest["n_tasks"])

    def shard_path(self, shard_id: int) -> str:
        return os.path.join(
            self.run_dir, "shards", f"shard-{shard_id:05d}.pkl"
        )

    def lease_path(self, shard_id: int) -> str:
        return os.path.join(
            self.run_dir, "leases", f"shard-{shard_id:05d}.lease"
        )

    def done_path(self, shard_id: int) -> str:
        return os.path.join(
            self.run_dir, "done", f"shard-{shard_id:05d}.json"
        )

    def results_store(self) -> CheckpointStore:
        return CheckpointStore(
            os.path.join(self.run_dir, "results"), allow_pickle=True
        )

    def config(self) -> dict:
        if self._config is None:
            with open(os.path.join(self.run_dir, CONFIG_NAME), "rb") as fh:
                self._config = pickle.load(fh)
        return self._config

    # -- progress ------------------------------------------------------
    def shard_ids(self) -> List[int]:
        return sorted(int(s) for s in self.manifest["shards"])

    def is_done(self, shard_id: int) -> bool:
        return os.path.exists(self.done_path(shard_id))

    def done_ids(self) -> List[int]:
        return [s for s in self.shard_ids() if self.is_done(s)]

    def pending_ids(self) -> List[int]:
        return [s for s in self.shard_ids() if not self.is_done(s)]

    def all_done(self) -> bool:
        return not self.pending_ids()

    def worker_stats(self) -> dict:
        """Aggregate accounting from every shard's done marker."""
        totals = {
            "shards_done": 0, "committed": 0, "resumed": 0,
            "duplicate_commits": 0, "failed": 0, "claims": 0, "steals": 0,
        }
        workers = set()
        for shard_id in self.shard_ids():
            marker = _read_json(self.done_path(shard_id))
            if marker is None:
                continue
            totals["shards_done"] += 1
            for field in ("committed", "resumed", "duplicate_commits",
                          "failed", "claims", "steals"):
                totals[field] += int(marker.get(field, 0))
            if marker.get("worker"):
                workers.add(marker["worker"])
        totals["workers"] = sorted(workers)
        return totals

    # -- merge ---------------------------------------------------------
    def merge(self, raise_errors: bool = True) -> "MergeResult":
        """Reassemble results in deterministic task order.

        Raises :class:`ShardError` when any task result is missing
        (the run has not finished) and — with ``raise_errors`` — the
        lowest-indexed committed task failure, mirroring the in-process
        backends' submission-order raise semantics.
        """
        store = self.results_store()
        keys = self.manifest["task_keys"]
        results: List = [None] * len(keys)
        span_entries: List[Tuple[int, int, Optional[int], list]] = []
        errors: List[Tuple[int, BaseException]] = []
        missing: List[int] = []
        for index, key in enumerate(keys):
            record = store.get(key)
            if record is None:
                missing.append(index)
                continue
            if record.error is not None:
                errors.append((index, record.error))
                continue
            results[index] = record.value
            if record.spans:
                span_entries.append((
                    index, int(record.attempts or 1),
                    record.pid, list(record.spans),
                ))
        if missing:
            raise ShardError(
                f"run {self.run_id} is incomplete: {len(missing)} of "
                f"{len(keys)} task result(s) missing "
                f"(first missing task index {missing[0]}); "
                f"{len(self.pending_ids())} shard(s) not done"
            )
        merged = MergeResult(results, span_entries, errors,
                             self.worker_stats())
        if raise_errors and errors:
            raise min(errors, key=lambda item: item[0])[1]
        return merged

    def __repr__(self):
        return (
            f"ShardRun({self.run_dir!r}, {len(self.done_ids())}/"
            f"{len(self.shard_ids())} shards done)"
        )


class MergeResult:
    """Merged results plus worker-shipped telemetry and accounting."""

    def __init__(self, results, span_entries, errors, stats):
        self.results = results
        self.span_entries = span_entries
        self.errors = errors
        self.stats = stats


class ShardRecord:
    """One committed task result.

    Stored as a single opaque object so the CheckpointStore pickles it
    whole: task values round-trip *exactly* (tuples stay tuples, numpy
    scalars keep their dtype) — which is what makes the sharded merge
    bitwise-identical to the serial path.
    """

    def __init__(self, value=None, error=None, spans=None, pid=None,
                 attempts=1, worker=None):
        self.value = value
        self.error = error
        self.spans = spans
        self.pid = pid
        self.attempts = attempts
        self.worker = worker


# ---------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------

def create_run(root, fn: Callable, payloads: Sequence, *, seed=None,
               n_shards: int = 8, collect: bool = False,
               retry: Optional[RetryPolicy] = None, retries: int = 1,
               timeout: Optional[float] = None, deadline=None,
               lease_ttl: float = DEFAULT_LEASE_TTL,
               heartbeat_interval: Optional[float] = None,
               worker_backend: Optional[str] = None) -> ShardRun:
    """Plan a sharded run under ``<root>/<run_id>``.

    Idempotent: replanning the identical task list lands on the
    identical run directory, reuses any committed results, and never
    rewrites a shard file out from under a worker — which is what makes
    a SIGKILLed *driver* resumable too.
    """
    payloads = list(payloads)
    n = len(payloads)
    seeds: List[Optional[int]] = (
        [None] * n if seed is None else spawn_seeds(seed, n)
    )
    keys = task_keys(fn, payloads, seeds)
    n_shards = max(1, int(n_shards))
    run_id = fingerprint("shard-run", keys, n_shards)
    run_dir = os.path.join(os.fspath(root), run_id)
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        run = ShardRun(run_dir)
        if run.manifest["task_keys"] != keys:  # pragma: no cover - paranoia
            raise ShardError(
                f"run directory {run_dir} holds a different task list"
            )
        return run
    for sub in ("shards", "leases", "done", "results"):
        os.makedirs(os.path.join(run_dir, sub), exist_ok=True)
    shards = partition_tasks(keys, n_shards)
    for shard_id, indices in shards.items():
        _atomic_write_bytes(
            os.path.join(run_dir, "shards", f"shard-{shard_id:05d}.pkl"),
            pickle.dumps({
                "shard": shard_id,
                "fn": fn,
                "tasks": [
                    (i, keys[i], payloads[i], seeds[i]) for i in indices
                ],
            }),
        )
    deadline = Deadline.resolve(deadline)
    config = {
        "retry": retry,
        "retries": int(retries),
        "timeout": timeout,
        "deadline_wall": (
            time.time() + deadline.remaining()
            if deadline is not None else None
        ),
        "lease_ttl": float(lease_ttl),
        "heartbeat_interval": heartbeat_interval,
        "worker_backend": worker_backend,
        "collect": bool(collect),
    }
    _atomic_write_bytes(
        os.path.join(run_dir, CONFIG_NAME), pickle.dumps(config)
    )
    # the manifest lands last: a directory with run.json is complete
    _atomic_write_json(manifest_path, {
        "version": 1,
        "run_id": run_id,
        "n_tasks": n,
        "n_shards": n_shards,
        "collect": bool(collect),
        "created_at": time.time(),
        "fn": f"{getattr(fn, '__module__', '?')}."
              f"{getattr(fn, '__qualname__', repr(fn))}",
        "task_keys": keys,
        "shards": {str(s): len(ix) for s, ix in sorted(shards.items())},
    })
    return ShardRun(run_dir)


# ---------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------

class _SeededTask:
    """Picklable adapter binding a task's seed for an inner backend."""

    def __init__(self, fn, seed):
        self.fn = fn
        self.seed = seed

    def __call__(self, payload):
        if self.seed is None:
            return self.fn(payload)
        return self.fn(payload, seed=self.seed)


class _Heartbeat(threading.Thread):
    """Renews a lease in the background; flags when ownership is lost."""

    def __init__(self, lease: LeaseFile, interval: float):
        super().__init__(name=f"lease-heartbeat[{lease.path}]", daemon=True)
        self.lease = lease
        self.interval = max(0.01, float(interval))
        self.lost = False
        # NB: not "_stop" — threading.Thread claims that name internally
        self._halt = threading.Event()

    def run(self):
        while not self._halt.wait(self.interval):
            if not self.lease.renew():
                self.lost = True
                return

    def stop(self):
        self._halt.set()
        self.join(timeout=5.0)


def _run_task(fn, payload, seed, policy: RetryPolicy, index: int,
              collect: bool, deadline: Optional[Deadline],
              timeout: Optional[float],
              worker_backend: Optional[str]):
    """Execute one task with the retry/timeout/deadline machinery.

    Returns ``(value_or_outcome, attempts)``; raises
    :class:`WorkerError` (with the *global* task index) once the retry
    budget is exhausted.
    """
    if worker_backend is not None:
        # delegate retry/timeout enforcement to an inner in-process
        # backend; re-key its task-0 provenance onto the global index
        inner = get_backend(
            worker_backend, n_workers=1, retry=policy, timeout=timeout,
            deadline=deadline,
        )
        try:
            if collect:
                local = EventLog()
                with instrument.recording(local):
                    value = inner.map(_SeededTask(fn, seed), [payload])[0]
                spans = local.spans()
                for record in spans:
                    record.meta["task_index"] = index
                    record.meta["backend"] = "sharded"
                return _TaskOutcome(value, spans, os.getpid()), 1
            return inner.map(_SeededTask(fn, seed), [payload])[0], 1
        except TaskTimeoutError as error:
            error.task_index = index
            raise
        except WorkerError as error:
            raise WorkerError(
                f"task {index} failed on the sharded backend after "
                f"{error.attempts} attempt(s): {error.args[0]}",
                task_index=index, attempts=error.attempts,
                traceback_str=error.traceback_str,
            ) from error
    attempt = 0
    while True:
        attempt += 1
        try:
            return _call_task(fn, payload, seed, collect), attempt
        except Exception as error:  # noqa: BLE001 — policy-routed
            if deadline is not None and deadline.expired():
                raise DeadlineExceededError(
                    f"deadline expired while task {index} was retrying "
                    f"on the sharded backend",
                    pending=[index],
                ) from error
            if not policy.should_retry(error, attempt):
                raise WorkerError(
                    f"task {index} failed on the sharded backend after "
                    f"{attempt} attempt(s): {error!r}",
                    task_index=index, attempts=attempt,
                    traceback_str=_format_traceback(error),
                ) from error
            delay = policy.delay(index, attempt)
            instrument.emit(
                "retry", delay, label=f"task[{index}]", task=index,
                attempt=attempt, backend="sharded", error=repr(error),
            )
            if delay > 0.0:
                time.sleep(delay)


def _install_stop_handlers(stop_event: threading.Event):
    """Route SIGTERM/SIGINT into *stop_event*; returns an undo callable.

    Signal handlers only install from the main thread; elsewhere this
    is a no-op (the caller can still set the event programmatically).
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = {}

    def _handler(signum, frame):  # noqa: ARG001 — signal signature
        stop_event.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover — exotic hosts
            pass

    def _undo():
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return _undo


def _execute_shard(run: ShardRun, shard_id: int, lease: LeaseFile,
                   store: CheckpointStore, policy: RetryPolicy,
                   config: dict, stats: dict,
                   deadline: Optional[Deadline],
                   heartbeat_interval: float,
                   stop_event: Optional[threading.Event] = None) -> bool:
    """Run one claimed shard to completion; True when the done marker
    was written (False: lease lost or deadline expired mid-shard)."""
    metrics = instrument.metrics_registry()
    with open(run.shard_path(shard_id), "rb") as fh:
        shard = pickle.load(fh)
    fn = shard["fn"]
    collect = bool(config.get("collect"))
    started = time.perf_counter()
    marker = {
        "shard": shard_id, "worker": lease.owner,
        "n_tasks": len(shard["tasks"]),
        "committed": 0, "resumed": 0, "duplicate_commits": 0, "failed": 0,
        "claims": stats.pop("_claim", 0), "steals": stats.pop("_steal", 0),
    }
    heartbeat = _Heartbeat(lease, heartbeat_interval)
    heartbeat.start()
    try:
        for index, key, payload, seed in shard["tasks"]:
            if heartbeat.lost:
                stats["abandoned_shards"] += 1
                metrics.increment("shard.abandoned")
                return False
            if deadline is not None and deadline.expired():
                return False
            if stop_event is not None and stop_event.is_set():
                # graceful shutdown: the task just committed is durable,
                # the rest of the shard goes back to the fleet when our
                # lease is released by the caller
                stats["stopped"] = True
                metrics.increment("shard.graceful_stops")
                return False
            if key in store:
                marker["resumed"] += 1
                stats["resumed"] += 1
                metrics.increment("shard.resumed_tasks")
                continue
            record = ShardRecord(worker=lease.owner)
            try:
                value, attempts = _run_task(
                    fn, payload, seed, policy, index, collect, deadline,
                    config.get("timeout"), config.get("worker_backend"),
                )
                record.attempts = attempts
                if isinstance(value, _TaskOutcome):
                    record.value = value.value
                    record.spans = value.spans
                    record.pid = value.pid
                else:
                    record.value = value
            except DeadlineExceededError:
                return False
            except Exception as error:  # noqa: BLE001 — merged later
                record.error = error
                record.attempts = getattr(error, "attempts", 1)
                marker["failed"] += 1
                stats["failed"] += 1
                metrics.increment("shard.failed_tasks")
            duplicate = key in store
            store.put(key, record)
            if duplicate:
                marker["duplicate_commits"] += 1
                stats["duplicate_commits"] += 1
                metrics.increment("shard.duplicate_commits")
            else:
                marker["committed"] += 1
                stats["committed"] += 1
                metrics.increment("shard.commits")
    finally:
        heartbeat.stop()
    marker["elapsed_seconds"] = time.perf_counter() - started
    _atomic_write_json(run.done_path(shard_id), marker)
    stats["shards_done"] += 1
    return True


def run_worker(run_dir, worker_id: Optional[str] = None, *, wait: bool = True,
               poll: float = 0.05, lease_ttl: Optional[float] = None,
               heartbeat_interval: Optional[float] = None,
               deadline=None, max_shards: Optional[int] = None,
               startup_timeout: float = 30.0,
               stop_event: Optional[threading.Event] = None,
               install_signal_handlers: bool = False) -> dict:
    """Claim and execute shards of one run until it completes.

    The worker loop: scan for shards without a done marker, claim one
    (fresh lease, or steal a stale one), execute its tasks through the
    retry/deadline machinery with exactly-once commits, write the done
    marker, release the lease.  With ``wait=True`` (the default) the
    worker keeps polling — and taking over stale leases — until every
    shard is done, so a fleet of workers is self-healing: any survivor
    finishes a dead sibling's work.  ``wait=False`` exits as soon as
    nothing is claimable (the ``repro workers --once`` mode).

    Graceful shutdown: when *stop_event* (a ``threading.Event``) is set
    — or, with ``install_signal_handlers=True``, when the process
    receives SIGTERM/SIGINT — the worker finishes the task it is
    executing, commits it, releases its current lease, and returns its
    stats with ``stopped=True``.  Released shards are re-claimable
    immediately, so a drained worker never strands work behind a lease
    that has to go stale first.

    Returns the worker's accounting dict.
    """
    run_dir = os.fspath(run_dir)
    give_up = time.monotonic() + max(0.0, startup_timeout)
    while True:
        try:
            run = ShardRun(run_dir)
            break
        except ShardError:
            if time.monotonic() >= give_up:
                raise
            time.sleep(min(poll, 0.2))
    config = run.config()
    worker_id = worker_id or (
        f"{os.uname().nodename if hasattr(os, 'uname') else 'host'}-"
        f"{os.getpid()}"
    )
    ttl = float(lease_ttl if lease_ttl is not None
                else config.get("lease_ttl", DEFAULT_LEASE_TTL))
    interval = float(
        heartbeat_interval if heartbeat_interval is not None
        else config.get("heartbeat_interval") or max(ttl / 4.0, 0.02)
    )
    if deadline is None and config.get("deadline_wall") is not None:
        remaining = config["deadline_wall"] - time.time()
        deadline = Deadline(max(remaining, 1e-3))
    deadline = Deadline.resolve(deadline)
    policy = config.get("retry") or RetryPolicy.from_retries(
        int(config.get("retries", 1))
    )
    store = run.results_store()
    metrics = instrument.metrics_registry()
    stats = {
        "worker": worker_id, "run_id": run.run_id, "claims": 0,
        "steals": 0, "shards_done": 0, "committed": 0, "resumed": 0,
        "duplicate_commits": 0, "failed": 0, "abandoned_shards": 0,
        "stopped": False,
    }
    stop_event = stop_event or threading.Event()
    undo_handlers = (
        _install_stop_handlers(stop_event) if install_signal_handlers
        else (lambda: None)
    )
    # start each worker's scan at a different offset so a fleet spreads
    # over the shard list instead of stampeding the same lease
    offset = int(fingerprint("worker-offset", worker_id)[:8], 16)
    try:
        while True:
            if stop_event.is_set():
                stats["stopped"] = True
                metrics.increment("shard.graceful_stops")
                break
            pending = run.pending_ids()
            if not pending:
                break
            if deadline is not None and deadline.expired():
                break
            claimed = None
            rotated = pending[offset % len(pending):] \
                + pending[:offset % len(pending)]
            for shard_id in rotated:
                lease = LeaseFile(
                    run.lease_path(shard_id), owner=worker_id, ttl=ttl
                )
                if lease.acquire():
                    stats["claims"] += 1
                    stats["_claim"] = 1
                    metrics.increment("shard.claims")
                    claimed = (shard_id, lease)
                    break
                if lease.steal():
                    stats["steals"] += 1
                    stats["_steal"] = 1
                    metrics.increment("shard.steals")
                    claimed = (shard_id, lease)
                    break
            if claimed is None:
                if not wait:
                    break
                # poll in small slices so a stop request interrupts the
                # idle wait promptly, not after a full poll interval
                stop_event.wait(poll)
                continue
            shard_id, lease = claimed
            try:
                if run.is_done(shard_id):
                    # previous owner finished it but died before releasing
                    stats.pop("_claim", None)
                    stats.pop("_steal", None)
                    continue
                _execute_shard(
                    run, shard_id, lease, store, policy, config, stats,
                    deadline, interval, stop_event,
                )
            finally:
                lease.release()
            if max_shards is not None \
                    and stats["shards_done"] >= max_shards:
                break
    finally:
        undo_handlers()
    return stats


def _worker_entry(run_dir: str, worker_id: str) -> None:
    """Entry point for spawned local worker processes."""
    os.environ[SHARD_WORKER_ENV] = "1"
    # each worker process owns its main thread, so SIGTERM/SIGINT from
    # a supervisor drains the worker gracefully (finish task, release
    # lease) instead of stranding a live lease until it goes stale
    run_worker(
        run_dir, worker_id=worker_id, wait=True,
        install_signal_handlers=True,
    )


def spawn_local_workers(run_dir, n_workers: int,
                        context: Optional[str] = None) -> list:
    """Launch *n_workers* local worker processes attached to *run_dir*.

    Uses the ``fork`` start method where available (workers inherit
    ``sys.path``, so task functions defined in driver-side modules
    resolve), falling back to ``spawn``.  Returns the started
    ``multiprocessing.Process`` handles; callers own join/terminate.
    """
    if context is None:
        methods = multiprocessing.get_all_start_methods()
        context = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(context)
    run_dir = os.fspath(run_dir)
    processes = []
    for i in range(int(n_workers)):
        process = ctx.Process(
            target=_worker_entry,
            args=(run_dir, f"w{i}-{os.getpid()}"),
            name=f"repro-shard-worker-{i}",
        )
        process.start()
        processes.append(process)
    instrument.metrics_registry().increment(
        "shard.workers_spawned", len(processes)
    )
    return processes


# ---------------------------------------------------------------------
# Driver side: the backend
# ---------------------------------------------------------------------

class ShardedBackend(ExecutionBackend):
    """Run tasks as shards claimed by independent worker processes.

    Drop-in for every ``backend=`` seam (``GridSearchCV``,
    ``cross_validate``, ``run_conformance``, ``run_campaign``): the
    ``map`` contract — deterministic ordering, per-task index seeding,
    retry policies, deadlines — is identical to the in-process
    backends, and merged results are bitwise-identical to the serial
    path.  Unlike those backends, the unit of failure is a whole worker
    *process*: any worker (or the driver) may be SIGKILLed and the run
    still completes, via stale-lease takeover plus per-task
    exactly-once commits, or resumes when re-submitted against the same
    ``root``.

    Parameters (beyond the shared :class:`ExecutionBackend` ones)
    ----------
    n_shards:
        Work units to partition into (default ``4 × workers``; more
        shards = finer takeover/resume granularity).
    root:
        Parent directory for run directories — point workers on other
        machines at the same shared-filesystem path.  Default: a
        per-user directory under the system temp dir.
    worker_backend:
        Optional in-process backend name each worker executes its tasks
        through ("thread"/"process" enforce per-task ``timeout``;
        default ``None`` runs tasks directly, like the serial backend).
    lease_ttl / heartbeat_interval:
        Staleness threshold and renewal cadence for shard leases.
    spawn:
        Launch local worker processes (default).  ``spawn=False`` plans
        the run and waits for external workers (``repro workers``).
    drain:
        Execute leftover shards in the driver process if every worker
        exits with work pending (default True) — the run then completes
        even if all workers are killed.
    cleanup:
        Remove the run directory after a fully successful merge.
        Default: only when ``root`` was auto-chosen.
    """

    name = "sharded"

    def __init__(self, n_workers: Optional[int] = None, retries: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None, deadline=None, *,
                 n_shards: Optional[int] = None, root=None,
                 worker_backend: Optional[str] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 heartbeat_interval: Optional[float] = None,
                 poll: float = 0.02, spawn: bool = True,
                 drain: bool = True, cleanup: Optional[bool] = None):
        super().__init__(n_workers=n_workers, retries=retries, retry=retry,
                         timeout=timeout, deadline=deadline)
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.root = None if root is None else os.fspath(root)
        self.worker_backend = worker_backend
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_interval = heartbeat_interval
        self.poll = float(poll)
        self.spawn = bool(spawn)
        self.drain = bool(drain)
        self.cleanup = cleanup

    def resolved_workers(self) -> int:
        if self.n_workers is None:
            return max(min(os.cpu_count() or 1, 4), 2)
        return super().resolved_workers()

    def resolved_shards(self, n_tasks: int) -> int:
        if self.n_shards is not None:
            return int(self.n_shards)
        return max(1, min(int(n_tasks), 4 * self.resolved_workers()))

    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Sequence, seed=None) -> list:
        payloads = list(payloads)
        n = len(payloads)
        if n == 0:
            return []
        log = instrument.current_log()
        collect = log is not None
        metrics = instrument.metrics_registry()
        metrics.increment("parallel.tasks", n)
        metrics.increment(f"parallel.{self.name}.tasks", n)
        deadline = Deadline.resolve(self.deadline)
        root = self.root or default_shard_root()
        cleanup = (self.root is None) if self.cleanup is None \
            else bool(self.cleanup)

        started = time.perf_counter()
        run = create_run(
            root, fn, payloads, seed=seed,
            n_shards=self.resolved_shards(n), collect=collect,
            retry=self.retry, retries=self.retries, timeout=self.timeout,
            deadline=deadline, lease_ttl=self.lease_ttl,
            heartbeat_interval=self.heartbeat_interval,
            worker_backend=self.worker_backend,
        )
        metrics.increment("shard.runs")
        metrics.increment("shard.tasks", n)
        metrics.increment("shard.shards", len(run.shard_ids()))
        instrument.emit(
            "shard.plan", time.perf_counter() - started,
            label=f"run[{run.run_id[:8]}]", backend=self.name,
            n_tasks=n, n_shards=len(run.shard_ids()),
        )

        started = time.perf_counter()
        workers: list = []
        try:
            if self.spawn and not run.all_done():
                workers = spawn_local_workers(
                    run.run_dir, self.resolved_workers()
                )
            self._wait(run, workers, deadline, metrics)
        finally:
            for process in workers:
                if process.is_alive():
                    process.terminate()
            for process in workers:
                process.join(timeout=5.0)
        instrument.emit(
            "shard.wait", time.perf_counter() - started,
            label=f"run[{run.run_id[:8]}]", backend=self.name,
            n_workers=len(workers),
        )

        started = time.perf_counter()
        merged = run.merge(raise_errors=False)
        stats = merged.stats
        for field, metric in (
            ("committed", "shard.merged_commits"),
            ("resumed", "shard.merged_resumed"),
            ("duplicate_commits", "shard.merged_duplicates"),
            ("steals", "shard.merged_steals"),
        ):
            if stats.get(field):
                metrics.increment(metric, stats[field])
        if collect and merged.span_entries:
            spans = []
            for index, attempts, pid, entry in merged.span_entries:
                spans.extend(self._tag_spans(entry, index, attempts, pid))
            log.extend(spans)
        instrument.emit(
            "shard.merge", time.perf_counter() - started,
            label=f"run[{run.run_id[:8]}]", backend=self.name,
            n_tasks=n, resumed=stats.get("resumed", 0),
            duplicates=stats.get("duplicate_commits", 0),
        )
        if merged.errors:
            raise min(merged.errors, key=lambda item: item[0])[1]
        if cleanup:
            shutil.rmtree(run.run_dir, ignore_errors=True)
        return merged.results

    # ------------------------------------------------------------------
    def _wait(self, run: ShardRun, workers: list, deadline,
              metrics) -> None:
        """Poll for completion; drain in-process if every worker dies."""
        counted: set = set()
        drained = False
        while not run.all_done():
            if deadline is not None and deadline.expired():
                raise DeadlineExceededError(
                    f"deadline of {deadline.seconds}s expired with "
                    f"{len(run.pending_ids())} shard(s) pending on the "
                    f"{self.name} backend",
                    pending=run.pending_ids(),
                )
            alive = [w for w in workers if w.is_alive()]
            for process in workers:
                if (not process.is_alive()
                        and process.exitcode not in (0, None)
                        and id(process) not in counted):
                    counted.add(id(process))
                    metrics.increment("shard.worker_deaths")
            if not alive:
                if not self.drain:
                    if workers:
                        raise ShardError(
                            f"every local worker exited with "
                            f"{len(run.pending_ids())} shard(s) pending "
                            f"and drain=False"
                        )
                    # spawn=False and no external worker has finished
                    # the run yet: keep waiting
                    time.sleep(self.poll)
                    continue
                if drained:
                    raise ShardError(
                        f"driver drain finished but {run.pending_ids()} "
                        f"shard(s) are still pending"
                    )
                drained = True
                metrics.increment("shard.drains")
                run_worker(
                    run.run_dir, worker_id=f"driver-{os.getpid()}",
                    wait=True, poll=self.poll, deadline=deadline,
                    lease_ttl=self.lease_ttl,
                    heartbeat_interval=self.heartbeat_interval,
                )
                continue
            time.sleep(self.poll)

    def __repr__(self):
        return (
            f"ShardedBackend(n_workers={self.n_workers}, "
            f"n_shards={self.n_shards}, root={self.root!r}, "
            f"retries={self.retries})"
        )


register_backend("sharded", ShardedBackend, aliases=("shards",))
