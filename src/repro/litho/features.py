"""Histogram features for layout clips — the HI-kernel representation.

[13] compares layout clips with the Histogram Intersection kernel, so
each clip must be reduced to histograms that capture the
printability-relevant geometry: local pattern density (resolution
interactions are density-driven) and run-length structure (pitch and
line width).  The clip itself never needs to become a fixed geometric
feature vector — the paper's point about kernel-based learning.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def density_histogram(clip: np.ndarray, block: int = 4,
                      n_bins: int = 8) -> np.ndarray:
    """Histogram of local pattern density over ``block x block`` tiles."""
    clip = np.asarray(clip, dtype=float)
    if clip.ndim != 2:
        raise ValueError("clip must be 2-D")
    rows, cols = clip.shape
    densities = []
    for top in range(0, rows - block + 1, block):
        for left in range(0, cols - block + 1, block):
            densities.append(
                clip[top : top + block, left : left + block].mean()
            )
    histogram, _ = np.histogram(
        densities, bins=n_bins, range=(0.0, 1.0 + 1e-9)
    )
    return histogram.astype(float)


def run_length_histogram(clip: np.ndarray, max_run: int = 8) -> np.ndarray:
    """Histogram of horizontal and vertical metal run lengths.

    Runs longer than *max_run* land in the final bin.  Short runs mean
    fine pitch — the litho-critical regime.
    """
    clip = (np.asarray(clip) > 0).astype(int)
    histogram = np.zeros(max_run, dtype=float)

    def scan(lines):
        for line in lines:
            run = 0
            for value in line:
                if value:
                    run += 1
                elif run:
                    histogram[min(run, max_run) - 1] += 1
                    run = 0
            if run:
                histogram[min(run, max_run) - 1] += 1

    scan(clip)
    scan(clip.T)
    return histogram


def edge_histogram(clip: np.ndarray, n_bins: int = 6) -> np.ndarray:
    """Histogram of per-row/column edge (transition) counts.

    Many transitions per scanline = dense gratings; line-end corners
    also raise the count.
    """
    clip = (np.asarray(clip) > 0).astype(int)
    row_edges = np.abs(np.diff(clip, axis=1)).sum(axis=1)
    col_edges = np.abs(np.diff(clip, axis=0)).sum(axis=0)
    counts = np.concatenate([row_edges, col_edges])
    histogram, _ = np.histogram(
        counts, bins=n_bins, range=(0, max(int(counts.max()), n_bins) + 1)
    )
    return histogram.astype(float)


def smoothed_density_histogram(clip: np.ndarray, radius: int,
                               n_bins: int = 10) -> np.ndarray:
    """Histogram of box-smoothed pattern density at one radius.

    Smoothing radii bracketing the optical interaction range put the
    litho-critical *intermediate* densities (features near the
    resolution limit) into their own bins — the domain knowledge the
    paper says belongs in the kernel/feature module.
    """
    from scipy.ndimage import uniform_filter

    clip = np.asarray(clip, dtype=float)
    if clip.ndim != 2:
        raise ValueError("clip must be 2-D")
    if radius < 1:
        raise ValueError("radius must be positive")
    smoothed = uniform_filter(clip, radius)
    histogram, _ = np.histogram(
        smoothed, bins=n_bins, range=(0.0, 1.0 + 1e-9)
    )
    return histogram.astype(float)


def clip_histogram_features(clip: np.ndarray) -> np.ndarray:
    """Concatenated multi-scale histograms for one clip.

    Smoothed-density histograms at three radii bracket the optical
    interaction range; run-length and edge histograms capture pitch and
    perimeter.  Each component histogram is normalized to unit mass
    before concatenation so no component dominates the HI kernel's
    overlap.
    """
    components = [
        smoothed_density_histogram(clip, radius=3),
        smoothed_density_histogram(clip, radius=5),
        smoothed_density_histogram(clip, radius=9),
        run_length_histogram(clip),
        edge_histogram(clip),
    ]
    normalized = []
    for histogram in components:
        mass = histogram.sum()
        normalized.append(histogram / mass if mass > 0 else histogram)
    return np.concatenate(normalized)


def histogram_feature_matrix(clips: Sequence[np.ndarray]) -> np.ndarray:
    """Stack clip histograms into the matrix the HI kernel consumes."""
    features: List[np.ndarray] = [clip_histogram_features(c) for c in clips]
    return np.array(features)
