"""Fast layout-variability prediction — the Fig. 8/Fig. 9 flow ([13]).

Train on windows labelled by the lithography simulator (slow, golden),
then predict variability for new windows directly from their histogram
features with an HI-kernel SVM — the "fast prediction" of Fig. 9.  Both
the supervised (binary SVC) and the one-class variants the paper
mentions are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.metrics import precision_recall_f1, roc_auc
from ..kernels.histogram import HistogramIntersectionKernel
from ..learn.one_class_svm import OneClassSVM
from ..learn.svm import SVC
from .features import histogram_feature_matrix
from .layout import Layout, window_grid
from .simulator import LithographySimulator


@dataclass
class VariabilityPredictionReport:
    """Fig. 9-style accuracy summary of model vs. simulation."""

    n_train: int
    n_test: int
    n_true_hotspots: int
    n_predicted_hotspots: int
    precision: float
    recall: float
    f1: float
    auc: float

    def rows(self) -> List[Tuple[str, float]]:
        return [
            ("train windows", self.n_train),
            ("test windows", self.n_test),
            ("true hotspots", self.n_true_hotspots),
            ("predicted hotspots", self.n_predicted_hotspots),
            ("precision", self.precision),
            ("recall", self.recall),
            ("f1", self.f1),
            ("auc", self.auc),
        ]


class VariabilityPredictor:
    """HI-kernel model M for fast variability prediction.

    Parameters
    ----------
    mode:
        ``"svc"`` — binary SVM on good/bad windows (the main [13]
        configuration); ``"one_class"`` — one-class SVM trained on good
        windows only, flagging departures as potential hotspots.
    """

    def __init__(self, mode: str = "svc", C: float = 20.0, nu: float = 0.15,
                 random_state=None):
        if mode not in ("svc", "one_class"):
            raise ValueError("mode must be 'svc' or 'one_class'")
        self.mode = mode
        self.C = C
        self.nu = nu
        self.random_state = random_state
        self.kernel = HistogramIntersectionKernel(normalize=True)
        self._model = None

    def fit(self, clips, labels) -> "VariabilityPredictor":
        """Train on clips with simulator labels (1 = high variability)."""
        H = histogram_feature_matrix(clips)
        labels = np.asarray(labels)
        if self.mode == "svc":
            if len(np.unique(labels)) < 2:
                raise ValueError("svc mode needs both classes in training")
            self._model = SVC(
                kernel=self.kernel, C=self.C, random_state=self.random_state
            )
            self._model.fit(H, labels)
        else:
            good = H[labels == 0]
            if len(good) == 0:
                raise ValueError("one_class mode needs good windows")
            self._model = OneClassSVM(kernel=self.kernel, nu=self.nu)
            self._model.fit(good)
        return self

    def decision_function(self, clips) -> np.ndarray:
        """Higher = more likely hotspot."""
        if self._model is None:
            raise RuntimeError("predictor is not fitted")
        H = histogram_feature_matrix(clips)
        if self.mode == "svc":
            scores = self._model.decision_function(H)
            # orient so that the hotspot class scores positive
            if self._model.classes_[1] != 1:
                scores = -scores
            return scores
        return self._model.novelty_score(H)

    def predict(self, clips) -> np.ndarray:
        """1 = predicted high-variability window."""
        return (self.decision_function(clips) >= 0.0).astype(int)


def run_variability_experiment(
    train_layout: Layout,
    test_layout: Layout,
    simulator: LithographySimulator = None,
    window_size: int = 32,
    stride: int = 8,
    mode: str = "svc",
    random_state=None,
) -> Tuple[VariabilityPredictionReport, Dict[str, np.ndarray]]:
    """Fig. 9 end-to-end: simulate, train, predict, compare.

    Returns the accuracy report plus the raw per-window arrays
    (anchors, truth, prediction scores) so callers can render the
    hotspot-map comparison.
    """
    simulator = simulator or LithographySimulator()
    train_anchors, train_clips = window_grid(train_layout, window_size, stride)
    _, train_labels = simulator.label_windows(
        train_layout, train_anchors, window_size
    )
    predictor = VariabilityPredictor(mode=mode, random_state=random_state)
    predictor.fit(train_clips, train_labels)

    test_anchors, test_clips = window_grid(test_layout, window_size, stride)
    _, test_labels = simulator.label_windows(
        test_layout, test_anchors, window_size
    )
    scores = predictor.decision_function(test_clips)
    predictions = (scores >= 0.0).astype(int)

    precision, recall, f1 = precision_recall_f1(test_labels, predictions)
    try:
        auc_value = roc_auc(test_labels, scores)
    except ValueError:
        auc_value = float("nan")
    report = VariabilityPredictionReport(
        n_train=len(train_clips),
        n_test=len(test_clips),
        n_true_hotspots=int(test_labels.sum()),
        n_predicted_hotspots=int(predictions.sum()),
        precision=precision,
        recall=recall,
        f1=f1,
        auc=auc_value,
    )
    details = {
        "anchors": np.array(test_anchors),
        "truth": test_labels,
        "scores": scores,
        "predictions": predictions,
    }
    return report, details
