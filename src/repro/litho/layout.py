"""Synthetic Manhattan layouts.

A layout is a binary pixel grid (1 = metal).  The generator mixes the
pattern families whose printability differs under lithography: wide
blocks (easy), regular gratings at varying pitch (hard when the pitch
nears the optical resolution), and isolated thin lines with line-ends
(hard).  This gives the variability simulator something physical to
disagree about and the learner something real to learn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..core.rng import ensure_rng


@dataclass
class Layout:
    """A binary Manhattan layout image (rows x cols, 1 = metal)."""

    pixels: np.ndarray

    def __post_init__(self):
        pixels = np.asarray(self.pixels)
        if pixels.ndim != 2:
            raise ValueError("layout pixels must be a 2-D array")
        self.pixels = (pixels > 0).astype(np.uint8)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.pixels.shape

    def density(self) -> float:
        """Fraction of metal pixels."""
        return float(self.pixels.mean())

    def window(self, row: int, col: int, size: int) -> np.ndarray:
        """Extract a ``size x size`` clip anchored at (row, col)."""
        if (row < 0 or col < 0 or row + size > self.shape[0]
                or col + size > self.shape[1]):
            raise ValueError("window exceeds layout bounds")
        return self.pixels[row : row + size, col : col + size]

    def windows(self, size: int, stride: int) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(row, col, clip)`` over a regular window grid."""
        if size < 1 or stride < 1:
            raise ValueError("size and stride must be positive")
        for row in range(0, self.shape[0] - size + 1, stride):
            for col in range(0, self.shape[1] - size + 1, stride):
                yield row, col, self.window(row, col, size)


class LayoutGenerator:
    """Randomized Manhattan layout synthesis."""

    def __init__(self, random_state=None):
        self._rng = ensure_rng(random_state)

    def _add_block(self, pixels, rng) -> None:
        rows, cols = pixels.shape
        height = int(rng.integers(rows // 8, rows // 3))
        width = int(rng.integers(cols // 8, cols // 3))
        top = int(rng.integers(0, rows - height))
        left = int(rng.integers(0, cols - width))
        pixels[top : top + height, left : left + width] = 1

    def _add_grating(self, pixels, rng, min_pitch: int) -> None:
        rows, cols = pixels.shape
        line_width = int(rng.integers(1, 4))
        space = int(rng.integers(max(1, min_pitch - line_width), 6))
        pitch = line_width + space
        n_lines = int(rng.integers(4, 10))
        extent = int(rng.integers(rows // 6, rows // 2))
        horizontal = bool(rng.uniform() < 0.5)
        top = int(rng.integers(0, rows - extent))
        left = int(rng.integers(0, cols - n_lines * pitch - 1))
        for line in range(n_lines):
            offset = left + line * pitch
            if horizontal:
                pixels[offset : offset + line_width, top : top + extent] = 1
            else:
                pixels[top : top + extent, offset : offset + line_width] = 1

    def _add_thin_line(self, pixels, rng) -> None:
        rows, cols = pixels.shape
        length = int(rng.integers(rows // 8, rows // 2))
        width = 1 if rng.uniform() < 0.7 else 2
        top = int(rng.integers(0, rows - length))
        left = int(rng.integers(0, cols - length))
        if rng.uniform() < 0.5:
            pixels[top : top + width, left : left + length] = 1
        else:
            pixels[top : top + length, left : left + width] = 1

    def generate(self, rows: int = 256, cols: int = 256,
                 n_blocks: int = 6, n_gratings: int = 8,
                 n_thin_lines: int = 12, min_pitch: int = 2) -> Layout:
        """Generate one layout mixing the three pattern families."""
        if rows < 32 or cols < 32:
            raise ValueError("layout must be at least 32x32")
        pixels = np.zeros((rows, cols), dtype=np.uint8)
        rng = self._rng
        for _ in range(n_blocks):
            self._add_block(pixels, rng)
        for _ in range(n_gratings):
            self._add_grating(pixels, rng, min_pitch)
        for _ in range(n_thin_lines):
            self._add_thin_line(pixels, rng)
        return Layout(pixels)


def window_grid(layout: Layout, size: int = 32,
                stride: int = 16) -> Tuple[List[Tuple[int, int]], List[np.ndarray]]:
    """Collect all window anchors and clips as parallel lists."""
    anchors: List[Tuple[int, int]] = []
    clips: List[np.ndarray] = []
    for row, col, clip in layout.windows(size, stride):
        anchors.append((row, col))
        clips.append(clip)
    return anchors, clips
