"""Lithography substrate: layouts, variability simulation, HI-kernel
hotspot prediction (Fig. 8 / Fig. 9)."""

from .features import (
    clip_histogram_features,
    density_histogram,
    edge_histogram,
    histogram_feature_matrix,
    run_length_histogram,
    smoothed_density_histogram,
)
from .layout import Layout, LayoutGenerator, window_grid
from .predictor import (
    VariabilityPredictionReport,
    VariabilityPredictor,
    run_variability_experiment,
)
from .simulator import LithographySimulator, ProcessWindow

__all__ = [
    "Layout",
    "LayoutGenerator",
    "LithographySimulator",
    "ProcessWindow",
    "VariabilityPredictionReport",
    "VariabilityPredictor",
    "clip_histogram_features",
    "density_histogram",
    "edge_histogram",
    "histogram_feature_matrix",
    "run_length_histogram",
    "run_variability_experiment",
    "smoothed_density_histogram",
    "window_grid",
]
