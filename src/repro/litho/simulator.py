"""Lithography variability simulation — the "golden reference" of Fig. 8.

The paper's layout-variability study ([13]) used full lithography
simulation as ground truth.  We stand in a reduced optical model that
keeps the physics the learning problem depends on:

- the **aerial image** is the layout convolved with a Gaussian optical
  kernel (a one-term Hopkins decomposition);
- the **printed image** is the aerial image thresholded at the resist
  dose-to-clear;
- **process variability** is probed over a focus-exposure matrix: the
  print is recomputed at defocus corners (wider kernel) and dose corners
  (shifted threshold), and a pixel's variability is how often the
  corners disagree about printing it.

Dense fine-pitch gratings and isolated thin lines lose contrast first,
so exactly the patterns lithographers call hotspots come out as
high-variability regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from .layout import Layout


@dataclass
class ProcessWindow:
    """The focus/dose corners probed by the variability analysis."""

    nominal_blur: float = 1.6
    defocus_blurs: Tuple[float, ...] = (2.2, 2.8)
    nominal_threshold: float = 0.45
    dose_offsets: Tuple[float, ...] = (-0.07, 0.07)

    def corners(self) -> List[Tuple[float, float]]:
        """All (blur, threshold) corners including nominal."""
        blurs = [self.nominal_blur, *self.defocus_blurs]
        thresholds = [
            self.nominal_threshold + offset
            for offset in (0.0, *self.dose_offsets)
        ]
        return [(blur, threshold) for blur in blurs for threshold in thresholds]


class LithographySimulator:
    """Aerial-image computation and variability scoring.

    ``n_aerial_evaluations`` / ``n_print_evaluations`` count the
    optical-model work performed — the quantity that scales with process
    rigor and that a trained predictor avoids entirely.
    """

    def __init__(self, process: ProcessWindow = None):
        self.process = process or ProcessWindow()
        self.n_aerial_evaluations = 0
        self.n_print_evaluations = 0

    # ------------------------------------------------------------------
    def aerial_image(self, layout: Layout, blur: float = None) -> np.ndarray:
        """Optical intensity in [0, 1] at the given defocus blur."""
        blur = blur if blur is not None else self.process.nominal_blur
        if blur <= 0:
            raise ValueError("blur must be positive")
        self.n_aerial_evaluations += 1
        return gaussian_filter(
            layout.pixels.astype(float), sigma=blur, mode="constant"
        )

    def printed_image(self, layout: Layout, blur: float = None,
                      threshold: float = None) -> np.ndarray:
        """Binary resist print at one process corner."""
        threshold = (
            threshold if threshold is not None
            else self.process.nominal_threshold
        )
        self.n_print_evaluations += 1
        return (self.aerial_image(layout, blur) >= threshold).astype(np.uint8)

    # ------------------------------------------------------------------
    def variability_map(self, layout: Layout) -> np.ndarray:
        """Per-pixel variability in [0, 1].

        The fraction of process corners whose print decision differs
        from the corner-majority; 0 = prints identically everywhere in
        the window, 0.5 = maximally unstable.
        """
        corners = self.process.corners()
        prints = np.stack(
            [
                self.printed_image(layout, blur, threshold)
                for blur, threshold in corners
            ]
        ).astype(float)
        mean_print = prints.mean(axis=0)
        # disagreement is highest when mean is near 0.5
        return 1.0 - 2.0 * np.abs(mean_print - 0.5)

    def window_variability(self, layout: Layout, row: int, col: int,
                           size: int) -> float:
        """Mean variability of a clip, normalized by its drawn edge length.

        Windows with no metal at all have zero variability by definition.
        """
        variability = self.variability_map(layout)
        clip = variability[row : row + size, col : col + size]
        return float(clip.mean())

    def label_windows(self, layout: Layout, anchors, size: int,
                      hotspot_threshold: float = None):
        """Score and label every window; returns ``(scores, labels)``.

        ``labels`` is 1 for high-variability (hotspot) windows.  When
        *hotspot_threshold* is None the 85th percentile of the scores is
        used, mimicking a lithographer flagging the worst areas.
        """
        variability = self.variability_map(layout)
        scores = np.array(
            [
                float(variability[row : row + size, col : col + size].mean())
                for row, col in anchors
            ]
        )
        if hotspot_threshold is None:
            hotspot_threshold = float(np.percentile(scores, 85))
        labels = (scores > hotspot_threshold).astype(int)
        return scores, labels

    def margin_training_labels(self, layout: Layout, anchors, size: int,
                               hot_percentile: float = 85.0,
                               good_percentile: float = 60.0):
        """Training labels with the ambiguous middle dropped.

        Returns ``(keep_mask, labels)``: windows above *hot_percentile*
        are hotspots, below *good_percentile* are good, and the band in
        between is excluded from training — the standard hotspot-
        learning trick for fighting label noise at the decision
        boundary.  Evaluation should still use :meth:`label_windows`.
        """
        if not 0.0 <= good_percentile < hot_percentile <= 100.0:
            raise ValueError("need 0 <= good < hot <= 100 percentiles")
        scores, _ = self.label_windows(layout, anchors, size)
        hot_cut = float(np.percentile(scores, hot_percentile))
        good_cut = float(np.percentile(scores, good_percentile))
        labels = (scores > hot_cut).astype(int)
        keep = (scores > hot_cut) | (scores <= good_cut)
        return keep, labels
