"""Methodology-level flows and reporting utilities."""

from .methodology import (
    IterationRecord,
    KnowledgeDiscoveryLoop,
    MethodologyChecklist,
    PrincipleAssessment,
)
from .report import format_series, format_table, sparkline

__all__ = [
    "IterationRecord",
    "KnowledgeDiscoveryLoop",
    "MethodologyChecklist",
    "PrincipleAssessment",
    "format_series",
    "format_table",
    "sparkline",
]
