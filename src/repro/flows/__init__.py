"""Methodology-level flows and reporting utilities."""

from .methodology import (
    IterationRecord,
    KnowledgeDiscoveryLoop,
    MethodologyChecklist,
    PrincipleAssessment,
)
from .report import (
    format_event_log,
    format_metrics,
    format_series,
    format_table,
    run_report,
    sparkline,
)

__all__ = [
    "IterationRecord",
    "KnowledgeDiscoveryLoop",
    "MethodologyChecklist",
    "PrincipleAssessment",
    "format_event_log",
    "format_metrics",
    "format_series",
    "format_table",
    "run_report",
    "sparkline",
]
